#!/usr/bin/env python3
"""Four NFs, one library, one toolchain (the §9 amortization claim).

Runs the complete Vigor pipeline on the NAT, the stateful firewall,
the MAC-learning bridge and the rate limiter — four different state
shapes (double-keyed flow table, session table, station table with port
rebinding, per-source counters) — and prints one summary table. The verified library and the
Validator are shared; each new NF costs only its stateless logic and a
semantic specification.

Run:  python examples/three_verified_nfs.py
"""

from repro.nat.bridge import BridgeConfig
from repro.nat.config import NatConfig
from repro.nat.limiter import LimiterConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.nf_env_bridge import BridgeSemantics, bridge_symbolic_body
from repro.verif.nf_env_fw import firewall_symbolic_body
from repro.verif.nf_env_limiter import LimiterSemantics, limiter_symbolic_body
from repro.verif.semantics import FirewallSemantics, NatSemantics
from repro.verif.validator import Validator


def main() -> None:
    nat_cfg = NatConfig()
    bridge_cfg = BridgeConfig()
    limiter_cfg = LimiterConfig()
    lineup = [
        ("VigNat", vignat_symbolic_body(nat_cfg), NatSemantics(nat_cfg)),
        ("VigFirewall", firewall_symbolic_body(nat_cfg), FirewallSemantics(nat_cfg)),
        ("VigBridge", bridge_symbolic_body(bridge_cfg), BridgeSemantics(bridge_cfg)),
        ("VigLimiter", limiter_symbolic_body(limiter_cfg), LimiterSemantics(limiter_cfg)),
    ]
    print(f"{'NF':>12s}  {'paths':>5s}  {'traces':>6s}  {'obligations':>11s}  verdict")
    engine = ExhaustiveSymbolicEngine()
    all_verified = True
    for name, body, semantics in lineup:
        result = engine.explore(body)
        report = Validator(semantics).validate(result, name)
        obligations = sum(v.obligations for v in report.verdicts())
        verdict = "VERIFIED" if report.verified else "NOT VERIFIED"
        all_verified &= report.verified
        print(
            f"{name:>12s}  {report.paths:>5d}  {report.traces:>6d}  "
            f"{obligations:>11d}  {verdict}"
        )
    if not all_verified:
        raise SystemExit(1)
    print("\nSame libVig, same models, same Validator — four proofs.")


if __name__ == "__main__":
    main()
