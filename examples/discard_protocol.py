#!/usr/bin/env python3
"""The §3 worked example: verifying the discard-protocol NF.

Runs the discard NF concretely, then verifies it symbolically under the
three ring models of Fig. 4, reproducing the paper's taxonomy of model
(in)validity:

- model (a), the good one: everything proves;
- model (b), over-approximate: P5 passes but the semantic property P1
  cannot be proven;
- model (c), under-approximate: P1 holds trivially but model validation
  P5 rejects the model.

Run:  python examples/discard_protocol.py
"""

from repro.nat.discard import DiscardNF
from repro.packets import make_udp_packet
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.models.ring import (
    GoodRingModel,
    OverApproximateRingModel,
    UnderApproximateRingModel,
)
from repro.verif.nf_env import discard_symbolic_body
from repro.verif.semantics import DiscardSemantics
from repro.verif.validator import Validator


def run_concrete() -> None:
    print("Concrete run: forwarding everything except port 9...")
    nf = DiscardNF()
    emitted = []
    for i, dport in enumerate([80, 9, 443, 9, 53]):
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 1000 + i, dport, device=0)
        emitted.extend(nf.process(packet, now=i))
    ports = [p.l4.dst_port for p in emitted]
    print(f"  emitted target ports: {ports} (never 9)")
    print(f"  counters: {nf.op_counters()}")


def verify_under(model) -> None:
    result = ExhaustiveSymbolicEngine().explore(discard_symbolic_body(model))
    report = Validator(DiscardSemantics()).validate(result, model.__name__)
    verdicts = "  ".join(
        f"{v.name}={'ok' if v.proven else 'FAIL'}" for v in report.verdicts()
    )
    print(f"  {model.__name__:>28s}: {verdicts}  -> "
          f"{'VERIFIED' if report.verified else 'not verified'}")
    for verdict in report.verdicts():
        for failure in verdict.failures[:1]:
            print(f"{'':>32s}{verdict.name} example failure: {failure}")


def main() -> None:
    run_concrete()
    print("\nSymbolic verification under the three Fig. 4 ring models:")
    for model in (GoodRingModel, OverApproximateRingModel, UnderApproximateRingModel):
        verify_under(model)
    print(
        "\nAs in the paper: an invalid model can make a proof fail,"
        " but never produces an incorrect proof."
    )


if __name__ == "__main__":
    main()
