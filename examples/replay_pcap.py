#!/usr/bin/env python3
"""Replay a pcap through the verified NAT, Wireshark-compatible I/O.

Synthesizes a small capture of outbound traffic, replays it through
VigNat with the DPDK-style application shell, and writes the translated
frames to a second pcap — both files open in Wireshark/tcpdump.

Run:  python examples/replay_pcap.py [input.pcap [output.pcap]]
"""

import sys
import tempfile
from pathlib import Path

from repro.nat import NatConfig, VigNat
from repro.net.app import NfApp
from repro.packets import ip_to_str, make_tcp_packet, make_udp_packet
from repro.packets.pcap import read_pcap_file, write_pcap_file


def synthesize_capture(path: str) -> None:
    """A capture of three hosts talking to DNS and HTTPS."""
    frames = []
    t = 1_000_000
    for i, host in enumerate(("10.0.0.5", "10.0.0.6", "10.0.0.7")):
        dns = make_udp_packet(host, "8.8.8.8", 5_000 + i, 53, payload=b"query")
        https = make_tcp_packet(host, "93.184.216.34", 44_000 + i, 443)
        frames.append((t, dns.to_bytes()))
        frames.append((t + 150, https.to_bytes()))
        t += 1_000
    write_pcap_file(path, frames)


def main() -> None:
    if len(sys.argv) >= 2:
        in_path = sys.argv[1]
    else:
        in_path = str(Path(tempfile.mkdtemp()) / "lan.pcap")
        synthesize_capture(in_path)
        print(f"synthesized capture: {in_path}")
    out_path = (
        sys.argv[2] if len(sys.argv) >= 3 else str(Path(in_path).with_suffix(".nat.pcap"))
    )

    app = NfApp(VigNat(NatConfig()))
    records = app.replay_pcap(in_path, out_path)
    print(f"replayed {len(read_pcap_file(in_path))} frames, "
          f"{len(records)} translated -> {out_path}")
    for record in records:
        packet = record.packet()
        print(
            f"  t={record.timestamp_us}us  "
            f"{ip_to_str(packet.ipv4.src_ip)}:{packet.l4.src_port} -> "
            f"{ip_to_str(packet.ipv4.dst_ip)}:{packet.l4.dst_port}"
        )
    leaked = app.runtime.pool.in_flight
    print(f"buffers in flight after replay: {leaked} (must be 0)")
    if leaked:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
