#!/usr/bin/env python3
"""Verification-guided debugging: from failed proof to exploit packet.

Takes a NAT with a classic bug — it forwards unsolicited external
packets instead of dropping them (a "full-cone by accident" hole) —
and shows the full loop:

1. the Vigor pipeline rejects it, naming the violated obligation;
2. the failing path's *witness* (a satisfying assignment of the path
   condition) is decoded into a concrete packet;
3. that packet, fed to the buggy NAT, demonstrates the hole live;
4. the same packet, fed to the verified VigNat, is dropped.

The counterexample is not a lucky fuzz hit — it falls out of the proof
attempt, which is the point of verifying implementations (§1).

Run:  python examples/find_the_bug.py
"""

from typing import List

from repro.nat import NatConfig, VigNat
from repro.nat.vignat import _ConcreteEnv
from repro.packets import ip_to_str, make_udp_packet
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP, Packet
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import SymbolicNatEnv
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator

CFG = NatConfig()


def buggy_loop_iteration(env, config) -> None:
    """A hand-rolled NAT loop with the hole: unsolicited inbound passes."""
    now = env.current_time()
    if now >= config.expiration_time:
        env.expire_flows(now - config.expiration_time + 1)
    else:
        env.expire_flows(0)
    packet = env.receive()
    if packet is None:
        return
    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return
    if (packet.protocol == PROTO_TCP) | (packet.protocol == PROTO_UDP):
        pass
    else:
        env.drop(packet)
        return
    if packet.device == config.internal_device:
        index = env.flow_table_get_internal(packet)
        if index is None:
            index = env.flow_table_create(packet, now)
            if index is None:
                env.drop(packet)
                return
        else:
            env.flow_table_rejuvenate(index, now)
        port = env.flow_external_port(index)
        env.emit(packet, config.external_device, config.external_ip, port,
                 packet.dst_ip, packet.dst_port)
    elif packet.device == config.external_device:
        index = env.flow_table_get_external(packet)
        if index is None:
            # THE BUG: "probably fine" — forward it inside unmodified.
            env.emit(packet, config.internal_device, packet.src_ip,
                     packet.src_port, packet.dst_ip, packet.dst_port)
            return
        env.flow_table_rejuvenate(index, now)
        ip, port = env.flow_internal_endpoint(index)
        env.emit(packet, config.internal_device, packet.src_ip,
                 packet.src_port, ip, port)
    else:
        env.drop(packet)


class BuggyNat(VigNat):
    """The same hole, concretely: runs buggy_loop_iteration on libVig."""

    name = "buggy-nat"

    def process(self, packet: Packet, now: int) -> List[Packet]:
        env = _ConcreteEnv(self, packet, now)
        buggy_loop_iteration(env, self.config)
        return env.outputs


def main() -> None:
    print("Step 1 — verifying the buggy NAT...")
    result = ExhaustiveSymbolicEngine().explore(
        lambda ctx: buggy_loop_iteration(SymbolicNatEnv(ctx, CFG), CFG)
    )
    report = Validator(NatSemantics(CFG)).validate(result, "buggy-nat")
    assert not report.verified
    failure = report.p1.failures[0]
    print(f"  NOT VERIFIED: {failure}")

    print("\nStep 2 — decoding the failing path's witness into a packet...")
    failing_id = int(failure.split("path ")[1].split(":")[0])
    trace = next(t for t in result.tree.paths if t.path_id == failing_id)
    witness = trace.witness
    exploit = make_udp_packet(
        witness.get("pkt_src_ip", 1) or 1,
        witness.get("pkt_dst_ip", 2) or 2,
        witness.get("pkt_src_port", 1) or 1,
        witness.get("pkt_dst_port", 1) or 1,
        device=witness.get("pkt_device", 1),
    )
    print(
        f"  witness packet: dev{exploit.device} "
        f"{ip_to_str(exploit.ipv4.src_ip)}:{exploit.l4.src_port} -> "
        f"{ip_to_str(exploit.ipv4.dst_ip)}:{exploit.l4.dst_port}"
    )

    print("\nStep 3 — replaying it against the buggy NAT (empty flow table):")
    buggy = BuggyNat(CFG)
    leaked = buggy.process(exploit.clone(), 10_000_000)
    print(
        "  buggy NAT: "
        + (
            f"FORWARDED INSIDE to device {leaked[0].device} — the hole is real"
            if leaked
            else "dropped (unexpected)"
        )
    )
    assert leaked and leaked[0].device == CFG.internal_device

    print("\nStep 4 — the verified NAT on the same packet:")
    verified = VigNat(CFG)
    assert verified.process(exploit.clone(), 10_000_000) == []
    print("  VigNat: dropped, as RFC 3022 requires.")


if __name__ == "__main__":
    main()
