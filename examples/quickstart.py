#!/usr/bin/env python3
"""Quickstart: translate traffic with the verified NAT.

Builds a VigNat, pushes an outbound packet and its reply through it,
and shows the RFC 3022 translation plus the checksum patching.

Run:  python examples/quickstart.py
"""

from repro.nat import NatConfig, VigNat
from repro.packets import ip_to_str, make_udp_packet


def main() -> None:
    config = NatConfig()  # 65,535 flows, 2 s expiry, external 192.0.2.1
    nat = VigNat(config)

    # A host on the internal network (device 0) sends a DNS query.
    query = make_udp_packet(
        "10.0.0.5", "8.8.8.8", 5353, 53, payload=b"example?", device=0
    )
    print("outbound, pre-NAT :", render(query))

    translated = nat.process(query, now=1_000_000)[0]
    print("outbound, post-NAT:", render(translated))
    assert translated.ipv4.src_ip == config.external_ip
    assert translated.l4_checksum_valid(), "incremental checksum patch holds"

    # The reply comes back to the NAT's external address and port.
    reply = make_udp_packet(
        "8.8.8.8",
        config.external_ip,
        53,
        translated.l4.src_port,
        payload=b"93.184.216.34",
        device=1,
    )
    print("reply, pre-NAT    :", render(reply))

    delivered = nat.process(reply, now=1_500_000)[0]
    print("reply, post-NAT   :", render(delivered))
    assert ip_to_str(delivered.ipv4.dst_ip) == "10.0.0.5"
    assert delivered.l4.dst_port == 5353

    # An unsolicited packet from outside is dropped: the NAT never
    # creates state for external arrivals (the security property).
    unsolicited = make_udp_packet(
        "203.0.113.66", config.external_ip, 4444, 9999, device=1
    )
    assert nat.process(unsolicited, now=1_600_000) == []
    print("unsolicited packet: dropped (no state created)")

    print(f"\nlive flows: {nat.flow_count()}  counters: {nat.op_counters()}")


def render(packet) -> str:
    return (
        f"dev{packet.device} "
        f"{ip_to_str(packet.ipv4.src_ip)}:{packet.l4.src_port} -> "
        f"{ip_to_str(packet.ipv4.dst_ip)}:{packet.l4.dst_port}"
    )


if __name__ == "__main__":
    main()
