#!/usr/bin/env python3
"""Run the full Vigor verification pipeline on VigNat (§5).

Performs exhaustive symbolic execution of the *actual* stateless NAT
logic against the libVig models, then runs the lazy-proofs Validator:
model validity (P5), contract usage (P4), low-level properties (P2),
libVig refinement (P3), and RFC 3022 semantics (P1). Prints the Fig. 7
proof report and one symbolic trace in the Fig. 9 style.

Run:  python examples/verify_nat.py
"""

from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator


def main() -> None:
    config = NatConfig()

    print("Step 2 — exhaustive symbolic execution of the stateless code...")
    engine = ExhaustiveSymbolicEngine()
    result = engine.explore(vignat_symbolic_body(config))
    print(
        f"  {result.stats.paths} feasible paths, "
        f"{result.tree.trace_count()} traces (paths + prefixes), "
        f"{result.stats.solver_queries} solver queries, "
        f"{result.stats.wall_seconds:.2f}s"
    )

    print("\nStep 3 — lazy proofs: validating models, contracts, semantics...")
    validator = Validator(NatSemantics(config))
    report = validator.validate(result, "VigNat")
    print()
    print(report.render())

    # Show one interesting trace: an outbound packet creating a flow.
    print("\nA symbolic trace (Fig. 9 style) — outbound flow creation:")
    for trace in result.tree.paths:
        fns = [c.fn for c in trace.calls]
        if "dmap_put" in fns and trace.sends:
            print(trace.render())
            witness = ", ".join(
                f"{k}={v}" for k, v in sorted(trace.witness.items())
            )
            print(f"--- example input driving this path ---\n{witness}")
            break

    if not report.verified:
        raise SystemExit("verification FAILED")
    print("\nVigNat is VERIFIED: P1 ∧ P2 ∧ P3 ∧ P4 ∧ P5 all hold.")


if __name__ == "__main__":
    main()
