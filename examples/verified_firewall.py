#!/usr/bin/env python3
"""A second verified NF: the stateful firewall (the §9 generalization).

The paper's closing hope is that the Vigor technique "will eventually
generalize to proving properties of many other software NFs, thereby
amortizing the tedious work" of the verified library. This example does
it: the firewall reuses libVig's flow table and allocator, its stateless
logic is ~40 lines, its semantic spec is one subclass — and the same
pipeline proves all five properties.

Run:  python examples/verified_firewall.py
"""

from repro.nat import NatConfig, VigFirewall
from repro.packets import ip_to_str, make_tcp_packet
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env_fw import firewall_symbolic_body
from repro.verif.semantics import FirewallSemantics
from repro.verif.validator import Validator


def main() -> None:
    config = NatConfig()

    print("Verifying the firewall with the same Vigor pipeline...")
    result = ExhaustiveSymbolicEngine().explore(firewall_symbolic_body(config))
    report = Validator(FirewallSemantics(config)).validate(result, "VigFirewall")
    print(report.render())
    if not report.verified:
        raise SystemExit("verification FAILED")

    print("\nRunning the verified firewall on a TCP conversation:")
    fw = VigFirewall(config)
    syn = make_tcp_packet("10.0.0.7", "93.184.216.34", 50_000, 443, device=0)
    out = fw.process(syn, 1_000)[0]
    print(f"  outbound SYN forwarded unchanged to device {out.device} "
          f"({ip_to_str(out.ipv4.src_ip)}:{out.l4.src_port} -> "
          f"{ip_to_str(out.ipv4.dst_ip)}:{out.l4.dst_port})")

    syn_ack = make_tcp_packet("93.184.216.34", "10.0.0.7", 443, 50_000, device=1)
    back = fw.process(syn_ack, 2_000)
    print(f"  established reply: {'forwarded' if back else 'BLOCKED'}")

    attack = make_tcp_packet("203.0.113.66", "10.0.0.7", 1337, 22, device=1)
    blocked = fw.process(attack, 3_000)
    print(f"  unsolicited inbound SSH probe: {'forwarded!' if blocked else 'blocked'}")
    print(f"  sessions tracked: {fw.session_count()}")


if __name__ == "__main__":
    main()
