#!/usr/bin/env python3
"""Fault injection: the bug classes the paper's introduction cites.

The paper motivates verification with NATs that can be crashed or hung
by crafted inputs (Cisco CVE-2015-6271/CVE-2013-1138, Juniper, Windows
Server, NetFilter CVEs). The unverified baseline in this reproduction
carries documented defects of the same classes; this script triggers
each one and shows the verified NAT shrugging the same traffic off.

Run:  python examples/crash_the_unverified_nat.py
"""

from repro.nat import NatConfig, UnverifiedNat, VigNat
from repro.nat.unverified import NatCrash
from repro.packets import make_udp_packet


def flood(nat, count, start_port=2000, now=1_000):
    """Throw `count` fresh flows at a NAT; returns forwarded count."""
    forwarded = 0
    for i in range(count):
        packet = make_udp_packet(
            "10.0.0.5", "8.8.8.8", start_port + i, 53, device=0
        )
        forwarded += len(nat.process(packet, now + i))
    return forwarded


def demo_eviction() -> None:
    print("1) Eviction instead of drop (silent connection breakage)")
    config = NatConfig(max_flows=8, expiration_time=60_000_000)
    unverified, verified = UnverifiedNat(config), VigNat(config)

    victims = {}
    for nat in (unverified, verified):
        victim = make_udp_packet("10.0.0.5", "8.8.8.8", 1111, 53, device=0)
        victims[nat.name] = nat.process(victim, 1_000)[0]
        flood(nat, config.max_flows)  # fill + overflow the table

    for nat in (unverified, verified):
        out = victims[nat.name]
        reply = make_udp_packet(
            "8.8.8.8", config.external_ip, 53, out.l4.src_port, device=1
        )
        delivered = nat.process(reply, 2_000)
        status = "still connected" if delivered else "CONNECTION BROKEN"
        print(f"   {nat.name:>16s}: established flow after table pressure: {status}")


def demo_crash() -> None:
    print("\n2) Port-leak churn leading to a crash")
    config = NatConfig(max_flows=4, expiration_time=60_000_000, start_port=65_530)
    unverified, verified = UnverifiedNat(config), VigNat(config)

    try:
        flood(unverified, 12)
        print(f"   {unverified.name:>16s}: survived (unexpected)")
    except NatCrash as crash:
        print(f"   {unverified.name:>16s}: CRASHED — {crash}")

    forwarded = flood(verified, 12)
    print(
        f"   {verified.name:>16s}: survived, forwarded {forwarded} "
        f"(drops packets when full, as RFC 3022 requires)"
    )


def demo_checksum() -> None:
    print("\n3) Checksum corruption on zero-checksum UDP replies")
    config = NatConfig(max_flows=8)
    for cls in (UnverifiedNat, VigNat):
        nat = cls(config)
        out = nat.process(
            make_udp_packet("10.0.0.5", "8.8.8.8", 4000, 53, device=0), 1_000
        )[0]
        reply = make_udp_packet(
            "8.8.8.8", config.external_ip, 53, out.l4.src_port, device=1
        )
        reply.l4.checksum = 0  # sender disabled UDP checksumming
        back = nat.process(reply, 2_000)[0]
        ok = back.l4.checksum == 0
        print(
            f"   {nat.name:>16s}: emitted checksum "
            f"{back.l4.checksum:#06x} ({'correctly left disabled' if ok else 'CORRUPTED'})"
        )


def main() -> None:
    demo_eviction()
    demo_crash()
    demo_checksum()
    print(
        "\nEvery one of these behaviours is ruled out for VigNat by the"
        " proofs in repro.verif — see examples/verify_nat.py."
    )


if __name__ == "__main__":
    main()
