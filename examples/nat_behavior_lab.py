#!/usr/bin/env python3
"""The RFC 4787 behaviour lab: classify NATs with STUN-style probes.

Runs the standard probes against every corner of the RFC 4787 matrix
(mapping x filtering) plus VigNat, prints the classification table, and
demonstrates hairpinning. This is the extension territory §7 gestures
at: once the verified core exists, behavioural variants become
configuration.

Run:  python examples/nat_behavior_lab.py
"""

from repro.nat.behavior import (
    BehavioralNat,
    FilteringBehavior,
    MappingBehavior,
)
from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.packets import make_udp_packet

CFG = NatConfig(max_flows=64, expiration_time=60_000_000, start_port=1000)
HOST, REMOTE_1, REMOTE_2 = "10.0.0.5", "198.51.100.1", "198.51.100.2"
#: Never contacted by any probe: distinguishes EIF from ADF.
STRANGER = "203.0.113.99"


def classify(nat) -> str:
    """The classic STUN-style classification probes."""
    p1 = nat.process(make_udp_packet(HOST, REMOTE_1, 4000, 80, device=0), 1_000)
    p2 = nat.process(make_udp_packet(HOST, REMOTE_2, 4000, 80, device=0), 1_001)
    p3 = nat.process(make_udp_packet(HOST, REMOTE_1, 4000, 8080, device=0), 1_002)
    if not (p1 and p2 and p3):
        return "opaque"
    port1, port2, port3 = (p[0].l4.src_port for p in (p1, p2, p3))
    if port1 == port2 == port3:
        mapping = "EIM"
    elif port1 == port3 or port1 == port2:
        mapping = "ADM"
    else:
        mapping = "APDM"

    def inbound_ok(src_ip, src_port):
        probe = make_udp_packet(src_ip, CFG.external_ip, src_port, port1, device=1)
        return bool(nat.process(probe, 2_000))

    if inbound_ok(STRANGER, 9_999):
        filtering = "EIF (full cone)"
    elif inbound_ok(REMOTE_1, 9_999):
        filtering = "ADF (restricted cone)"
    elif inbound_ok(REMOTE_1, 80):
        filtering = "APDF (port restricted)"
    else:
        filtering = "symmetric-drop"
    return f"{mapping} + {filtering}"


def main() -> None:
    print(f"{'NAT under test':>42s}  classification")
    for mapping in MappingBehavior:
        for filtering in FilteringBehavior:
            nat = BehavioralNat(CFG, mapping=mapping, filtering=filtering)
            label = f"BehavioralNat({mapping.value}, {filtering.value})"
            print(f"{label:>42s}  {classify(nat)}")
    print(f"{'VigNat (the verified NAT)':>42s}  {classify(VigNat(CFG))}")

    print("\nHairpinning (RFC 4787 REQ-9):")
    nat = BehavioralNat(CFG, hairpinning=True)
    b_out = nat.process(make_udp_packet("10.0.0.6", REMOTE_1, 5000, 80, device=0), 1_000)[0]
    hairpin = make_udp_packet(HOST, CFG.external_ip, 4000, b_out.l4.src_port, device=0)
    delivered = nat.process(hairpin, 2_000)
    print(
        "  internal->external-address packet "
        + ("delivered back inside (hairpinned)" if delivered else "lost")
    )


if __name__ == "__main__":
    main()
