#!/usr/bin/env python3
"""A scaled-down §6: latency and throughput across the four NFs.

Reproduces the evaluation's structure in about a minute: probe-flow
latency vs. flow-table occupancy (Fig. 12) and the RFC 2544 throughput
search (Fig. 14), for the no-op forwarder, the unverified NAT, the
verified NAT, and the NetFilter-style Linux NAT.

Run:  python examples/performance_comparison.py
"""

from repro.eval.experiments import (
    EvalSettings,
    default_nf_factories,
    latency_vs_occupancy,
    throughput_sweep,
)
from repro.eval.reporting import render_fig12, render_fig14


def main() -> None:
    latency_settings = EvalSettings(
        background_pps=50_000,
        measure_seconds=0.4,
        probe_flows=400,
        probe_pps=0.47,
    )
    print("Measuring probe-flow latency (this simulates ~1s of traffic)...")
    points = latency_vs_occupancy(
        occupancies=(1_000, 8_000), settings=latency_settings
    )
    print(render_fig12(points))

    print("\nRFC 2544 throughput search (<0.1% loss)...")
    throughput_settings = EvalSettings(
        expiration_seconds=60.0,
        throughput_packets=10_000,
        throughput_iterations=6,
    )
    results = throughput_sweep(
        factories=default_nf_factories(include_linux=True),
        flow_counts=(2_000,),
        settings=throughput_settings,
    )
    print(render_fig14(results))

    verified = results["verified-nat"][0].max_mpps
    unverified = results["unverified-nat"][0].max_mpps
    print(
        f"\nverified/unverified throughput: {verified:.2f}/{unverified:.2f} Mpps "
        f"({100 * (1 - verified / unverified):.0f}% penalty; paper: ~10%)"
    )


if __name__ == "__main__":
    main()
