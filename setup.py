from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'A Formally Verified NAT' (SIGCOMM 2017): "
        "VigNAT, libVig, and the Vigor lazy-proofs toolchain"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["repro-nat=repro.cli:main"],
    },
)
