"""Classic pcap (libpcap) file reading and writing.

The testbed can dump what the Tester sent and what came back out of the
middlebox as standard ``.pcap`` files (microsecond timestamps, LINKTYPE
Ethernet), openable in Wireshark/tcpdump — handy for debugging the NATs
and for demonstrating that the simulated traffic is byte-accurate.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, List, Tuple

from repro.packets.headers import Packet

_MAGIC = 0xA1B2C3D4  # microsecond-resolution pcap
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Malformed pcap data."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured frame: timestamp (microseconds) and raw bytes."""

    timestamp_us: int
    data: bytes

    def packet(self, device: int = 0) -> Packet:
        return Packet.from_bytes(self.data, device=device)


def write_pcap(
    stream: BinaryIO,
    records: Iterable[Tuple[int, bytes]],
    snaplen: int = 65_535,
) -> int:
    """Write (timestamp_us, frame_bytes) records; returns the count."""
    stream.write(
        _GLOBAL_HEADER.pack(
            _MAGIC, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, snaplen, _LINKTYPE_ETHERNET
        )
    )
    count = 0
    for timestamp_us, data in records:
        seconds, micros = divmod(timestamp_us, 1_000_000)
        captured = data[:snaplen]
        stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(captured), len(data))
        )
        stream.write(captured)
        count += 1
    return count


def write_pcap_file(path: str, records: Iterable[Tuple[int, bytes]]) -> int:
    """Write records to ``path``; returns the count."""
    with open(path, "wb") as handle:
        return write_pcap(handle, records)


def read_pcap(stream: BinaryIO) -> Iterator[PcapRecord]:
    """Yield the records of a microsecond-resolution Ethernet pcap."""
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic, major, minor, _tz, _sig, _snaplen, linktype = _GLOBAL_HEADER.unpack(header)
    if magic != _MAGIC:
        raise PcapError(f"unsupported pcap magic {magic:#x}")
    if linktype != _LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported linktype {linktype}")
    del major, minor
    while True:
        record_header = stream.read(_RECORD_HEADER.size)
        if not record_header:
            return
        if len(record_header) < _RECORD_HEADER.size:
            raise PcapError("truncated pcap record header")
        seconds, micros, captured_len, _orig_len = _RECORD_HEADER.unpack(record_header)
        data = stream.read(captured_len)
        if len(data) < captured_len:
            raise PcapError("truncated pcap record body")
        yield PcapRecord(timestamp_us=seconds * 1_000_000 + micros, data=data)


def read_pcap_file(path: str) -> List[PcapRecord]:
    """Read every record of the pcap at ``path``."""
    with open(path, "rb") as handle:
        return list(read_pcap(handle))
