"""Byte-accurate Ethernet/IPv4/TCP/UDP header models.

Headers are mutable dataclasses with ``pack``/``unpack`` that round-trip
byte-for-byte. ``Packet`` composes them together with the receive-device
metadata the NAT dispatches on, mirroring a DPDK mbuf's (port, data) pair.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.packets.checksum import (
    checksums_equivalent,
    internet_checksum,
    ipv4_header_checksum,
    l4_checksum,
)

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

# Header codecs precompiled once at import: hot-path pack/unpack must not
# re-parse a format string per packet (struct caches internally, but the
# lookup still costs; Struct objects skip it entirely).
_ETH_STRUCT = struct.Struct(">6s6sH")
_IPV4_STRUCT = struct.Struct(">BBHHHBBHII")
_TCP_STRUCT = struct.Struct(">HHIIBBHHH")
_UDP_STRUCT = struct.Struct(">HHHH")
_U16_STRUCT = struct.Struct(">H")


class ParseError(ValueError):
    """Raised when a byte buffer cannot be parsed as the expected header."""


@dataclass(slots=True)
class EthernetHeader:
    """Ethernet II header (no VLAN tags)."""

    dst: bytes = b"\x00" * 6
    src: bytes = b"\x00" * 6
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def pack(self) -> bytes:
        return _ETH_STRUCT.pack(self.dst, self.src, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.SIZE:
            raise ParseError("truncated Ethernet header")
        dst, src, ethertype = _ETH_STRUCT.unpack_from(data)
        return cls(dst=dst, src=src, ethertype=ethertype)

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(self.dst, self.src, self.ethertype)


@dataclass(slots=True)
class Ipv4Header:
    """IPv4 header without options (IHL fixed at 5, as VigNAT assumes)."""

    tos: int = 0
    total_length: int = 20
    identification: int = 0
    flags: int = 0  # 3-bit flags field
    fragment_offset: int = 0
    ttl: int = 64
    protocol: int = PROTO_TCP
    checksum: int = 0
    src_ip: int = 0
    dst_ip: int = 0

    SIZE = 20
    VERSION_IHL = 0x45

    def pack(self, *, fill_checksum: bool = True) -> bytes:
        checksum = self.checksum
        flags_frag = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        raw = _IPV4_STRUCT.pack(
            self.VERSION_IHL,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0 if fill_checksum else checksum,
            self.src_ip,
            self.dst_ip,
        )
        if fill_checksum:
            checksum = ipv4_header_checksum(raw)
            raw = raw[:10] + _U16_STRUCT.pack(checksum) + raw[12:]
        return raw

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.SIZE:
            raise ParseError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src_ip,
            dst_ip,
        ) = _IPV4_STRUCT.unpack_from(data)
        if version_ihl >> 4 != 4:
            raise ParseError(f"not IPv4 (version {version_ihl >> 4})")
        if version_ihl & 0xF != 5:
            raise ParseError("IPv4 options are not supported")
        return cls(
            tos=tos,
            total_length=total_length,
            identification=identification,
            flags=(flags_frag >> 13) & 0x7,
            fragment_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            protocol=protocol,
            checksum=checksum,
            src_ip=src_ip,
            dst_ip=dst_ip,
        )

    def copy(self) -> "Ipv4Header":
        return Ipv4Header(
            self.tos,
            self.total_length,
            self.identification,
            self.flags,
            self.fragment_offset,
            self.ttl,
            self.protocol,
            self.checksum,
            self.src_ip,
            self.dst_ip,
        )

    def header_checksum_valid(self) -> bool:
        """True when the stored checksum matches the header contents."""
        raw = self.pack(fill_checksum=False)
        zeroed = raw[:10] + b"\x00\x00" + raw[12:]
        return checksums_equivalent(ipv4_header_checksum(zeroed), self.checksum)


@dataclass(slots=True)
class TcpHeader:
    """TCP header without options (data offset fixed at 5)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0x10  # ACK
    window: int = 0xFFFF
    checksum: int = 0
    urgent: int = 0

    SIZE = 20

    def pack(self) -> bytes:
        return _TCP_STRUCT.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        if len(data) < cls.SIZE:
            raise ParseError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            checksum,
            urgent,
        ) = _TCP_STRUCT.unpack_from(data)
        if offset_reserved >> 4 != 5:
            raise ParseError("TCP options are not supported")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )

    def copy(self) -> "TcpHeader":
        return TcpHeader(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )


@dataclass(slots=True)
class UdpHeader:
    """UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 8
    checksum: int = 0

    SIZE = 8

    def pack(self) -> bytes:
        return _UDP_STRUCT.pack(
            self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.SIZE:
            raise ParseError("truncated UDP header")
        src_port, dst_port, length, checksum = _UDP_STRUCT.unpack_from(data)
        return cls(
            src_port=src_port, dst_port=dst_port, length=length, checksum=checksum
        )

    def copy(self) -> "UdpHeader":
        return UdpHeader(self.src_port, self.dst_port, self.length, self.checksum)


@dataclass(slots=True)
class Packet:
    """A parsed packet plus the device index it was received on.

    ``l4`` is a :class:`TcpHeader` or :class:`UdpHeader`; the NAT only
    translates TCP and UDP (RFC 3022 traditional NAT), everything else is
    handled by the stateless dispatch code.
    """

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ipv4: Ipv4Header | None = None
    l4: TcpHeader | UdpHeader | None = None
    payload: bytes = b""
    device: int = 0

    @property
    def src_port(self) -> int:
        if self.l4 is None:
            raise ValueError("packet has no L4 header")
        return self.l4.src_port

    @property
    def dst_port(self) -> int:
        if self.l4 is None:
            raise ValueError("packet has no L4 header")
        return self.l4.dst_port

    def is_tcpudp_ipv4(self) -> bool:
        """True when this packet is one the NAT can translate."""
        return (
            self.eth.ethertype == ETHERTYPE_IPV4
            and self.ipv4 is not None
            and self.l4 is not None
        )

    def to_bytes(self) -> bytes:
        """Serialize, recomputing IPv4 and L4 checksums from scratch."""
        parts = [self.eth.pack()]
        if self.ipv4 is not None:
            l4_raw = b""
            if self.l4 is not None:
                header = replace(self.l4, checksum=0)
                if isinstance(header, UdpHeader):
                    header.length = UdpHeader.SIZE + len(self.payload)
                l4_raw = header.pack() + self.payload
                proto = PROTO_UDP if isinstance(header, UdpHeader) else PROTO_TCP
                csum = l4_checksum(self.ipv4.src_ip, self.ipv4.dst_ip, proto, l4_raw)
                self.l4.checksum = csum
                header.checksum = csum
                l4_raw = header.pack() + self.payload
            else:
                l4_raw = self.payload
            self.ipv4.total_length = Ipv4Header.SIZE + len(l4_raw)
            ip_raw = self.ipv4.pack(fill_checksum=True)
            self.ipv4.checksum = _U16_STRUCT.unpack_from(ip_raw, 10)[0]
            parts.append(ip_raw)
            parts.append(l4_raw)
        else:
            parts.append(self.payload)
        return b"".join(parts)

    def wire_bytes(self) -> bytes:
        """Serialize with the checksums exactly as currently stored.

        Unlike :meth:`to_bytes` this never recomputes a checksum, so a
        packet whose checksums were patched incrementally (RFC 1624)
        serializes to the very bytes a byte-level patching data path
        produces — the equality the fast-path differential harness
        asserts. Lengths are taken from the structure (headers plus
        payload), not from the stored fields.
        """
        parts = [self.eth.pack()]
        if self.ipv4 is not None:
            if self.l4 is not None:
                if isinstance(self.l4, UdpHeader):
                    self.l4.length = UdpHeader.SIZE + len(self.payload)
                l4_raw = self.l4.pack() + self.payload
            else:
                l4_raw = self.payload
            self.ipv4.total_length = Ipv4Header.SIZE + len(l4_raw)
            parts.append(self.ipv4.pack(fill_checksum=False))
            parts.append(l4_raw)
        else:
            parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, device: int = 0) -> "Packet":
        """Parse a frame. Non-IPv4 or non-TCP/UDP payloads stay opaque."""
        eth = EthernetHeader.unpack(data)
        offset = EthernetHeader.SIZE
        if eth.ethertype != ETHERTYPE_IPV4:
            return cls(eth=eth, payload=data[offset:], device=device)
        ipv4 = Ipv4Header.unpack(data[offset:])
        offset += Ipv4Header.SIZE
        l4: TcpHeader | UdpHeader | None
        if ipv4.protocol == PROTO_TCP:
            l4 = TcpHeader.unpack(data[offset:])
            offset += TcpHeader.SIZE
        elif ipv4.protocol == PROTO_UDP:
            l4 = UdpHeader.unpack(data[offset:])
            offset += UdpHeader.SIZE
        else:
            l4 = None
        return cls(eth=eth, ipv4=ipv4, l4=l4, payload=data[offset:], device=device)

    def l4_checksum_valid(self) -> bool:
        """True when the stored L4 checksum matches the packet contents."""
        if self.ipv4 is None or self.l4 is None:
            return False
        header = replace(self.l4, checksum=0)
        raw = header.pack() + self.payload
        proto = PROTO_UDP if isinstance(self.l4, UdpHeader) else PROTO_TCP
        expected = l4_checksum(self.ipv4.src_ip, self.ipv4.dst_ip, proto, raw)
        return checksums_equivalent(expected, self.l4.checksum)

    def clone(self) -> "Packet":
        """Deep-copy the packet (headers are small; payload bytes shared)."""
        ipv4 = self.ipv4
        l4 = self.l4
        return Packet(
            self.eth.copy(),
            ipv4.copy() if ipv4 is not None else None,
            l4.copy() if l4 is not None else None,
            self.payload,
            self.device,
        )


# internet_checksum is re-exported for callers that only import headers.
__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "EthernetHeader",
    "Ipv4Header",
    "Packet",
    "ParseError",
    "TcpHeader",
    "UdpHeader",
    "internet_checksum",
]
