"""Internet checksum arithmetic (RFC 1071) and incremental updates (RFC 1624).

A NAT rewrites source/destination addresses and ports, so it must patch the
IPv4 header checksum and the TCP/UDP checksum (which covers a pseudo-header
containing the IP addresses). High-performance NATs patch checksums
incrementally instead of recomputing them over the whole packet; both forms
are provided here and tested against each other.
"""

from __future__ import annotations

import struct


def _fold(total: int) -> int:
    """Fold a sum into 16 bits by adding carries back in."""
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """One's-complement 16-bit checksum of ``data`` (RFC 1071).

    ``initial`` is a partial sum (NOT complemented) to continue from, which
    is how the pseudo-header sum is chained into the L4 checksum.
    """
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words; pad a trailing odd byte with zero.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    return (~_fold(total)) & 0xFFFF


def ipv4_header_checksum(header: bytes) -> int:
    """Checksum of an IPv4 header whose checksum field is zeroed."""
    if len(header) < 20:
        raise ValueError("IPv4 header must be at least 20 bytes")
    return internet_checksum(header)


def _pseudo_header_sum(src_ip: int, dst_ip: int, proto: int, l4_len: int) -> int:
    """Partial (unfolded, uncomplemented) sum of the IPv4 pseudo-header."""
    pseudo = struct.pack(">IIBBH", src_ip, dst_ip, 0, proto, l4_len)
    total = 0
    for i in range(0, len(pseudo), 2):
        total += (pseudo[i] << 8) | pseudo[i + 1]
    return total


def l4_checksum(src_ip: int, dst_ip: int, proto: int, segment: bytes) -> int:
    """TCP/UDP checksum over pseudo-header plus segment (checksum zeroed)."""
    return internet_checksum(
        segment, initial=_pseudo_header_sum(src_ip, dst_ip, proto, len(segment))
    )


def checksums_equivalent(a: int, b: int) -> bool:
    """Equality modulo the one's-complement double zero (RFC 1624 §3).

    One's-complement arithmetic has two representations of zero, 0x0000
    and 0xFFFF; an incrementally patched checksum may land on the other
    representation than a full recompute. Receivers validate by summing,
    so the two are interchangeable on the wire.
    """
    if a == b:
        return True
    return {a, b} == {0x0000, 0xFFFF}


def checksum_update_u16(checksum: int, old: int, new: int) -> int:
    """Incrementally patch a checksum for a 16-bit field change (RFC 1624 eq. 3).

    ``HC' = ~(~HC + ~m + m')`` computed in one's-complement arithmetic.
    """
    if not (0 <= old <= 0xFFFF and 0 <= new <= 0xFFFF):
        raise ValueError("field values must be 16-bit")
    total = (~checksum & 0xFFFF) + (~old & 0xFFFF) + new
    return (~_fold(total)) & 0xFFFF


def checksum_update_u32(checksum: int, old: int, new: int) -> int:
    """Incrementally patch a checksum for a 32-bit field change.

    Treats the 32-bit value as two 16-bit words, as the checksum does.
    """
    if not (0 <= old <= 0xFFFFFFFF and 0 <= new <= 0xFFFFFFFF):
        raise ValueError("field values must be 32-bit")
    checksum = checksum_update_u16(checksum, (old >> 16) & 0xFFFF, (new >> 16) & 0xFFFF)
    return checksum_update_u16(checksum, old & 0xFFFF, new & 0xFFFF)


def checksum_delta_u16(old: int, new: int) -> int:
    """Precompute the RFC 1624 delta for a 16-bit field change.

    ``checksum_apply_delta(c, checksum_delta_u16(old, new))`` equals
    ``checksum_update_u16(c, old, new)`` for every checksum ``c`` — the
    same ``~old + new`` term is added either way — so a flow cache can
    compute the delta once at learn time and replay it per packet.
    """
    if not (0 <= old <= 0xFFFF and 0 <= new <= 0xFFFF):
        raise ValueError("field values must be 16-bit")
    return (~old & 0xFFFF) + new


def checksum_delta_u32(old: int, new: int) -> tuple:
    """Per-word deltas for a 32-bit field change (high word first).

    Applied in order they reproduce ``checksum_update_u32`` bit-exactly.
    """
    if not (0 <= old <= 0xFFFFFFFF and 0 <= new <= 0xFFFFFFFF):
        raise ValueError("field values must be 32-bit")
    return (
        checksum_delta_u16((old >> 16) & 0xFFFF, (new >> 16) & 0xFFFF),
        checksum_delta_u16(old & 0xFFFF, new & 0xFFFF),
    )


def checksum_apply_delta(checksum: int, delta: int) -> int:
    """Apply one precomputed delta to a stored checksum (RFC 1624 eq. 3)."""
    return (~_fold((~checksum & 0xFFFF) + delta)) & 0xFFFF
