"""Packet substrate: header models, checksums, and packet construction.

This package provides the byte-accurate packet model used throughout the
reproduction: Ethernet, IPv4, TCP and UDP headers with parse/serialize
round-tripping, Internet checksum computation (including the incremental
update from RFC 1624 that NAT header rewriting relies on), and convenience
builders for test and benchmark traffic.
"""

from repro.packets.addresses import (
    ip_to_int,
    ip_to_str,
    mac_to_bytes,
    mac_to_str,
)
from repro.packets.checksum import (
    checksum_apply_delta,
    checksum_delta_u16,
    checksum_delta_u32,
    checksum_update_u16,
    checksum_update_u32,
    internet_checksum,
    ipv4_header_checksum,
    l4_checksum,
)
from repro.packets.lazy import LazyPacket
from repro.packets.headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    Packet,
    ParseError,
    TcpHeader,
    UdpHeader,
)
from repro.packets.builder import make_tcp_packet, make_udp_packet

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "EthernetHeader",
    "Ipv4Header",
    "LazyPacket",
    "Packet",
    "ParseError",
    "TcpHeader",
    "UdpHeader",
    "checksum_apply_delta",
    "checksum_delta_u16",
    "checksum_delta_u32",
    "checksum_update_u16",
    "checksum_update_u32",
    "internet_checksum",
    "ip_to_int",
    "ip_to_str",
    "ipv4_header_checksum",
    "l4_checksum",
    "mac_to_bytes",
    "mac_to_str",
    "make_tcp_packet",
    "make_udp_packet",
]
