"""ICMP message model (RFC 792), including embedded-packet errors.

A traditional NAT must translate ICMP *error* messages (RFC 3022 §4.3):
a "destination unreachable" or "time exceeded" arriving from outside
carries, in its payload, the IP header + first 8 L4 bytes of the packet
that *caused* the error — and that embedded packet bears the NAT's
external address, so the NAT must rewrite it (and the outer header, and
both checksums) before delivering the error to the internal host.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.packets.checksum import internet_checksum
from repro.packets.headers import Ipv4Header, ParseError

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

#: ICMP types that carry an embedded offending packet.
ERROR_TYPES = (ICMP_DEST_UNREACHABLE, ICMP_TIME_EXCEEDED, 4, 5, 12)

# Precompiled codecs: the ICMP header and the embedded-quote port pair
# are unpacked on every ICMP packet the NAT inspects.
_ICMP_STRUCT = struct.Struct(">BBHI")
_U16_STRUCT = struct.Struct(">H")
_PORTS_STRUCT = struct.Struct(">HH")


@dataclass(slots=True)
class IcmpMessage:
    """One ICMP message: header fields plus the raw body."""

    icmp_type: int
    code: int = 0
    checksum: int = 0
    rest: int = 0  # the 4 "rest of header" bytes (id/seq for echo, MTU...)
    body: bytes = b""

    SIZE = 8

    def pack(self, *, fill_checksum: bool = True) -> bytes:
        raw = _ICMP_STRUCT.pack(
            self.icmp_type,
            self.code,
            0 if fill_checksum else self.checksum,
            self.rest,
        ) + self.body
        if fill_checksum:
            checksum = internet_checksum(raw)
            self.checksum = checksum
            raw = raw[:2] + _U16_STRUCT.pack(checksum) + raw[4:]
        return raw

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpMessage":
        if len(data) < cls.SIZE:
            raise ParseError("truncated ICMP message")
        icmp_type, code, checksum, rest = _ICMP_STRUCT.unpack_from(data)
        return cls(
            icmp_type=icmp_type,
            code=code,
            checksum=checksum,
            rest=rest,
            body=data[cls.SIZE :],
        )

    def is_error(self) -> bool:
        return self.icmp_type in ERROR_TYPES

    def checksum_valid(self) -> bool:
        raw = _ICMP_STRUCT.pack(self.icmp_type, self.code, 0, self.rest)
        return internet_checksum(raw + self.body) == self.checksum

    # -- embedded offending packet (error messages) --------------------------
    def embedded(self) -> Optional[Tuple[Ipv4Header, int, int, bytes]]:
        """Parse the embedded packet of an error message.

        Returns (ipv4_header, l4_src_port, l4_dst_port, trailing_bytes)
        or None when this is not an error / the body is too short. Only
        the first 8 L4 bytes are guaranteed present (RFC 792), which is
        exactly enough for the ports.
        """
        if not self.is_error():
            return None
        if len(self.body) < Ipv4Header.SIZE + 4:
            return None
        try:
            inner_ip = Ipv4Header.unpack(self.body)
        except ParseError:
            return None
        l4 = self.body[Ipv4Header.SIZE :]
        src_port, dst_port = _PORTS_STRUCT.unpack_from(l4)
        return inner_ip, src_port, dst_port, l4[4:]

    def replace_embedded(
        self, inner_ip: Ipv4Header, src_port: int, dst_port: int, trailing: bytes
    ) -> None:
        """Rebuild the body from a (rewritten) embedded packet.

        The embedded IP header's checksum is recomputed; the embedded L4
        checksum (inside ``trailing``, when present) is left as received
        — per RFC 792 only 8 L4 bytes are included, so receivers do not
        validate it.
        """
        self.body = (
            inner_ip.pack(fill_checksum=True)
            + _PORTS_STRUCT.pack(src_port, dst_port)
            + trailing
        )
