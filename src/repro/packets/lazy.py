"""Lazy zero-copy packet views for the microflow fast path.

`LazyPacket` wraps a mutable buffer (the mbuf bytes) and reads the
dispatch fields — ethertype, protocol, 5-tuple — straight out of the
buffer at fixed offsets via precompiled :class:`struct.Struct` codecs.
No header objects are allocated; a fast-path hit touches only the few
bytes it rewrites, patching the IPv4 and L4 checksums incrementally
per RFC 1624 instead of recomputing them.

The view is deliberately narrow: it understands exactly the frame shape
the NAT translates (Ethernet II + option-less IPv4 + TCP/UDP, not a
fragment). Anything else reports itself ineligible via
:meth:`LazyPacket.flow_key` and must take the slow path, where the full
header model in :mod:`repro.packets.headers` deals with it.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.packets.checksum import checksum_apply_delta, checksum_update_u16
from repro.packets.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    Ipv4Header,
)

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

# Fixed field offsets for Ethernet II + option-less IPv4 (IHL=5).
OFF_ETHERTYPE = 12
OFF_VERSION_IHL = 14
OFF_FLAGS_FRAG = 20
OFF_PROTO = 23
OFF_IP_CSUM = 24
OFF_SRC_IP = 26
OFF_DST_IP = 30
OFF_L4 = 34
OFF_SRC_PORT = 34
OFF_DST_PORT = 36
OFF_UDP_CSUM = 40
OFF_TCP_CSUM = 50

_MIN_LEN_UDP = OFF_L4 + 8
_MIN_LEN_TCP = OFF_L4 + 20


class LazyPacket:
    """A mutable field view over one frame's bytes.

    ``buf`` must be a ``bytearray`` (or any mutable buffer) holding the
    full frame; writes go straight into it.
    """

    __slots__ = ("buf", "device")

    def __init__(self, buf: bytearray, device: int = 0) -> None:
        self.buf = buf
        self.device = device

    # -- raw field accessors -------------------------------------------------
    def read_u16(self, offset: int) -> int:
        return _U16.unpack_from(self.buf, offset)[0]

    def read_u32(self, offset: int) -> int:
        return _U32.unpack_from(self.buf, offset)[0]

    def write_u16(self, offset: int, value: int) -> None:
        _U16.pack_into(self.buf, offset, value)

    def write_u32(self, offset: int, value: int) -> None:
        _U32.pack_into(self.buf, offset, value)

    # -- dispatch fields -----------------------------------------------------
    @property
    def ethertype(self) -> int:
        return _U16.unpack_from(self.buf, OFF_ETHERTYPE)[0]

    @property
    def protocol(self) -> int:
        return self.buf[OFF_PROTO]

    @property
    def src_ip(self) -> int:
        return _U32.unpack_from(self.buf, OFF_SRC_IP)[0]

    @property
    def dst_ip(self) -> int:
        return _U32.unpack_from(self.buf, OFF_DST_IP)[0]

    @property
    def src_port(self) -> int:
        return _U16.unpack_from(self.buf, OFF_SRC_PORT)[0]

    @property
    def dst_port(self) -> int:
        return _U16.unpack_from(self.buf, OFF_DST_PORT)[0]

    @property
    def ip_checksum(self) -> int:
        return _U16.unpack_from(self.buf, OFF_IP_CSUM)[0]

    def is_fragment(self) -> bool:
        """True when MF is set or the fragment offset is nonzero."""
        return bool(_U16.unpack_from(self.buf, OFF_FLAGS_FRAG)[0] & 0x3FFF)

    def l4_checksum_offset(self) -> int:
        return OFF_UDP_CSUM if self.protocol == PROTO_UDP else OFF_TCP_CSUM

    @property
    def l4_checksum(self) -> int:
        return _U16.unpack_from(self.buf, self.l4_checksum_offset())[0]

    def flow_key(self) -> Optional[Tuple[int, int, int, int, int, int]]:
        """(device, proto, src_ip, src_port, dst_ip, dst_port), or None.

        None means the frame is outside the fast path's narrow shape —
        non-IPv4, IPv4 options, a fragment, or a protocol other than
        TCP/UDP — and must be handled by the slow path.
        """
        buf = self.buf
        if len(buf) < _MIN_LEN_UDP:
            return None
        if _U16.unpack_from(buf, OFF_ETHERTYPE)[0] != ETHERTYPE_IPV4:
            return None
        if buf[OFF_VERSION_IHL] != Ipv4Header.VERSION_IHL:
            return None
        if _U16.unpack_from(buf, OFF_FLAGS_FRAG)[0] & 0x3FFF:
            return None
        proto = buf[OFF_PROTO]
        if proto == PROTO_TCP:
            if len(buf) < _MIN_LEN_TCP:
                return None
        elif proto != PROTO_UDP:
            return None
        return (
            self.device,
            proto,
            _U32.unpack_from(buf, OFF_SRC_IP)[0],
            _U16.unpack_from(buf, OFF_SRC_PORT)[0],
            _U32.unpack_from(buf, OFF_DST_IP)[0],
            _U16.unpack_from(buf, OFF_DST_PORT)[0],
        )

    # -- checksum patching ---------------------------------------------------
    def patch_ip_checksum(self, delta: int) -> None:
        old = _U16.unpack_from(self.buf, OFF_IP_CSUM)[0]
        _U16.pack_into(self.buf, OFF_IP_CSUM, checksum_apply_delta(old, delta))

    def patch_l4_checksum(self, delta: int) -> None:
        """Apply a delta to the L4 checksum, honoring RFC 768.

        A UDP checksum of 0 means "no checksum"; it must stay 0 through
        any rewrite, so the patch is skipped (matching the slow path's
        rewrite helpers).
        """
        offset = self.l4_checksum_offset()
        old = _U16.unpack_from(self.buf, offset)[0]
        if old == 0 and offset == OFF_UDP_CSUM:
            return
        _U16.pack_into(self.buf, offset, checksum_apply_delta(old, delta))

    # -- semantic field writers (RFC 1624 in-place patching) -----------------
    def _set_ip(self, offset: int, new_ip: int) -> None:
        old_ip = _U32.unpack_from(self.buf, offset)[0]
        if old_ip == new_ip:
            return
        _U32.pack_into(self.buf, offset, new_ip)
        for old_w, new_w in (
            ((old_ip >> 16) & 0xFFFF, (new_ip >> 16) & 0xFFFF),
            (old_ip & 0xFFFF, new_ip & 0xFFFF),
        ):
            ip_csum = _U16.unpack_from(self.buf, OFF_IP_CSUM)[0]
            _U16.pack_into(
                self.buf, OFF_IP_CSUM, checksum_update_u16(ip_csum, old_w, new_w)
            )
            self._patch_l4_for_word(old_w, new_w)

    def _patch_l4_for_word(self, old_w: int, new_w: int) -> None:
        # The L4 checksum covers the pseudo-header (addresses), so IP
        # rewrites patch it too — unless it's a disabled UDP checksum.
        offset = self.l4_checksum_offset()
        l4_csum = _U16.unpack_from(self.buf, offset)[0]
        if l4_csum == 0 and offset == OFF_UDP_CSUM:
            return
        _U16.pack_into(
            self.buf, offset, checksum_update_u16(l4_csum, old_w, new_w)
        )

    def _set_port(self, offset: int, new_port: int) -> None:
        old_port = _U16.unpack_from(self.buf, offset)[0]
        if old_port == new_port:
            return
        _U16.pack_into(self.buf, offset, new_port)
        self._patch_l4_for_word(old_port, new_port)

    def set_src(self, new_ip: int, new_port: int) -> None:
        """Rewrite source IP and port, patching both checksums in place."""
        self._set_ip(OFF_SRC_IP, new_ip)
        self._set_port(OFF_SRC_PORT, new_port)

    def set_dst(self, new_ip: int, new_port: int) -> None:
        """Rewrite destination IP and port, patching both checksums in place."""
        self._set_ip(OFF_DST_IP, new_ip)
        self._set_port(OFF_DST_PORT, new_port)

    def tobytes(self) -> bytes:
        return bytes(self.buf)


__all__ = [
    "LazyPacket",
    "OFF_DST_IP",
    "OFF_DST_PORT",
    "OFF_ETHERTYPE",
    "OFF_FLAGS_FRAG",
    "OFF_IP_CSUM",
    "OFF_L4",
    "OFF_PROTO",
    "OFF_SRC_IP",
    "OFF_SRC_PORT",
    "OFF_TCP_CSUM",
    "OFF_UDP_CSUM",
    "OFF_VERSION_IHL",
]
