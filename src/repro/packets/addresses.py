"""Conversions between human-readable and numeric network addresses.

IPv4 addresses are represented as unsigned 32-bit integers in host order
throughout the library (the NAT's flow table keys on integers); MAC
addresses are represented as 6-byte ``bytes`` values.
"""

from __future__ import annotations

IPV4_MAX = 0xFFFFFFFF


def ip_to_int(text: str) -> int:
    """Parse dotted-quad notation into an unsigned 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Render an unsigned 32-bit integer as dotted-quad notation."""
    if not 0 <= value <= IPV4_MAX:
        raise ValueError(f"IPv4 address out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` notation into 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"not a MAC address: {text!r}")
    raw = bytes(int(part, 16) for part in parts)
    return raw


def mac_to_str(raw: bytes) -> str:
    """Render 6 bytes as ``aa:bb:cc:dd:ee:ff`` notation."""
    if len(raw) != 6:
        raise ValueError(f"MAC address must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)
