"""Convenience constructors for test and benchmark traffic."""

from __future__ import annotations

from repro.packets.addresses import ip_to_int, mac_to_bytes
from repro.packets.headers import (
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    Packet,
    TcpHeader,
    UdpHeader,
)

_DEFAULT_SRC_MAC = mac_to_bytes("02:00:00:00:00:01")
_DEFAULT_DST_MAC = mac_to_bytes("02:00:00:00:00:02")


def _as_ip(value: int | str) -> int:
    return ip_to_int(value) if isinstance(value, str) else value


def make_udp_packet(
    src_ip: int | str,
    dst_ip: int | str,
    src_port: int,
    dst_port: int,
    *,
    payload: bytes = b"",
    device: int = 0,
    ttl: int = 64,
) -> Packet:
    """Build a UDP/IPv4/Ethernet packet with consistent lengths."""
    src, dst = _as_ip(src_ip), _as_ip(dst_ip)
    udp = UdpHeader(
        src_port=src_port,
        dst_port=dst_port,
        length=UdpHeader.SIZE + len(payload),
    )
    ipv4 = Ipv4Header(
        total_length=Ipv4Header.SIZE + udp.length,
        ttl=ttl,
        protocol=PROTO_UDP,
        src_ip=src,
        dst_ip=dst,
    )
    eth = EthernetHeader(dst=_DEFAULT_DST_MAC, src=_DEFAULT_SRC_MAC)
    packet = Packet(eth=eth, ipv4=ipv4, l4=udp, payload=payload, device=device)
    packet.to_bytes()  # populate valid IPv4 and UDP checksums
    return packet


def make_tcp_packet(
    src_ip: int | str,
    dst_ip: int | str,
    src_port: int,
    dst_port: int,
    *,
    payload: bytes = b"",
    flags: int = 0x10,
    seq: int = 0,
    device: int = 0,
    ttl: int = 64,
) -> Packet:
    """Build a TCP/IPv4/Ethernet packet with consistent lengths."""
    src, dst = _as_ip(src_ip), _as_ip(dst_ip)
    tcp = TcpHeader(src_port=src_port, dst_port=dst_port, seq=seq, flags=flags)
    ipv4 = Ipv4Header(
        total_length=Ipv4Header.SIZE + TcpHeader.SIZE + len(payload),
        ttl=ttl,
        protocol=PROTO_TCP,
        src_ip=src,
        dst_ip=dst,
    )
    eth = EthernetHeader(dst=_DEFAULT_DST_MAC, src=_DEFAULT_SRC_MAC)
    packet = Packet(eth=eth, ipv4=ipv4, l4=tcp, payload=payload, device=device)
    packet.to_bytes()  # populate valid IPv4 and TCP checksums
    return packet
