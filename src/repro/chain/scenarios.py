"""Operational scenarios over live chain traffic, with measured SLAs.

sonic-mgmt-style scenario tests, scaled to this repo: each scenario
stands up a real service chain, offers real traffic round by round, and
performs one disruptive operation mid-run — a warm upgrade via chain
checkpoint/restore, an active/standby promotion of a single stage, or a
seeded chaos soak. Loss, disruption window and flow survival are
**measured from the traffic that actually exited the chain**, never
modeled, and judged against a declared :class:`ScenarioSla`.

Definitions:

- *offered/delivered/lost*: packets injected on the chain's inward edge
  vs. packets that exited the outward edge, totaled over every round
  (probe rounds included).
- *availability*: ``delivered / offered``.
- *disruption window*: the span from the first lossy round to the last,
  in microseconds of traffic time (``0`` when no round lost anything) —
  the measured analogue of a failover MTTR.
- *flows lost*: flows whose externally visible NAT mapping after the
  disruption differs from the mapping observed before it (a mapping
  that changed mid-connection resets real connections, even if packets
  flow again).
- *action wall time*: host wall-clock nanoseconds spent inside the
  disruptive control-plane action itself (checkpoint + launch + restore
  for the upgrade; promotion for the standby swap), reported for
  context but never SLA-gated — wall clock is machine-dependent,
  traffic-time loss is not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.spec import ChainRuntime, ChainSpec, ChainStage, launch_chain
from repro.nat.config import NatConfig
from repro.nat.firewall import VigFirewall
from repro.nat.limiter import LimiterConfig, VigLimiter
from repro.nat.vignat import VigNat
from repro.net.app import INLINE
from repro.packets.builder import make_udp_packet
from repro.resil.faults import FaultPlan

#: Traffic time per round, in microseconds.
DEFAULT_TICK_US = 1_000

SCENARIOS = ("warm-upgrade", "promote-stage", "chaos-soak")


@dataclass(frozen=True)
class ScenarioSla:
    """Declared budgets a scenario's measurements must satisfy."""

    min_availability: float
    max_disruption_us: int
    max_flows_lost: int = 0
    max_probe_loss: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_availability <= 1.0:
            raise ValueError("availability floor must be within [0, 1]")
        if self.max_disruption_us < 0 or self.max_flows_lost < 0:
            raise ValueError("SLA budgets cannot be negative")
        if self.max_probe_loss < 0:
            raise ValueError("SLA budgets cannot be negative")


@dataclass(frozen=True)
class ScenarioReport:
    """One scenario's measured outcome, judged against its SLA."""

    scenario: str
    offered: int
    delivered: int
    lost: int
    availability: float
    disruption_us: int
    action_wall_us: int
    flows_total: int
    flows_lost: int
    probe_offered: int
    probe_lost: int
    sla: ScenarioSla
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def sla_ok(self) -> bool:
        return not scenario_breaches(self)

    def to_record(self) -> Dict[str, object]:
        """The benchmark-record shape ``BENCH_chain.json`` commits."""
        return {
            "nf": "chain",
            "scenario": self.scenario,
            "offered": self.offered,
            "delivered": self.delivered,
            "lost": self.lost,
            "availability": round(self.availability, 6),
            "disruption_us": self.disruption_us,
            "flows_total": self.flows_total,
            "flows_lost": self.flows_lost,
            "probe_offered": self.probe_offered,
            "probe_lost": self.probe_lost,
            "sla_ok": self.sla_ok,
            "sla": {
                "min_availability": self.sla.min_availability,
                "max_disruption_us": self.sla.max_disruption_us,
                "max_flows_lost": self.sla.max_flows_lost,
                "max_probe_loss": self.sla.max_probe_loss,
            },
            "details": dict(self.details),
        }


def scenario_breaches(report: ScenarioReport) -> List[str]:
    """Human-readable SLA violations for one report (empty = pass)."""
    sla = report.sla
    breaches = []
    if report.availability < sla.min_availability:
        breaches.append(
            f"{report.scenario}: availability {report.availability:.4f} "
            f"below floor {sla.min_availability:.4f}"
        )
    if report.disruption_us > sla.max_disruption_us:
        breaches.append(
            f"{report.scenario}: disruption window {report.disruption_us} us "
            f"over budget {sla.max_disruption_us} us"
        )
    if report.flows_lost > sla.max_flows_lost:
        breaches.append(
            f"{report.scenario}: {report.flows_lost} flow mapping(s) lost "
            f"(budget {sla.max_flows_lost})"
        )
    if report.probe_lost > sla.max_probe_loss:
        breaches.append(
            f"{report.scenario}: {report.probe_lost} post-disruption probe "
            f"packet(s) lost (budget {sla.max_probe_loss})"
        )
    return breaches


def chain_breaches(reports: List[ScenarioReport]) -> List[str]:
    """Every SLA violation across a scenario suite (empty = all pass)."""
    breaches: List[str] = []
    for report in reports:
        breaches.extend(scenario_breaches(report))
    return breaches


# -- the reference chain -------------------------------------------------------
def default_chain_spec(
    execution: str = INLINE,
    fastpath: object = False,
    max_flows: int = 1024,
    **overrides,
) -> ChainSpec:
    """The scenario suite's reference chain: firewall → limiter → NAT.

    A deliberately mixed pipeline: two hook-less NFs (connection
    tracking, per-source budgeting) in front of the fast-path-capable
    NAT, all on default 0/1 device numbering — the chain remaps devices
    at each handoff. The limiter budget is set far above any scenario's
    per-window offered load so it shapes nothing; it is in the chain to
    carry state through checkpoints, not to police the test traffic.
    """
    nat_config = NatConfig(
        max_flows=max_flows, expiration_time=60_000_000, start_port=1000
    )
    stages = (
        ChainStage("firewall", lambda cfg: VigFirewall(cfg), nat_config),
        ChainStage(
            "limiter",
            lambda cfg: VigLimiter(cfg),
            LimiterConfig(capacity=max_flows, max_packets=1_000_000),
        ),
        ChainStage("nat", lambda cfg: VigNat(cfg), nat_config),
    )
    return ChainSpec(
        stages=stages, execution=execution, fastpath=fastpath, **overrides
    )


class _Traffic:
    """Deterministic per-flow UDP traffic with mapping harvesting."""

    def __init__(self, flows: int) -> None:
        if flows <= 0:
            raise ValueError("need at least one flow")
        if flows > 60_000:
            raise ValueError("flow identities are packed into dst_port")
        self.flows = flows
        self._templates = [
            make_udp_packet(
                f"10.0.{i // 250}.{i % 250 + 1}",
                "203.0.113.9",
                1024 + i,
                2000 + i,
                payload=b"chain-scenario",
            )
            for i in range(flows)
        ]

    def offer(self, chain: ChainRuntime, now_us: int) -> int:
        """Inject one packet per flow on the inward edge; returns count."""
        for template in self._templates:
            chain.inject(0, template.clone(), now_us)
        return self.flows

    def harvest(
        self, chain: ChainRuntime
    ) -> Tuple[int, Dict[int, Tuple[int, int]]]:
        """Count outward-edge exits; map flow id → (ext ip, ext port).

        Flows are identified by their unique destination port, which no
        NF in the chain rewrites; the NAT's externally visible mapping
        is the exit packet's source ip/port.
        """
        delivered = 0
        mappings: Dict[int, Tuple[int, int]] = {}
        for port_id, _ts, packet in chain.collect():
            if port_id != 1 or packet.l4 is None or packet.ipv4 is None:
                continue
            flow = packet.l4.dst_port - 2000
            if not 0 <= flow < self.flows:
                continue
            delivered += 1
            mappings[flow] = (packet.ipv4.src_ip, packet.l4.src_port)
        return delivered, mappings


@dataclass
class _Meter:
    """Accumulates per-round loss into the report's measurements."""

    offered: int = 0
    delivered: int = 0
    first_lossy_us: Optional[int] = None
    last_lossy_us: Optional[int] = None

    def round(self, now_us: int, offered: int, delivered: int, tick_us: int) -> None:
        self.offered += offered
        self.delivered += delivered
        if delivered < offered:
            if self.first_lossy_us is None:
                self.first_lossy_us = now_us
            self.last_lossy_us = now_us + tick_us

    @property
    def lost(self) -> int:
        return self.offered - self.delivered

    @property
    def availability(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    @property
    def disruption_us(self) -> int:
        if self.first_lossy_us is None:
            return 0
        return self.last_lossy_us - self.first_lossy_us


def _turn(
    chain: ChainRuntime,
    traffic: _Traffic,
    meter: _Meter,
    now_us: int,
    tick_us: int,
) -> Dict[int, Tuple[int, int]]:
    """Offer one round, run one chain turn, meter what came out."""
    offered = traffic.offer(chain, now_us)
    chain.main_loop_burst(now_us)
    delivered, mappings = traffic.harvest(chain)
    meter.round(now_us, offered, delivered, tick_us)
    return mappings


def _flows_lost(
    before: Dict[int, Tuple[int, int]], after: Dict[int, Tuple[int, int]]
) -> int:
    """Flows whose observed NAT mapping changed or vanished."""
    return sum(
        1 for flow, mapping in before.items() if after.get(flow) != mapping
    )


# -- scenarios -----------------------------------------------------------------
def warm_upgrade(
    spec: ChainSpec,
    flows: int = 32,
    rounds: int = 16,
    tick_us: int = DEFAULT_TICK_US,
    sla: Optional[ScenarioSla] = None,
) -> ScenarioReport:
    """Replace the whole chain mid-run via checkpoint/restore.

    Halfway through the run the live chain is snapshotted
    (``repro-ckpt-set/v1``, one frame per stage), a brand-new chain is
    launched from the same spec and restored from the set, and traffic
    cuts over. One round is deliberately left queued inside the old
    chain when it is retired — the measured in-flight loss of an
    upgrade without connection draining. Every NAT mapping observed
    before the upgrade must be observed unchanged after it.
    """
    if sla is None:
        sla = ScenarioSla(
            min_availability=0.90,
            max_disruption_us=2 * tick_us,
            max_flows_lost=0,
            max_probe_loss=0,
        )
    if rounds < 6:
        raise ValueError("warm upgrade needs at least 6 rounds")
    chain = launch_chain(spec)
    traffic = _Traffic(flows)
    meter = _Meter()
    pre: Dict[int, Tuple[int, int]] = {}
    now_us = 0
    try:
        half = rounds // 2
        for _ in range(half):
            pre = _turn(chain, traffic, meter, now_us, tick_us) or pre
            now_us += tick_us

        # One round goes in but is never turned: it rides the old
        # chain's RX rings into retirement. Counted as offered, lost.
        meter.round(now_us, traffic.offer(chain, now_us), 0, tick_us)
        now_us += tick_us

        started_ns = time.perf_counter_ns()
        snapshot = chain.checkpoint(now_us)
        upgraded = launch_chain(spec)
        try:
            upgraded.restore(snapshot)
        except Exception:
            upgraded.stop()
            raise
        action_wall_us = (time.perf_counter_ns() - started_ns) // 1_000
        chain.stop()
        chain = upgraded

        post: Dict[int, Tuple[int, int]] = {}
        probe = _Meter()
        for _ in range(rounds - half - 1):
            mappings = _turn(chain, traffic, meter, now_us, tick_us)
            probe.round(now_us, traffic.flows, len(mappings), tick_us)
            post = mappings or post
            now_us += tick_us
    finally:
        chain.stop()
    return ScenarioReport(
        scenario="warm-upgrade",
        offered=meter.offered,
        delivered=meter.delivered,
        lost=meter.lost,
        availability=meter.availability,
        disruption_us=meter.disruption_us,
        action_wall_us=action_wall_us,
        flows_total=flows,
        flows_lost=_flows_lost(pre, post),
        probe_offered=probe.offered,
        probe_lost=probe.lost,
        sla=sla,
        details={
            "rounds": rounds,
            "tick_us": tick_us,
            "checkpoint_stages": snapshot.workers,
        },
    )


def promote_stage(
    spec: ChainSpec,
    stage_index: Optional[int] = None,
    flows: int = 32,
    rounds: int = 16,
    down_rounds: int = 2,
    tick_us: int = DEFAULT_TICK_US,
    sla: Optional[ScenarioSla] = None,
) -> ScenarioReport:
    """Kill one stage mid-run, then promote a warm standby for it.

    After every completed round the stage's state is checkpointed (the
    standby's sync stream). Mid-run the stage fails: traffic reaching it
    blackholes for ``down_rounds`` rounds — the *measured* disruption
    window — then a fresh engine is promoted from the last sync and
    traffic resumes. Because the sync is per-round, the promoted stage
    carries every mapping the dead one had.
    """
    chain = launch_chain(spec)
    if stage_index is None:
        stage_index = len(spec.stages) - 1
    if sla is None:
        sla = ScenarioSla(
            min_availability=0.75,
            max_disruption_us=(down_rounds + 1) * tick_us,
            max_flows_lost=0,
            max_probe_loss=0,
        )
    if rounds < down_rounds + 4:
        raise ValueError("promotion needs rounds >= down_rounds + 4")
    traffic = _Traffic(flows)
    meter = _Meter()
    pre: Dict[int, Tuple[int, int]] = {}
    now_us = 0
    try:
        half = (rounds - down_rounds) // 2
        sync = None
        for _ in range(half):
            pre = _turn(chain, traffic, meter, now_us, tick_us) or pre
            sync = chain.checkpoint_stage(stage_index, now_us)
            now_us += tick_us

        chain.fail_stage(stage_index)
        for _ in range(down_rounds):
            _turn(chain, traffic, meter, now_us, tick_us)
            now_us += tick_us

        started_ns = time.perf_counter_ns()
        chain.swap_stage(stage_index, sync)
        action_wall_us = (time.perf_counter_ns() - started_ns) // 1_000

        post: Dict[int, Tuple[int, int]] = {}
        probe = _Meter()
        for _ in range(rounds - half - down_rounds):
            mappings = _turn(chain, traffic, meter, now_us, tick_us)
            probe.round(now_us, traffic.flows, len(mappings), tick_us)
            post = mappings or post
            now_us += tick_us
    finally:
        chain.stop()
    return ScenarioReport(
        scenario="promote-stage",
        offered=meter.offered,
        delivered=meter.delivered,
        lost=meter.lost,
        availability=meter.availability,
        disruption_us=meter.disruption_us,
        action_wall_us=action_wall_us,
        flows_total=flows,
        flows_lost=_flows_lost(pre, post),
        probe_offered=probe.offered,
        probe_lost=probe.lost,
        sla=sla,
        details={
            "rounds": rounds,
            "tick_us": tick_us,
            "stage": spec.stages[stage_index].name,
            "down_rounds": down_rounds,
        },
    )


def chaos_soak(
    spec: ChainSpec,
    flows: int = 32,
    rounds: int = 24,
    tick_us: int = DEFAULT_TICK_US,
    seed: int = 4242,
    sla: Optional[ScenarioSla] = None,
) -> ScenarioReport:
    """Soak the chain through a seeded mid-run fault storm.

    The middle third of the run gets a deterministic
    :class:`~repro.resil.faults.FaultPlan` at the chain's wire-inject
    choke point: probabilistic drops, corruption, a fixed delay, and
    packet reordering. Outside the window the wire is clean, so the
    post-storm probe rounds must be lossless and every pre-storm NAT
    mapping must survive (chaos may eat packets, never state).
    """
    if rounds < 9:
        raise ValueError("chaos soak needs at least 9 rounds")
    window_start = (rounds // 3) * tick_us
    window_end = (2 * rounds // 3) * tick_us
    plan = (
        FaultPlan(seed)
        .link_drop(window_start, window_end, probability=0.05)
        .link_corrupt(window_start, window_end, probability=0.02)
        .link_delay(50, window_start, window_end)
        .reorder(window_start, window_end, probability=0.2)
    )
    if sla is None:
        sla = ScenarioSla(
            min_availability=0.85,
            max_disruption_us=window_end - window_start + tick_us,
            max_flows_lost=0,
            max_probe_loss=0,
        )
    chain = launch_chain(spec.with_(fault_plan=plan))
    traffic = _Traffic(flows)
    meter = _Meter()
    probe = _Meter()
    pre: Dict[int, Tuple[int, int]] = {}
    post: Dict[int, Tuple[int, int]] = {}
    now_us = 0
    try:
        for _ in range(rounds):
            mappings = _turn(chain, traffic, meter, now_us, tick_us)
            if now_us + tick_us <= window_start:
                pre = mappings or pre
            elif now_us >= window_end:
                probe.round(now_us, traffic.flows, len(mappings), tick_us)
                post = mappings or post
            now_us += tick_us
    finally:
        chain.stop()
    return ScenarioReport(
        scenario="chaos-soak",
        offered=meter.offered,
        delivered=meter.delivered,
        lost=meter.lost,
        availability=meter.availability,
        disruption_us=meter.disruption_us,
        action_wall_us=0,
        flows_total=flows,
        flows_lost=_flows_lost(pre, post),
        probe_offered=probe.offered,
        probe_lost=probe.lost,
        sla=sla,
        details={
            "rounds": rounds,
            "tick_us": tick_us,
            "seed": seed,
            "window_us": [window_start, window_end],
            "faults_applied": dict(plan.applied),
        },
    )


def chain_scenarios(
    spec: Optional[ChainSpec] = None,
    flows: int = 32,
    rounds: int = 16,
    tick_us: int = DEFAULT_TICK_US,
    seed: int = 4242,
) -> List[ScenarioReport]:
    """Run the full scenario suite against one chain spec."""
    if spec is None:
        spec = default_chain_spec()
    return [
        warm_upgrade(spec, flows=flows, rounds=rounds, tick_us=tick_us),
        promote_stage(spec, flows=flows, rounds=rounds, tick_us=tick_us),
        chaos_soak(
            spec,
            flows=flows,
            rounds=max(rounds, 9),
            tick_us=tick_us,
            seed=seed,
        ),
    ]


__all__ = [
    "DEFAULT_TICK_US",
    "SCENARIOS",
    "ScenarioReport",
    "ScenarioSla",
    "chain_breaches",
    "chain_scenarios",
    "chaos_soak",
    "default_chain_spec",
    "promote_stage",
    "scenario_breaches",
    "warm_upgrade",
]
