"""repro.chain: NF service chains behind the standard runtime protocol.

:mod:`repro.chain.spec` composes the repo's NFs into ordered service
chains (one frozen :class:`ChainSpec`, one :func:`launch_chain`);
:mod:`repro.chain.scenarios` runs operational scenarios — warm upgrade,
stage promotion, chaos soak — over live chain traffic and judges the
*measured* loss and disruption against declared SLA budgets.
"""

from repro.chain.scenarios import (
    DEFAULT_TICK_US,
    SCENARIOS,
    ScenarioReport,
    ScenarioSla,
    chain_breaches,
    chain_scenarios,
    chaos_soak,
    default_chain_spec,
    promote_stage,
    scenario_breaches,
    warm_upgrade,
)
from repro.chain.spec import (
    CHAIN_EXECUTIONS,
    ChainRuntime,
    ChainSpec,
    ChainStage,
    launch_chain,
)

__all__ = [
    "CHAIN_EXECUTIONS",
    "ChainRuntime",
    "ChainSpec",
    "ChainStage",
    "DEFAULT_TICK_US",
    "SCENARIOS",
    "ScenarioReport",
    "ScenarioSla",
    "chain_breaches",
    "chain_scenarios",
    "chaos_soak",
    "default_chain_spec",
    "launch_chain",
    "promote_stage",
    "scenario_breaches",
    "warm_upgrade",
]
