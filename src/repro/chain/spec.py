"""NF service chains: one spec, one launcher, the same runtime protocol.

A :class:`ChainSpec` composes existing NFs (firewall, bridge, limiter,
the NATs, the no-op forwarder) into an ordered service chain; the
resulting :class:`ChainRuntime` satisfies the same
:class:`~repro.net.app.Runtime` protocol every other launched runtime
speaks, so drivers, sweeps and the CLI treat a whole chain like one NF.

Topology and device remapping
-----------------------------

The chain has two wire ports: port 0 faces stage 0's ``device_a`` side
(the "left"/inward edge), port 1 faces the last stage's ``device_b``
side (the "right"/outward edge). Each stage keeps its own device
numbering; the chain remaps at every handoff:

- a packet a stage emits on its ``device_b`` moves right — into the
  next stage (arriving on that stage's ``device_a``) or, after the last
  stage, out chain port 1;
- a packet emitted on ``device_a`` moves left — into the previous stage
  (arriving on its ``device_b``) or, before stage 0, out chain port 0;
- anything else is a *misroute*: dropped, counted per stage, and
  recorded in the stage's truth log.

Each stage runs behind its own launched engine — an
:class:`~repro.net.app.InlineRuntime` (``execution="inline"``) or a
single-worker :class:`~repro.net.procrun.ProcessShardedRuntime`
(``execution="process"``) — so a chain composes *runtimes*, not bare
NFs, and per-stage pool/port accounting comes for free. The chain-level
``main_loop_burst`` threads every stage's TX into its neighbor's RX
within the turn: an ascending sweep carries rightward traffic the whole
way in one turn, a descending sweep then does the same for leftward
traffic (NAT replies), so one turn fully flushes both directions.

Truth logs. Every stage owns a bounded
:class:`~repro.obs.flight.FlightRecorder` that records each handoff in
(``rx``), emission (``tx``) and misroute (``drop``) regardless of the
global observability switch — the last ``truth_log_capacity`` events
per stage are always available for post-mortems via
:meth:`ChainRuntime.stage_truth` — and ``chain_stage_*``
counters/gauges are stamped with stage labels (via
:func:`~repro.obs.with_labels`) in :meth:`ChainRuntime.snapshot_metrics`.

Checkpoint/restore. :meth:`ChainRuntime.checkpoint` binds one frame per
stage into a single ``repro-ckpt-set/v1``
:class:`~repro.resil.checkpoint.CheckpointSet` (stage order is frame
order); :meth:`ChainRuntime.restore` is all-or-nothing — every frame is
first restored into freshly built NFs (running the full per-NF
validation) and only then adopted, so a bad set leaves the chain
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, normalize_fastpath
from repro.net.app import INLINE, PROCESS, RuntimeSpec, launch
from repro.net.nic import Port
from repro.obs import flight
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry, with_labels
from repro.packets.headers import Packet
from repro.resil.checkpoint import CheckpointError, CheckpointSet, restore_all

#: Execution modes a chain supports: every stage inline in this
#: process, or one OS process per stage.
CHAIN_EXECUTIONS = (INLINE, PROCESS)


@dataclass(frozen=True)
class ChainStage:
    """One position in a service chain: an NF and its two-sided port map.

    ``nf_factory`` is called with ``config`` (which may be ``None`` or
    any NF-specific config object — the chain never partitions it);
    ``device_a``/``device_b`` name the NF's own inward/outward devices,
    matching its config (e.g. a NAT's ``internal_device``/
    ``external_device``, a limiter's ingress/egress).
    """

    name: str
    nf_factory: Callable[[Optional[object]], NetworkFunction]
    config: Optional[object] = None
    device_a: int = 0
    device_b: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("every chain stage needs a name")
        if not callable(self.nf_factory):
            raise ValueError(f"stage {self.name!r}: nf_factory must be callable")
        if self.device_a < 0 or self.device_b < 0:
            raise ValueError(f"stage {self.name!r}: devices must be >= 0")
        if self.device_a == self.device_b:
            raise ValueError(f"stage {self.name!r}: devices must differ")

    def build_nf(self) -> NetworkFunction:
        return self.nf_factory(self.config)


@dataclass(frozen=True)
class ChainSpec:
    """Everything needed to stand up a service chain, in one value.

    Frozen and validated like :class:`~repro.net.app.RuntimeSpec`: a
    chain spec can be hashed, logged in a benchmark record, and varied
    with :meth:`with_` — two runs launched from equal specs are
    comparable runs. The ``fastpath`` tri-state applies per stage, to
    exactly the stages whose NF publishes fast-path hooks (the others
    run their slow path unchanged, preserving byte identity).
    """

    stages: Tuple[ChainStage, ...]
    execution: str = INLINE
    fastpath: object = False
    burst_size: int = 32
    rx_capacity: int = 512
    pool_size: int = 4096
    fault_plan: Optional[object] = None
    #: Bounded per-stage truth-log ring (always recording).
    truth_log_capacity: int = 256
    #: Process execution only, forwarded to each stage's RuntimeSpec.
    transport: str = "shm"
    turn_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "fastpath", normalize_fastpath(self.fastpath))
        if not self.stages:
            raise ValueError("a chain needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        if self.execution not in CHAIN_EXECUTIONS:
            raise ValueError(
                f"unknown chain execution {self.execution!r}; "
                f"choose one of {CHAIN_EXECUTIONS}"
            )
        if self.burst_size <= 0:
            raise ValueError("burst size must be positive")
        if self.rx_capacity <= 0 or self.pool_size <= 0:
            raise ValueError("rx capacity and pool size must be positive")
        if self.truth_log_capacity <= 0:
            raise ValueError("truth log capacity must be positive")
        if self.turn_timeout_s <= 0:
            raise ValueError("turn timeout must be positive")
        from repro.net.procrun import TRANSPORTS

        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"choose one of {TRANSPORTS}"
            )

    def with_(self, **overrides) -> "ChainSpec":
        """A varied copy — ``spec.with_(execution=PROCESS)``."""
        return replace(self, **overrides)


class ChainRuntime:
    """A launched service chain, driven like any other runtime.

    See the module docstring for topology, truth logs and the
    checkpoint contract. ``workers`` reports the number of stages.
    """

    def __init__(self, spec: ChainSpec) -> None:
        self.spec = spec
        self.stages = spec.stages
        n = len(spec.stages)
        # Per-stage effective fastpath: the spec's mode where the NF
        # publishes hooks, "off" elsewhere (FastPathNat refuses NFs
        # without hooks; equivalence makes the mix byte-transparent).
        self._stage_fastpath: List[str] = []
        self._stage_nf_names: List[str] = []
        for stage in spec.stages:
            probe = stage.build_nf()
            supports = probe.fastpath_hooks() is not None
            self._stage_fastpath.append(spec.fastpath if supports else "off")
            self._stage_nf_names.append(probe.name)
        self.engines = [self._launch_stage(i) for i in range(n)]
        self._down: List[bool] = [False] * n
        # Two wire-facing ports with bounded RX rings, like any NIC.
        self._ports = [Port(0, spec.rx_capacity), Port(1, spec.rx_capacity)]
        # Handoff buffers: packets waiting to enter stage i next sweep,
        # as (stage-local device, timestamp, packet).
        self._pending: List[List[Tuple[int, int, Packet]]] = [[] for _ in range(n)]
        # Truth logs + chain_stage_* counter state.
        self.stage_logs = [
            FlightRecorder(spec.truth_log_capacity) for _ in range(n)
        ]
        self._stage_rx = [0] * n
        self._stage_tx = [0] * n
        self._stage_misroute = [0] * n
        self._stage_killed = [0] * n
        self._handoffs = 0
        self._exited = [0, 0]
        self._promotions = 0
        self.fault_wire_dropped = 0
        self.fault_wire_corrupted = 0

    # -- construction ----------------------------------------------------------
    def _stage_spec(self, index: int) -> RuntimeSpec:
        stage = self.stages[index]
        spec = self.spec
        # The stage factory closes over the stage's own config; the
        # RuntimeSpec-level config only feeds process-mode partitioning
        # plumbing (degenerate at one worker), so it is passed through
        # only when it actually is a NatConfig.
        build = stage.nf_factory
        config = stage.config

        def factory(_shard_config, build=build, config=config):
            return build(config)

        return RuntimeSpec(
            nf_factory=factory,
            config=config if isinstance(config, NatConfig) else None,
            workers=1,
            execution=spec.execution,
            fastpath=self._stage_fastpath[index],
            burst_size=spec.burst_size,
            port_count=max(2, stage.device_a + 1, stage.device_b + 1),
            rx_capacity=spec.rx_capacity,
            pool_size=spec.pool_size,
            transport=spec.transport,
            turn_timeout_s=spec.turn_timeout_s,
        )

    def _launch_stage(self, index: int):
        return launch(self._stage_spec(index))

    # -- introspection ---------------------------------------------------------
    @property
    def workers(self) -> int:
        """Stages in the chain (each stage is one worker slot)."""
        return len(self.stages)

    def stage_truth(self, index: int) -> FlightRecorder:
        """Stage ``index``'s bounded truth log (always recording)."""
        return self.stage_logs[index]

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def per_stage_counters(self) -> List[Dict[str, int]]:
        """Each stage NF's own op counters, in chain order."""
        return [dict(engine.op_counters()) for engine in self.engines]

    def op_counters(self) -> Dict[str, int]:
        return {
            "injected": sum(p.counters.rx_packets for p in self._ports),
            "exited": sum(self._exited),
            "handoffs": self._handoffs,
            "misroutes": sum(self._stage_misroute),
            "stage_killed": sum(self._stage_killed),
            "promotions": self._promotions,
        }

    def drop_causes(self) -> Dict[str, int]:
        causes: Dict[str, int] = {
            "chain_rx_ring_full": sum(p.counters.rx_dropped for p in self._ports),
            "chain_misroute": sum(self._stage_misroute),
            "chain_stage_killed": sum(self._stage_killed),
        }
        for engine in self.engines:
            for key, value in engine.drop_causes().items():
                causes[key] = causes.get(key, 0) + value
        if self.spec.fault_plan is not None:
            causes["fault_wire_dropped"] = self.fault_wire_dropped
            causes["fault_wire_corrupted"] = self.fault_wire_corrupted
        return causes

    def flow_count(self) -> int:
        return sum(engine.flow_count() for engine in self.engines)

    # -- wire side -------------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Deliver a packet from the wire onto one of the chain's edges.

        The chain's fault plan is consulted here (the inject choke
        point), scoped to the entry stage's index: drops/corruption/
        delay exactly like the sharded runtimes, and a firing
        ``reorder`` fault swaps the port's two newest descriptors.
        """
        if port_id not in (0, 1):
            raise ValueError(f"chain ports are 0 and 1, got {port_id}")
        scope = 0 if port_id == 0 else len(self.stages) - 1
        plan = self.spec.fault_plan
        if plan is not None and not plan.empty:
            verdict, delay_us = plan.link_verdict(timestamp, scope)
            if verdict == "drop":
                self.fault_wire_dropped += 1
                recorder = obs.recorder()
                if recorder.active:
                    recorder.trace(
                        flight.DROP,
                        t_us=timestamp,
                        worker=scope,
                        reason=flight.REASON_LINK_FAULT,
                    )
                return False
            if verdict == "corrupt":
                packet = plan.corrupt_packet(packet)
                self.fault_wire_corrupted += 1
            if delay_us:
                timestamp += delay_us
        reorder = (
            plan is not None
            and not plan.empty
            and plan.reorder_fires(timestamp, scope)
        )
        accepted = self._ports[port_id].deliver(packet, timestamp)
        if reorder and accepted:
            self._ports[port_id].swap_tail()
        return accepted

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """Everything the chain transmitted: (port, timestamp, packet)."""
        merged: List[Tuple[int, int, Packet]] = []
        for port in self._ports:
            merged.extend(
                (port.port_id, ts, pkt) for ts, pkt in port.drain_tx()
            )
        return merged

    # -- the chain main loop -----------------------------------------------------
    def main_loop_burst(self, now_us: int, burst_size: Optional[int] = None) -> int:
        """One chain turn: ingest both edges, then sweep both ways.

        The ascending sweep (stage 0 → N-1) lets rightward traffic
        traverse the whole chain within the turn; the descending sweep
        then flushes leftward traffic the same way. Handoffs produced
        against a sweep's direction wait for the opposite sweep — still
        inside this turn — so a quiescent chain is fully drained after
        every ``main_loop_burst`` (the checkpoint fence).
        """
        burst = burst_size if burst_size is not None else self.spec.burst_size
        last = len(self.stages) - 1
        while True:
            item = self._ports[0].rx_pop()
            if item is None:
                break
            ts, pkt = item
            self._enqueue(0, self.stages[0].device_a, ts, pkt)
        while True:
            item = self._ports[1].rx_pop()
            if item is None:
                break
            ts, pkt = item
            self._enqueue(last, self.stages[last].device_b, ts, pkt)
        processed = self._sweep(range(len(self.stages)), now_us, burst)
        processed += self._sweep(range(last, -1, -1), now_us, burst)
        return processed

    def _enqueue(self, index: int, device: int, ts: int, packet: Packet) -> None:
        self._pending[index].append((device, ts, packet))
        self._stage_rx[index] += 1
        self.stage_logs[index].record(
            flight.RX, t_us=ts, worker=index, detail=f"dev {device}"
        )

    def _sweep(self, order, now_us: int, burst: int) -> int:
        processed = 0
        for i in order:
            batch = self._pending[i]
            if not batch:
                continue
            self._pending[i] = []
            if self._down[i]:
                # A failed stage with no promoted standby blackholes its
                # traffic — the measured disruption scenarios count on it.
                self._stage_killed[i] += len(batch)
                for _dev, ts, _pkt in batch:
                    self.stage_logs[i].record(
                        flight.DROP,
                        t_us=ts,
                        worker=i,
                        reason=flight.REASON_WORKER_KILL,
                    )
                continue
            engine = self.engines[i]
            for device, ts, pkt in batch:
                pkt.device = device
                engine.inject(device, pkt, ts)
            processed += engine.main_loop_burst(now_us, burst)
            for port, ts, out in engine.collect():
                self._route(i, port, ts, out)
        return processed

    def _route(self, index: int, port: int, ts: int, packet: Packet) -> None:
        stage = self.stages[index]
        self._stage_tx[index] += 1
        self.stage_logs[index].record(
            flight.TX, t_us=ts, worker=index, detail=f"dev {port}"
        )
        if port == stage.device_b:
            if index == len(self.stages) - 1:
                self._exit(1, ts, packet)
            else:
                self._handoffs += 1
                self._enqueue(
                    index + 1, self.stages[index + 1].device_a, ts, packet
                )
        elif port == stage.device_a:
            if index == 0:
                self._exit(0, ts, packet)
            else:
                self._handoffs += 1
                self._enqueue(
                    index - 1, self.stages[index - 1].device_b, ts, packet
                )
        else:
            self._stage_misroute[index] += 1
            self.stage_logs[index].record(
                flight.DROP,
                t_us=ts,
                worker=index,
                reason=flight.REASON_CHAIN_MISROUTE,
                detail=f"dev {port}",
            )

    def _exit(self, chain_port: int, ts: int, packet: Packet) -> None:
        packet.device = chain_port
        self._ports[chain_port].transmit(packet, ts)
        self._exited[chain_port] += 1

    # -- observability -----------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Chain-level instruments (ports, handoffs, exits)."""
        for port in self._ports:
            port.register_metrics(registry, {"edge": "chain"})
        registry.counter_fn(
            "chain_handoffs_total",
            lambda: self._handoffs,
            "packets handed from one stage to a neighbor",
        )
        registry.counter_fn(
            "chain_exited_total",
            lambda: sum(self._exited),
            "packets that left the chain on either wire port",
        )
        registry.gauge_fn(
            "chain_stages",
            lambda: len(self.stages),
            "stages in this chain",
        )

    def snapshot_metrics(self) -> Dict:
        """One merged snapshot: chain instruments plus every stage's own
        metrics and its ``chain_stage_*`` series, stage-labeled."""
        registry = MetricsRegistry()
        self.register_metrics(registry)
        snapshots = [registry.snapshot()]
        for i, (stage, engine) in enumerate(zip(self.stages, self.engines)):
            labels = {"stage": str(i), "stage_name": stage.name}
            stage_registry = MetricsRegistry()
            stage_registry.counter_fn(
                "chain_stage_rx_total",
                lambda i=i: self._stage_rx[i],
                "packets handed to this stage",
            )
            stage_registry.counter_fn(
                "chain_stage_tx_total",
                lambda i=i: self._stage_tx[i],
                "packets this stage emitted",
            )
            stage_registry.counter_fn(
                "chain_stage_misroute_total",
                lambda i=i: self._stage_misroute[i],
                "packets emitted on a device mapping to no neighbor",
            )
            stage_registry.counter_fn(
                "chain_stage_killed_total",
                lambda i=i: self._stage_killed[i],
                "packets blackholed while the stage was down",
            )
            stage_registry.gauge_fn(
                "chain_stage_flows",
                lambda i=i: 0 if self._down[i] else self.engines[i].flow_count(),
                "per-stage flow-state entries",
            )
            snapshots.append(with_labels(stage_registry.snapshot(), labels))
            if not self._down[i]:
                snapshots.append(with_labels(engine.snapshot_metrics(), labels))
        from repro.obs import merge_snapshots

        return merge_snapshots(snapshots)

    def metrics_snapshot(self) -> Dict:
        return self.snapshot_metrics()

    # -- control plane -------------------------------------------------------
    def checkpoint(self, now_us: int = 0) -> CheckpointSet:
        """One coordinated set: frame ``i`` is stage ``i``'s state.

        The caller owns the fence: checkpoint only between completed
        ``main_loop_burst`` turns, when no handoff is pending.
        """
        frames = []
        for index, engine in enumerate(self.engines):
            if self._down[index]:
                raise CheckpointError(
                    f"stage {index} ({self.stages[index].name}) is down; "
                    f"promote a standby before checkpointing the chain"
                )
            frames.append(engine.checkpoint(now_us).checkpoints[0])
        return CheckpointSet(taken_at_us=now_us, checkpoints=tuple(frames))

    def checkpoint_stage(self, index: int, now_us: int = 0) -> CheckpointSet:
        """A single-stage set (e.g. to keep a warm standby in sync)."""
        return self.engines[index].checkpoint(now_us)

    def restore(self, checkpoint_set: CheckpointSet) -> None:
        """Adopt a chain-wide set, all-or-nothing.

        Every frame is first restored into a freshly built NF per stage
        — running the full name/config/state validation — and only when
        all of them succeed is anything swapped in, so a corrupt or
        mismatched set leaves the running chain untouched.
        """
        if checkpoint_set.workers != len(self.stages):
            raise CheckpointError(
                f"checkpoint set holds {checkpoint_set.workers} stage(s), "
                f"chain has {len(self.stages)}"
            )
        fresh = [stage.build_nf() for stage in self.stages]
        restore_all(fresh, checkpoint_set)
        for index, engine in enumerate(self.engines):
            if self.spec.execution == INLINE:
                nf: NetworkFunction = fresh[index]
                mode = self._stage_fastpath[index]
                if mode != "off":
                    nf = FastPathNat(nf, mode=mode)
                engine.nf = nf
            else:
                frame = checkpoint_set.checkpoints[index]
                engine.restore(
                    CheckpointSet(
                        taken_at_us=checkpoint_set.taken_at_us,
                        checkpoints=(frame,),
                    )
                )
            self._down[index] = False

    def fail_stage(self, index: int) -> None:
        """Take one stage down (its engine stops serving immediately).

        Until a standby is promoted with :meth:`swap_stage`, traffic
        reaching the stage is blackholed and counted — the measured
        disruption window the scenario suite bounds.
        """
        self._down[index] = True
        self.engines[index].stop()

    def swap_stage(self, index: int, checkpoint_set: Optional[CheckpointSet] = None):
        """Promote a standby for one stage: fresh engine, optional state.

        Builds a new engine from the stage's spec, optionally restores a
        single-stage checkpoint set into it (the warm standby), then
        swaps it in and stops the old engine — whose queued packets, if
        any, die with it. Returns the new engine.
        """
        if checkpoint_set is not None and checkpoint_set.workers != 1:
            raise CheckpointError(
                f"stage swap takes a single-stage set, got "
                f"{checkpoint_set.workers} frames"
            )
        engine = self._launch_stage(index)
        if checkpoint_set is not None:
            try:
                engine.restore(checkpoint_set)
            except Exception:
                engine.stop()
                raise
        old, self.engines[index] = self.engines[index], engine
        if not self._down[index]:
            old.stop()
        self._down[index] = False
        self._promotions += 1
        return engine

    def stop(self) -> None:
        for index, engine in enumerate(self.engines):
            if not self._down[index]:
                engine.stop()


def launch_chain(spec: ChainSpec) -> ChainRuntime:
    """Stand up the chain a spec describes (the one construction path)."""
    return ChainRuntime(spec)
