"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify {nat,cgnat,firewall,bridge,limiter,discard}`` — run the
  Vigor pipeline and print the Fig. 7 proof report (exit code 1 when
  not verified). ``cgnat`` proves the stateless NAT's port bijection
  by concolic execution instead of the stateful refinement. For the
  discard NF, ``--model`` selects one of the three Fig. 4 ring models.
  ``--emit-tasks FILE`` writes the Fig. 10-style verification tasks.
- ``demo`` — translate a conversation through the verified NAT.
- ``experiments {fig12,fig13,fig14,burst,shard,fastpath,failover,cgnat,procs,chain,metrics,verification}``
  — regenerate one of the paper's evaluation artifacts at quick scale
  (``burst`` is the burst-size sweep of the burst-mode data path,
  ``shard`` the worker-count scaling sweep of the sharded data path,
  ``fastpath`` the microflow-cache locality sweep with its on/off
  differential check — exit code 1 on any output divergence, with the
  first diverging packet dumped; ``failover`` the kill-and-promote
  availability sweep across replication lags — exit code 1 when
  recovery exceeds the loss budget, notably any established-flow loss
  at lag 0; ``cgnat`` the stateless-CGNAT scaling sweep — exit code 1
  when the deterministic NAT's memory footprint is not flat across
  10x/100x flow counts; ``chain`` the operational scenario suite over
  the firewall → limiter → NAT service chain — exit code 1 when any
  measured loss, disruption window or mapping survival breaches its
  declared SLA; ``metrics`` a merged observability snapshot
  from a sharded run).
- ``metrics`` — the same merged snapshot with knobs: worker count,
  fastpath on/off, table/Prometheus/JSON rendering, file output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.nat.config import NatConfig


def _proof_cache_key(nf: str) -> str:
    """Fingerprint of everything the proof depends on.

    Hashes the source of the stateless logic, the models, the contracts,
    the semantics and the toolchain itself, so any edit invalidates the
    cached proof — the soundness requirement for caching proofs at all.
    """
    import hashlib
    import inspect

    import repro.nat.bridge
    import repro.nat.core_logic
    import repro.nat.firewall
    import repro.verif.contracts
    import repro.verif.context
    import repro.verif.engine
    import repro.verif.models.bridge
    import repro.verif.models.nat
    import repro.verif.models.ring
    import repro.verif.nf_env
    import repro.verif.nf_env_bridge
    import repro.verif.nf_env_fw
    import repro.verif.semantics
    import repro.verif.solver
    import repro.verif.validator

    hasher = hashlib.sha256()
    hasher.update(nf.encode())
    for module in (
        repro.nat.core_logic,
        repro.nat.firewall,
        repro.nat.bridge,
        repro.verif.contracts,
        repro.verif.context,
        repro.verif.engine,
        repro.verif.models.nat,
        repro.verif.models.bridge,
        repro.verif.models.ring,
        repro.verif.nf_env,
        repro.verif.nf_env_bridge,
        repro.verif.nf_env_fw,
        repro.verif.semantics,
        repro.verif.solver,
        repro.verif.validator,
    ):
        hasher.update(inspect.getsource(module).encode())
    return hasher.hexdigest()


def _cmd_verify(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.verif.engine import ExhaustiveSymbolicEngine
    from repro.verif.report import ProofReport
    from repro.verif.validator import Validator

    if args.nf == "cgnat":
        # The stateless CGNAT's proof is a bijectivity argument over
        # arithmetic, not a refinement against RFC semantics, so it has
        # its own report shape and skips the Validator/cache machinery.
        from repro.verif.nf_env_cgnat import verify_cgnat

        report = verify_cgnat()
        print(report.render())
        if args.coverage and report.result is not None:
            print()
            print(report.result.render_coverage())
        return 0 if report.verified else 1

    cache_file = None
    if args.cache:
        cache_dir = pathlib.Path(args.cache)
        cache_dir.mkdir(parents=True, exist_ok=True)
        key = _proof_cache_key(f"{args.nf}:{getattr(args, 'model', '')}")
        cache_file = cache_dir / f"{args.nf}-{key[:16]}.json"
        if cache_file.exists():
            report = ProofReport.from_dict(json.loads(cache_file.read_text()))
            print(report.render())
            print(f"\n(proof loaded from cache: {cache_file})")
            return 0 if report.verified else 1

    config = NatConfig()
    if args.nf == "nat":
        from repro.verif.nf_env import vignat_symbolic_body
        from repro.verif.semantics import NatSemantics

        body, semantics, name = vignat_symbolic_body(config), NatSemantics(config), "VigNat"
    elif args.nf == "bridge":
        from repro.nat.bridge import BridgeConfig
        from repro.verif.nf_env_bridge import BridgeSemantics, bridge_symbolic_body

        bcfg = BridgeConfig()
        body, semantics, name = (
            bridge_symbolic_body(bcfg),
            BridgeSemantics(bcfg),
            "VigBridge",
        )
    elif args.nf == "limiter":
        from repro.nat.limiter import LimiterConfig
        from repro.verif.nf_env_limiter import (
            LimiterSemantics,
            limiter_symbolic_body,
        )

        lcfg = LimiterConfig()
        body, semantics, name = (
            limiter_symbolic_body(lcfg),
            LimiterSemantics(lcfg),
            "VigLimiter",
        )
    elif args.nf == "firewall":
        from repro.verif.nf_env_fw import firewall_symbolic_body
        from repro.verif.semantics import FirewallSemantics

        body, semantics, name = (
            firewall_symbolic_body(config),
            FirewallSemantics(config),
            "VigFirewall",
        )
    else:
        from repro.verif.models.ring import (
            GoodRingModel,
            OverApproximateRingModel,
            UnderApproximateRingModel,
        )
        from repro.verif.nf_env import discard_symbolic_body
        from repro.verif.semantics import DiscardSemantics

        model = {
            "good": GoodRingModel,
            "over": OverApproximateRingModel,
            "under": UnderApproximateRingModel,
        }[args.model]
        body, semantics, name = (
            discard_symbolic_body(model),
            DiscardSemantics(),
            f"discard({args.model})",
        )

    result = ExhaustiveSymbolicEngine().explore(body)
    report = Validator(semantics).validate(result, name)
    print(report.render())

    if args.coverage:
        print()
        print(result.render_coverage())
        one_sided = result.one_sided_branches()
        if one_sided:
            print(f"WARNING: {len(one_sided)} one-sided branch site(s)")

    if cache_file is not None:
        cache_file.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"(proof cached at {cache_file})")

    if args.emit_tasks:
        from repro.verif.codegen import render_all_tasks

        text = render_all_tasks(result.tree.paths, semantics, name)
        with open(args.emit_tasks, "w") as handle:
            handle.write(text + "\n")
        print(f"\nverification tasks written to {args.emit_tasks}")

    return 0 if report.verified else 1


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.nat.vignat import VigNat
    from repro.packets.addresses import ip_to_str
    from repro.packets.builder import make_udp_packet

    config = NatConfig()
    nat = VigNat(config)
    packet = make_udp_packet("10.0.0.5", "8.8.8.8", 5353, 53, device=0)
    out = nat.process(packet, 1_000_000)[0]
    print(
        f"10.0.0.5:5353 -> 8.8.8.8:53 translated to "
        f"{ip_to_str(out.ipv4.src_ip)}:{out.l4.src_port} -> "
        f"{ip_to_str(out.ipv4.dst_ip)}:{out.l4.dst_port}"
    )
    reply = make_udp_packet("8.8.8.8", config.external_ip, 53, out.l4.src_port, device=1)
    back = nat.process(reply, 1_100_000)[0]
    print(
        f"reply delivered to {ip_to_str(back.ipv4.dst_ip)}:{back.l4.dst_port} "
        f"(flows: {nat.flow_count()})"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.eval.experiments import (
        EvalSettings,
        latency_ccdf,
        latency_vs_occupancy,
        throughput_sweep,
    )
    from repro.eval.reporting import (
        render_fig12,
        render_fig13,
        render_fig14,
        render_verification,
    )

    if args.artifact == "verification":
        from repro.eval.verification_stats import collect

        print(render_verification(collect()))
        return 0
    if args.artifact == "fig12":
        settings = EvalSettings(measure_seconds=0.4)
        points = latency_vs_occupancy(
            occupancies=(1_000, 10_000, 30_000), settings=settings
        )
        print(render_fig12(points))
        return 0
    if args.artifact == "fig13":
        settings = EvalSettings(measure_seconds=0.4)
        series = latency_ccdf(background_flows=10_000, settings=settings)
        print(render_fig13(series, background_flows=10_000))
        return 0
    if args.artifact == "burst":
        from repro.eval.experiments import burst_size_sweep
        from repro.eval.reporting import render_burst_sweep

        print(render_burst_sweep(burst_size_sweep()))
        return 0
    if args.artifact == "shard":
        from repro.eval.experiments import shard_sweep
        from repro.eval.reporting import render_shard_sweep

        print(
            render_shard_sweep(
                shard_sweep(worker_counts=(1, 2, 4), packet_count=4_000)
            )
        )
        return 0
    if args.artifact == "fastpath":
        from repro.eval.experiments import fastpath_sweep
        from repro.eval.reporting import render_fastpath_sweep

        points = fastpath_sweep(flow_counts=(64, 1_024), packet_count=4_000)
        print(render_fastpath_sweep(points))
        return (
            1
            if any(not (p.identical and p.raw_identical) for p in points)
            else 0
        )
    if args.artifact == "failover":
        from repro.eval.experiments import (
            FailoverBudget,
            failover_breaches,
            failover_sweep,
        )
        from repro.eval.reporting import render_failover

        points = failover_sweep(lags=(0, 8, 64), flow_count=128)
        print(render_failover(points))
        breaches = failover_breaches(points, FailoverBudget())
        if breaches:
            print("\nloss budget EXCEEDED:")
            for breach in breaches:
                print(f"  - {breach}")
            return 1
        print("\nloss budget respected (zero established-flow loss at lag 0)")
        return 0
    if args.artifact == "cgnat":
        from repro.eval.experiments import cgnat_flatness_breaches, cgnat_sweep
        from repro.eval.reporting import render_cgnat_sweep

        # 1x / 10x / 100x of the base regime: the point is watching the
        # stateless NAT's footprint stay put while the stateful ones grow.
        points = cgnat_sweep(flow_counts=(512, 5_120, 51_200))
        print(render_cgnat_sweep(points))
        breaches = cgnat_flatness_breaches(points)
        if breaches:
            print("\nmemory-flatness invariant VIOLATED:")
            for breach in breaches:
                print(f"  - {breach}")
            return 1
        print("\nmemory flat: det-nat state independent of flow count")
        return 0
    if args.artifact == "procs":
        from repro.eval.experiments import procs_scaling_breaches, procs_sweep
        from repro.eval.reporting import render_procs_sweep

        # Both transports by default: pipe and shm must each be
        # byte-identical to the oracle and inside the scaling budget.
        points = procs_sweep(worker_counts=(1, 2, 4), packet_count=2_000)
        print(render_procs_sweep(points))
        breaches = procs_scaling_breaches(points)
        if breaches:
            print("\nprocess-runtime invariants VIOLATED:")
            for breach in breaches:
                print(f"  - {breach}")
            return 1
        print(
            "\nprocess runtime byte-identical to the oracle on every "
            "transport; scaling within budget"
        )
        return 0
    if args.artifact == "chain":
        from repro.chain import chain_breaches, chain_scenarios
        from repro.eval.reporting import render_chain_scenarios

        # The full operational suite over the reference chain (firewall
        # -> limiter -> NAT): warm upgrade, stage promotion, chaos soak.
        reports = chain_scenarios(flows=32, rounds=16)
        print(render_chain_scenarios(reports))
        breaches = chain_breaches(reports)
        if breaches:
            print("\nscenario SLA BREACHED:")
            for breach in breaches:
                print(f"  - {breach}")
            return 1
        print(
            "\nall scenario SLAs respected (measured loss, disruption "
            "and mapping survival within budget)"
        )
        return 0
    if args.artifact == "metrics":
        from repro.eval.experiments import collect_sharded_metrics
        from repro.eval.reporting import render_metrics
        from repro.obs.expo import render_prometheus

        snapshot = collect_sharded_metrics(workers=2, fastpath=True)
        print(render_metrics(snapshot))
        print()
        print(render_prometheus(snapshot))
        return 0
    settings = EvalSettings(
        expiration_seconds=60.0, throughput_packets=10_000, throughput_iterations=6
    )
    results = throughput_sweep(flow_counts=(2_000,), settings=settings)
    print(render_fig14(results))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.eval.experiments import collect_sharded_metrics
    from repro.eval.reporting import render_metrics
    from repro.obs.expo import render_json, render_prometheus, write_snapshot_files

    snapshot = collect_sharded_metrics(
        workers=args.workers,
        fastpath=not args.no_fastpath,
        execution=args.execution,
    )
    if args.format == "prom":
        print(render_prometheus(snapshot))
    elif args.format == "json":
        print(render_json(snapshot))
    else:
        print(render_metrics(snapshot))
    if args.output:
        paths = write_snapshot_files(snapshot, args.output, "metrics")
        for path in paths.values():
            print(f"wrote {path}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Formally Verified NAT (SIGCOMM 2017) — Python reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="run the Vigor proof pipeline")
    verify.add_argument(
        "nf", choices=["nat", "cgnat", "firewall", "bridge", "limiter", "discard"]
    )
    verify.add_argument(
        "--model",
        choices=["good", "over", "under"],
        default="good",
        help="ring model for the discard NF (Fig. 4)",
    )
    verify.add_argument(
        "--emit-tasks",
        metavar="FILE",
        help="write Fig. 10-style verification tasks to FILE",
    )
    verify.add_argument(
        "--coverage",
        action="store_true",
        help="print the branch-coverage report from exhaustive exploration",
    )
    verify.add_argument(
        "--cache",
        metavar="DIR",
        help="cache the proof in DIR, keyed by a source fingerprint "
        "(any edit to the NF, models, contracts or toolchain re-proves)",
    )
    verify.set_defaults(run=_cmd_verify)

    demo = sub.add_parser("demo", help="translate a conversation through VigNat")
    demo.set_defaults(run=_cmd_demo)

    experiments = sub.add_parser(
        "experiments", help="regenerate an evaluation artifact (quick scale)"
    )
    experiments.add_argument(
        "artifact",
        choices=[
            "fig12",
            "fig13",
            "fig14",
            "burst",
            "shard",
            "fastpath",
            "failover",
            "cgnat",
            "procs",
            "chain",
            "metrics",
            "verification",
        ],
    )
    experiments.set_defaults(run=_cmd_experiments)

    metrics = sub.add_parser(
        "metrics",
        help="collect a merged metrics snapshot from a sharded run",
    )
    metrics.add_argument(
        "--workers", type=int, default=2, help="worker count (default 2)"
    )
    metrics.add_argument(
        "--no-fastpath",
        action="store_true",
        help="run without the microflow cache",
    )
    metrics.add_argument(
        "--execution",
        choices=["threaded-deterministic", "process"],
        default="threaded-deterministic",
        help="runtime to collect from: the deterministic oracle or the "
        "process-per-shard runtime (default: threaded-deterministic)",
    )
    metrics.add_argument(
        "--format",
        choices=["table", "prom", "json"],
        default="table",
        help="output rendering (default: table)",
    )
    metrics.add_argument(
        "--output",
        metavar="DIR",
        help="also write DIR/metrics.metrics.json and DIR/metrics.prom",
    )
    metrics.set_defaults(run=_cmd_metrics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
