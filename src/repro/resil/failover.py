"""Active/standby failover over the sharded data path.

:class:`ReplicatedRuntime` pairs every worker of a
:class:`~repro.net.dpdk.ShardedRuntime` with a
:class:`~repro.resil.replication.StandbyReplica` fed through a lagged
:class:`~repro.resil.replication.ReplicationChannel`: each flow create/
touch/free on an active NF becomes a delta in flight, and the newest
``lag`` deltas are always the state the standby has not seen yet.

When the fault plan kills a worker, the embedded controller fails over:

1. **detect** — the kill is noticed on the next main-loop turn;
2. **cut** — the replication channel is severed, its in-flight deltas
   are counted lost (:data:`~repro.obs.flight.REASON_REPLICATION_LOSS`);
3. **flush** — packets queued on the dead worker's RX rings are lost
   with it;
4. **promote** — the standby synthesizes a ``repro-ckpt/v1`` checkpoint
   which a freshly built NF (plus a fresh runtime) restores, reusing the
   exact validation path cold restores use;
5. **repartition** — :meth:`repro.net.rss.NatSteering.reassign` points
   the dead shard's ownership at the promoted slot and the kill window
   is retired so the slot serves again.

Promotion is instantaneous in simulation, so its *cost* is modeled: the
slot stays in blackout for ``failover_fixed_us`` plus
``restore_us_per_flow`` per restored flow, and packets steered at it
during the blackout are dropped and attributed to the failover. The
resulting :class:`FailoverReport` carries the loss ledger the
availability benchmark aggregates: flows at kill, flows recovered,
flows lost, packets lost (queued + blackout), and the recovery window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, normalize_fastpath
from repro.net.dpdk import DpdkRuntime, ShardedRuntime
from repro.obs import flight
from repro.obs.registry import MetricsRegistry
from repro.packets.headers import Packet
from repro.resil.checkpoint import restore
from repro.resil.faults import FaultPlan
from repro.resil.replication import FlowDelta, ReplicationChannel, StandbyReplica

#: Modeled fixed cost of a promotion (detection, ring teardown, NIC
#: redirection-table rewrite), microseconds.
FAILOVER_FIXED_US = 500
#: Modeled per-flow cost of restoring the standby's state into the
#: promoted NF, microseconds per flow.
RESTORE_US_PER_FLOW = 2


@dataclass
class FailoverReport:
    """The loss ledger of one kill-and-promote event."""

    worker: int
    killed_at_us: int
    detected_at_us: int
    ready_at_us: int
    #: Modeled blackout: fixed cost + per-flow restore cost.
    recovery_us: int
    #: Live flows on the active NF at the moment it died.
    flows_at_kill: int
    #: Flows the promoted standby restored.
    flows_recovered: int
    #: Flows the active held that the standby never learned of
    #: (their deltas were in flight when the channel was cut).
    flows_lost: int
    #: In-flight deltas destroyed with the channel (creates, touches
    #: and frees — a superset of ``flows_lost``'s causes).
    deltas_lost: int
    #: Packets queued on the dead worker's RX rings, lost with it.
    packets_lost_queue: int
    #: Packets steered at the slot during the modeled blackout.
    packets_lost_blackout: int = 0
    #: Microflow-cache actions pre-installed from the restored flow
    #: state at promotion (0 when the runtime runs without a fast path).
    fastpath_warmed: int = 0

    @property
    def packets_lost(self) -> int:
        return self.packets_lost_queue + self.packets_lost_blackout

    def to_dict(self) -> Dict:
        return {
            "worker": self.worker,
            "killed_at_us": self.killed_at_us,
            "detected_at_us": self.detected_at_us,
            "ready_at_us": self.ready_at_us,
            "recovery_us": self.recovery_us,
            "flows_at_kill": self.flows_at_kill,
            "flows_recovered": self.flows_recovered,
            "flows_lost": self.flows_lost,
            "deltas_lost": self.deltas_lost,
            "packets_lost_queue": self.packets_lost_queue,
            "packets_lost_blackout": self.packets_lost_blackout,
            "packets_lost": self.packets_lost,
            "fastpath_warmed": self.fastpath_warmed,
        }


def _state_keys(nf_name: str, state: Dict) -> Set[int]:
    """The flow keys in an NF checkpoint payload, in delta-key space.

    The verified NAT keys flows by chain index (row[0] of its ``flows``
    rows: ``[index, touched, fid, port]``); the unverified NAT by
    external port (row[2] of ``[last_seen, fid, port]``).
    """
    rows = state.get("flows", [])
    if nf_name == "verified-nat":
        return {row[0] for row in rows}
    return {row[2] for row in rows}


class ReplicatedRuntime:
    """A sharded data path where every worker has a warm standby.

    Wraps a :class:`~repro.net.dpdk.ShardedRuntime` (same constructor
    surface plus ``lag``) and supports the NFs that emit flow deltas —
    the two NATs. The wire-side API (:meth:`inject`, :meth:`collect`,
    :meth:`main_loop_burst`) delegates to the sharded runtime, with two
    additions: every delta an active NF emits is published on that
    worker's replication channel, and each main-loop turn runs the
    failover controller against the attached fault plan.

    Passing no ``fault_plan`` attaches an empty one — kills can then be
    scripted after construction via :attr:`fault_plan`'s builders.
    """

    def __init__(
        self,
        nf_factory: Callable[[NatConfig], NetworkFunction],
        config: Optional[NatConfig] = None,
        workers: int = 1,
        *,
        lag: int = 0,
        fastpath="off",
        fault_plan: Optional[FaultPlan] = None,
        port_count: int = 2,
        rx_capacity: int = 512,
        pool_size: int = 4096,
        failover_fixed_us: int = FAILOVER_FIXED_US,
        restore_us_per_flow: int = RESTORE_US_PER_FLOW,
    ) -> None:
        if failover_fixed_us < 0 or restore_us_per_flow < 0:
            raise ValueError("failover costs cannot be negative")
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._nf_factory = nf_factory
        self._fastpath = normalize_fastpath(fastpath)
        fastpath = self._fastpath
        self._port_count = port_count
        self._rx_capacity = rx_capacity
        self._pool_size = pool_size
        self.failover_fixed_us = failover_fixed_us
        self.restore_us_per_flow = restore_us_per_flow
        self.lag = lag
        self.runtime = ShardedRuntime(
            nf_factory,
            config,
            workers,
            port_count=port_count,
            rx_capacity=rx_capacity,
            pool_size=pool_size,
            fastpath=fastpath,
            fault_plan=self.fault_plan,
            _from_spec=True,
        )
        self.channels: List[ReplicationChannel] = [
            ReplicationChannel(lag) for _ in range(workers)
        ]
        self.replicas: List[StandbyReplica] = [
            StandbyReplica(nf.name, shard)
            for nf, shard in zip(self.runtime.nfs, self.runtime.shards)
        ]
        for worker_id, nf in enumerate(self.runtime.nfs):
            nf.delta_sink(self._sink_for(worker_id))
        self.reports: List[FailoverReport] = []
        #: Slot → modeled blackout deadline (µs); packets steered at a
        #: slot before its deadline are dropped as failover loss.
        self._blackout_until: Dict[int, int] = {}
        self._blackout_report: Dict[int, FailoverReport] = {}
        self.blackout_dropped = 0

    # -- replication --------------------------------------------------------
    def _sink_for(self, worker_id: int) -> Callable:
        channel = self.channels[worker_id]
        replica = self.replicas[worker_id]

        def sink(raw: Tuple[str, int, object, int]) -> None:
            op, key, payload, t_us = raw
            delivered = channel.publish(FlowDelta(op, key, payload, t_us))
            replica.apply_all(delivered)
            recorder = obs.recorder()
            if recorder.active:
                recorder.trace(
                    flight.REPLICATE, t_us=t_us, worker=worker_id, detail=op
                )

        return sink

    def drain_replication(self) -> None:
        """Synchronization barrier: deliver every in-flight delta.

        Models a clean shutdown or a periodic full sync — after this the
        standbys hold exactly the actives' abstract state regardless of
        lag.
        """
        for channel, replica in zip(self.channels, self.replicas):
            replica.apply_all(channel.drain())

    # -- wire side ----------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.runtime.workers

    @property
    def steered(self) -> List[int]:
        return self.runtime.steered

    def worker_for(self, packet: Packet) -> int:
        return self.runtime.worker_for(packet)

    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Deliver a packet from the wire, minding blackout windows.

        A packet steered at a slot still inside its modeled promotion
        blackout is lost — the standby is warming up and the queue it
        would land on does not exist yet.
        """
        if self._blackout_until:
            target = self.runtime.worker_for(packet)
            deadline = self._blackout_until.get(target)
            if deadline is not None:
                if timestamp < deadline:
                    self.blackout_dropped += 1
                    report = self._blackout_report.get(target)
                    if report is not None:
                        report.packets_lost_blackout += 1
                    recorder = obs.recorder()
                    if recorder.active:
                        recorder.trace(
                            flight.DROP,
                            t_us=timestamp,
                            worker=target,
                            reason=flight.REASON_WORKER_KILL,
                            detail="promotion blackout",
                        )
                    return False
                self._end_blackout(target)
        return self.runtime.inject(port_id, packet, timestamp)

    def collect(self) -> List[Tuple[int, int, Packet]]:
        return self.runtime.collect()

    def collect_by_worker(self) -> List[List[Tuple[int, int, Packet]]]:
        return self.runtime.collect_by_worker()

    # -- the main loop + failover controller --------------------------------
    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int:
        """One turn on every worker, after running the failover controller.

        Kills are detected against the fault plan *before* the sharded
        turn runs, so the promoted standby serves in the same turn its
        predecessor died (modulo the modeled blackout at the wire).
        """
        plan = self.fault_plan
        if not plan.empty:
            for worker_id in range(self.workers):
                if plan.worker_killed(now_us, worker_id):
                    self._failover(worker_id, now_us)
        for worker_id, deadline in list(self._blackout_until.items()):
            if now_us >= deadline:
                self._end_blackout(worker_id)
        return self.runtime.main_loop_burst(now_us, burst_size)

    def kill_worker(self, worker_id: int, at_us: int) -> None:
        """Script a kill directly (sugar over the fault plan)."""
        self.fault_plan.kill_worker(worker_id, at_us)

    def _end_blackout(self, worker_id: int) -> None:
        self._blackout_until.pop(worker_id, None)
        self._blackout_report.pop(worker_id, None)

    def _failover(self, worker_id: int, now_us: int) -> None:
        """Cut, flush, promote, repartition — one dead worker."""
        plan = self.fault_plan
        killed_at = min(
            (
                f.start_us
                for f in plan.faults
                if f.kind == "worker-kill" and f.active_at(now_us, worker_id)
            ),
            default=now_us,
        )
        dead_nf = self.runtime.nfs[worker_id]
        active_keys = _state_keys(dead_nf.name, dead_nf.checkpoint_state())

        # 2. cut: in-flight deltas die with the channel.
        lost_deltas = self.channels[worker_id].lost_in_flight()
        recorder = obs.recorder()
        tracing = recorder.active
        if tracing and lost_deltas:
            recorder.trace(
                flight.REPLICATE,
                t_us=now_us,
                worker=worker_id,
                reason=flight.REASON_REPLICATION_LOSS,
                detail=f"{len(lost_deltas)} deltas lost at cut",
            )

        # 3. flush: queued packets are lost with the worker.
        packets_lost_queue = self.runtime.flush_worker(worker_id, now_us)

        # 4. promote: standby checkpoint → fresh NF + fresh runtime,
        # through the same restore path a cold restart would take.
        replica = self.replicas[worker_id]
        checkpoint = replica.to_checkpoint(now_us)
        fresh: NetworkFunction = self._nf_factory(self.runtime.shards[worker_id])
        if self._fastpath != "off":
            fresh = FastPathNat(fresh, mode=self._fastpath)
        restore(fresh, checkpoint)
        fresh.delta_sink(self._sink_for(worker_id))
        # The restored NF knows every recovered flow; rebuild the
        # microflow cache from that state so the promoted standby does
        # not serve its first packets at a 0% hit rate.
        fastpath_warmed = fresh.warm() if isinstance(fresh, FastPathNat) else 0
        runtime = DpdkRuntime(self._port_count, self._rx_capacity, self._pool_size)
        runtime.worker_id = worker_id
        # Packets the dead worker had already transmitted are on the
        # wire — they survive the kill. Carry them onto the fresh
        # runtime's TX side so collect() still delivers them.
        old_runtime = self.runtime.runtimes[worker_id]
        for port_id, port in old_runtime.ports.items():
            for sent_at, packet in port.drain_tx():
                runtime.ports[port_id].transmit(packet, sent_at)
        self.runtime.nfs[worker_id] = fresh
        self.runtime.runtimes[worker_id] = runtime

        # 5. repartition ownership and retire the kill so the slot serves.
        # Shard index equals the slot the standby is promoted into (the
        # standby takes over its partner's queue), but the reassignment
        # goes through the steering table so a custom topology could
        # promote onto any slot.
        self.runtime.steering.reassign(worker_id, worker_id)
        plan.clear(kind="worker-kill", worker=worker_id)

        recovered_keys = set(replica.established_keys())
        flows_recovered = len(recovered_keys)
        recovery_us = (
            self.failover_fixed_us + self.restore_us_per_flow * flows_recovered
        )
        report = FailoverReport(
            worker=worker_id,
            killed_at_us=killed_at,
            detected_at_us=now_us,
            ready_at_us=now_us + recovery_us,
            recovery_us=recovery_us,
            flows_at_kill=len(active_keys),
            flows_recovered=flows_recovered,
            flows_lost=len(active_keys - recovered_keys),
            deltas_lost=len(lost_deltas),
            packets_lost_queue=packets_lost_queue,
            fastpath_warmed=fastpath_warmed,
        )
        self.reports.append(report)
        if recovery_us > 0:
            self._blackout_until[worker_id] = report.ready_at_us
            self._blackout_report[worker_id] = report
        if tracing:
            recorder.trace(
                flight.FAILOVER,
                t_us=now_us,
                worker=worker_id,
                detail=(
                    f"promoted standby: {flows_recovered}/{len(active_keys)} "
                    f"flows, ready at {report.ready_at_us}"
                ),
            )

    # -- introspection -------------------------------------------------------
    def flow_count(self) -> int:
        return self.runtime.flow_count()

    def standby_flow_count(self) -> int:
        """Live flows across all standbys (lags the actives by design)."""
        return sum(replica.flow_count() for replica in self.replicas)

    def op_counters(self) -> Dict[str, int]:
        return self.runtime.op_counters()

    def per_worker_counters(self) -> List[Dict[str, int]]:
        return self.runtime.per_worker_counters()

    def drop_causes(self) -> Dict[str, int]:
        """The sharded runtime's causes plus the failover-owned ones."""
        causes = self.runtime.drop_causes()
        causes["failover_blackout_dropped"] = self.blackout_dropped
        causes["replication_deltas_lost"] = sum(
            channel.lost_total for channel in self.channels
        )
        return causes

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Everything the sharded runtime exports, plus replication/failover."""
        self.runtime.register_metrics(registry)
        for worker_id, (channel, replica) in enumerate(
            zip(self.channels, self.replicas)
        ):
            labels = {"worker": str(worker_id)}
            registry.counter_fn(
                "replication_published_total",
                lambda c=channel: c.published_total,
                "flow deltas published by the active NF",
                labels,
            )
            registry.counter_fn(
                "replication_delivered_total",
                lambda c=channel: c.delivered_total,
                "flow deltas delivered to the standby",
                labels,
            )
            registry.counter_fn(
                "replication_lost_total",
                lambda c=channel: c.lost_total,
                "in-flight deltas destroyed at channel cut",
                labels,
            )
            registry.gauge_fn(
                "replication_in_flight",
                lambda c=channel: c.in_flight_count(),
                "deltas currently in transit (== configured lag, steady state)",
                labels,
            )
            registry.gauge_fn(
                "standby_flows",
                lambda r=replica: r.flow_count(),
                "flows currently mirrored on the standby",
                labels,
            )
            registry.counter_fn(
                "standby_out_of_order_total",
                lambda r=replica: r.out_of_order_total,
                "deltas referencing flows the standby never saw",
                labels,
            )
        registry.counter_fn(
            "failover_total",
            lambda: len(self.reports),
            "standby promotions performed",
        )
        registry.counter_fn(
            "failover_blackout_dropped_total",
            lambda: self.blackout_dropped,
            "packets lost to modeled promotion blackouts",
        )

    def metrics_snapshot(self) -> Dict:
        registry = MetricsRegistry()
        self.register_metrics(registry)
        return registry.snapshot()

    def snapshot_metrics(self) -> Dict:
        """Protocol alias (see :class:`repro.net.app.Runtime`)."""
        return self.metrics_snapshot()

    # -- control plane -------------------------------------------------------
    def checkpoint(self, now_us: int = 0):
        """A coordinated checkpoint of the *active* NFs (standbys lag)."""
        return self.runtime.checkpoint(now_us)

    def stop(self) -> None:
        """Nothing to tear down — replicas are plain objects in-thread."""


__all__ = [
    "FAILOVER_FIXED_US",
    "RESTORE_US_PER_FLOW",
    "FailoverReport",
    "ReplicatedRuntime",
]
