"""The ``repro-ckpt/v1`` checkpoint format.

A checkpoint is the full flow state of one NF — flow table, port
bookkeeping, expiry clock, fastpath generation, counters — as produced
by ``NetworkFunction.checkpoint_state()``, wrapped in a small framed
container::

    repro-ckpt/v1\\n            14-byte magic + version line
    >I crc32                   CRC-32 of the body
    >I length                  body length in bytes
    body                       canonical JSON (sorted keys, no spaces)

The body carries the NF's name, the configuration it ran under, the
snapshot time and the NF-specific ``state`` payload. Everything is
validated on the way *in*: bad magic, unknown version, truncation and
CRC mismatch raise :class:`CheckpointError` from :meth:`Checkpoint.from_bytes`;
name/config mismatches raise from :func:`restore`; state-level
inconsistencies (double-allocated ports, out-of-shard ports, broken
chain ordering) raise from the NF's own ``restore_state`` before any
structure is mutated.

Restore goes through the NF's monotonic-clock clamp: the restored
``last_now`` floors the NF's notion of time, so a snapshot taken at T
and restored on a host whose clock reads T' < T neither mass-expires
(expiry thresholds derive from the clamped clock) nor immortalizes
flows (once the clock passes T again, normal expiry resumes).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig

#: Magic + version line opening every checkpoint.
MAGIC = b"repro-ckpt/v1\n"

_FRAME = struct.Struct(">II")  # crc32, body length


class CheckpointError(ValueError):
    """The byte stream is not a usable ``repro-ckpt/v1`` checkpoint."""


@dataclass(frozen=True)
class Checkpoint:
    """One NF's serialized flow state plus enough context to refuse misuse."""

    nf: str
    taken_at_us: int
    config: Dict[str, int] = field(default_factory=dict)
    state: Dict = field(default_factory=dict)

    # -- wire format -------------------------------------------------------
    def to_bytes(self) -> bytes:
        body = json.dumps(
            {
                "nf": self.nf,
                "taken_at_us": self.taken_at_us,
                "config": self.config,
                "state": self.state,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return MAGIC + _FRAME.pack(zlib.crc32(body), len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if not data.startswith(MAGIC):
            head = bytes(data[: len(MAGIC)])
            raise CheckpointError(f"bad magic {head!r}; expected {MAGIC!r}")
        frame = data[len(MAGIC) :]
        if len(frame) < _FRAME.size:
            raise CheckpointError("truncated checkpoint: frame header incomplete")
        crc, length = _FRAME.unpack_from(frame)
        body = frame[_FRAME.size :]
        if len(body) < length:
            raise CheckpointError(
                f"truncated checkpoint: body is {len(body)} of {length} bytes"
            )
        if len(body) > length:
            raise CheckpointError(
                f"oversized checkpoint: {len(body) - length} trailing bytes"
            )
        if zlib.crc32(body) != crc:
            raise CheckpointError("checkpoint CRC mismatch: body corrupted")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"checkpoint body is not valid JSON: {exc}") from exc
        for key in ("nf", "taken_at_us", "config", "state"):
            if key not in payload:
                raise CheckpointError(f"checkpoint body missing {key!r}")
        return cls(
            nf=payload["nf"],
            taken_at_us=int(payload["taken_at_us"]),
            config=payload["config"],
            state=payload["state"],
        )


def _config_of(nf: NetworkFunction) -> Optional[NatConfig]:
    config = getattr(nf, "config", None)
    if config is None:
        config = getattr(getattr(nf, "inner", None), "config", None)
    return config


def snapshot(nf: NetworkFunction, now_us: int = 0) -> Checkpoint:
    """Capture ``nf``'s flow state as a :class:`Checkpoint`."""
    config = _config_of(nf)
    return Checkpoint(
        nf=nf.name,
        taken_at_us=now_us,
        config=asdict(config) if config is not None else {},
        state=nf.checkpoint_state(),
    )


def restore(nf: NetworkFunction, checkpoint: Checkpoint) -> None:
    """Adopt a checkpoint into a freshly constructed ``nf``.

    The checkpoint must come from the same NF kind running the same
    configuration — restoring a shard's state into a different shard is
    an ownership violation, caught here by config comparison and again
    (defense in depth) by the port-range cross-check inside the NF's
    ``restore_state``.
    """
    if checkpoint.nf != nf.name:
        raise CheckpointError(
            f"checkpoint is for NF {checkpoint.nf!r}, not {nf.name!r}"
        )
    config = _config_of(nf)
    ours = asdict(config) if config is not None else {}
    if checkpoint.config != ours:
        diff = {
            key: (checkpoint.config.get(key), ours.get(key))
            for key in set(checkpoint.config) | set(ours)
            if checkpoint.config.get(key) != ours.get(key)
        }
        raise CheckpointError(f"checkpoint config mismatch: {diff}")
    nf.restore_state(checkpoint.state)


#: Magic + version line opening a coordinated multi-shard checkpoint set.
SET_MAGIC = b"repro-ckpt-set/v1\n"

_SET_FRAME = struct.Struct(">II")  # crc32, manifest length


@dataclass(frozen=True)
class CheckpointSet:
    """A coordinated checkpoint: one consistent cut across all shards.

    The sharded runtimes produce one :class:`Checkpoint` per worker at a
    fenced moment (no burst in flight on any worker), and this manifest
    binds them together so a restore is all-or-nothing::

        repro-ckpt-set/v1\\n       18-byte magic + version line
        >I crc32                   CRC-32 of the manifest
        >I length                  manifest length in bytes
        manifest                   canonical JSON: taken_at_us, workers,
                                   nfs, frame_lengths
        frames                     the per-shard ``repro-ckpt/v1`` frames,
                                   concatenated in worker order

    Each inner frame keeps its own magic and CRC, so corruption is
    caught at whichever layer it strikes. Shard order in the manifest
    *is* worker order: frame ``i`` restores into worker ``i``'s NF and
    nowhere else (the per-frame config cross-check enforces that even if
    a manifest is hand-edited).
    """

    taken_at_us: int
    checkpoints: Tuple[Checkpoint, ...]

    def __post_init__(self) -> None:
        if not self.checkpoints:
            raise CheckpointError("a checkpoint set needs at least one shard")

    @property
    def workers(self) -> int:
        return len(self.checkpoints)

    def to_bytes(self) -> bytes:
        frames = [ckpt.to_bytes() for ckpt in self.checkpoints]
        manifest = json.dumps(
            {
                "taken_at_us": self.taken_at_us,
                "workers": len(frames),
                "nfs": [ckpt.nf for ckpt in self.checkpoints],
                "frame_lengths": [len(frame) for frame in frames],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return (
            SET_MAGIC
            + _SET_FRAME.pack(zlib.crc32(manifest), len(manifest))
            + manifest
            + b"".join(frames)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CheckpointSet":
        if not data.startswith(SET_MAGIC):
            head = bytes(data[: len(SET_MAGIC)])
            raise CheckpointError(f"bad magic {head!r}; expected {SET_MAGIC!r}")
        rest = data[len(SET_MAGIC) :]
        if len(rest) < _SET_FRAME.size:
            raise CheckpointError("truncated checkpoint set: header incomplete")
        crc, length = _SET_FRAME.unpack_from(rest)
        manifest_bytes = rest[_SET_FRAME.size : _SET_FRAME.size + length]
        if len(manifest_bytes) < length:
            raise CheckpointError("truncated checkpoint set: manifest incomplete")
        if zlib.crc32(manifest_bytes) != crc:
            raise CheckpointError("checkpoint set CRC mismatch: manifest corrupted")
        try:
            manifest = json.loads(manifest_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"manifest is not valid JSON: {exc}") from exc
        for key in ("taken_at_us", "workers", "nfs", "frame_lengths"):
            if key not in manifest:
                raise CheckpointError(f"checkpoint set manifest missing {key!r}")
        lengths = manifest["frame_lengths"]
        if manifest["workers"] != len(lengths):
            raise CheckpointError(
                f"manifest claims {manifest['workers']} workers "
                f"but lists {len(lengths)} frames"
            )
        body = rest[_SET_FRAME.size + length :]
        if len(body) != sum(lengths):
            raise CheckpointError(
                f"checkpoint set frames are {len(body)} bytes, "
                f"manifest promises {sum(lengths)}"
            )
        checkpoints = []
        offset = 0
        for frame_length in lengths:
            checkpoints.append(
                Checkpoint.from_bytes(body[offset : offset + frame_length])
            )
            offset += frame_length
        for index, (name, ckpt) in enumerate(zip(manifest["nfs"], checkpoints)):
            if ckpt.nf != name:
                raise CheckpointError(
                    f"shard {index} frame is for NF {ckpt.nf!r}, "
                    f"manifest says {name!r}"
                )
        return cls(
            taken_at_us=int(manifest["taken_at_us"]),
            checkpoints=tuple(checkpoints),
        )


def snapshot_all(
    nfs: Sequence[NetworkFunction], now_us: int = 0
) -> CheckpointSet:
    """Capture every shard's flow state as one coordinated set.

    The caller is responsible for the fence: call only when no burst is
    in flight on any worker (after a completed main-loop turn, every RX
    ring is drained, so any quiescent point between turns qualifies).
    """
    return CheckpointSet(
        taken_at_us=now_us,
        checkpoints=tuple(snapshot(nf, now_us) for nf in nfs),
    )


def restore_all(
    nfs: Sequence[NetworkFunction], checkpoint_set: CheckpointSet
) -> None:
    """Adopt a coordinated set into freshly built shard NFs, in order."""
    if len(nfs) != checkpoint_set.workers:
        raise CheckpointError(
            f"checkpoint set holds {checkpoint_set.workers} shard(s), "
            f"runtime has {len(nfs)}"
        )
    for nf, ckpt in zip(nfs, checkpoint_set.checkpoints):
        restore(nf, ckpt)


__all__ = [
    "MAGIC",
    "SET_MAGIC",
    "Checkpoint",
    "CheckpointError",
    "CheckpointSet",
    "restore",
    "restore_all",
    "snapshot",
    "snapshot_all",
]
