"""Resilience: checkpoint/restore, active/standby failover, fault injection.

The paper proves a *single* NAT instance crash-free; this subsystem makes
the reproduction survive the faults the proofs scope out — worker death,
link loss, state loss — without touching the verified slow path:

- :mod:`repro.resil.checkpoint` — the versioned ``repro-ckpt/v1``
  serialization of NF flow state, with ``snapshot()``/``restore()``
  entry points and hard rejection of corrupt or mismatched checkpoints;
- :mod:`repro.resil.replication` — incremental per-flow deltas streamed
  over a lagged channel into a standby replica;
- :mod:`repro.resil.failover` — the active/standby pairing of sharded
  workers, the promotion state machine and its loss accounting;
- :mod:`repro.resil.faults` — the composable :class:`FaultPlan` driving
  link, pool, worker and clock faults through the simulated data path.

With no fault plan and no replication attached, every data-path run is
byte-identical to one without this package imported.
"""

from repro.resil.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointSet,
    restore,
    restore_all,
    snapshot,
    snapshot_all,
)
from repro.resil.faults import FaultPlan
from repro.resil.failover import FailoverReport, ReplicatedRuntime
from repro.resil.replication import FlowDelta, ReplicationChannel, StandbyReplica

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointSet",
    "FailoverReport",
    "FaultPlan",
    "FlowDelta",
    "ReplicatedRuntime",
    "ReplicationChannel",
    "StandbyReplica",
    "restore",
    "restore_all",
    "snapshot",
    "snapshot_all",
]
