"""Asynchronous flow-state replication: deltas, a lagged channel, a standby.

The active NF emits per-flow deltas through its ``delta_sink`` hook —
``create`` when a translation is allocated, ``touch`` on rejuvenation,
``free`` on expiry/eviction. A :class:`ReplicationChannel` ships them to
a :class:`StandbyReplica` with a configurable *lag*: the newest ``lag``
deltas are always in flight, modeling the asynchrony of a real
replication link. At failover time the in-flight deltas are exactly the
state the standby never saw — lag 0 means a synchronous channel and
zero established-flow loss on promotion.

The standby does not run a full NF: it mirrors the *abstract* flow state
(an insertion-ordered map of key → flow, exactly the LRU order both NAT
implementations maintain) and synthesizes a ``repro-ckpt/v1`` checkpoint
at promotion, which a freshly constructed NF then restores. Replication
therefore reuses the checkpoint path end to end — one serialization
format, one set of validation rules.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.nat.config import NatConfig
from repro.resil.checkpoint import Checkpoint

#: Delta operations, as emitted by ``NetworkFunction.delta_sink`` sinks.
OPS = ("create", "touch", "free")


@dataclass(frozen=True, slots=True)
class FlowDelta:
    """One incremental flow-state change.

    ``key`` is the NF's own flow handle (chain index for the verified
    NAT, external port for the unverified one); ``payload`` is the flow
    identity on ``create`` (a :class:`~repro.nat.flow.Flow` or
    :class:`~repro.nat.flow.FlowId`) and None otherwise.
    """

    op: str
    key: int
    payload: Any
    t_us: int


class ReplicationChannel:
    """A FIFO delta stream with a fixed in-flight window (the lag).

    ``lag`` is the number of most-recent deltas still in transit at any
    moment; :meth:`drain` delivers everything older. On failover the
    channel is cut: :meth:`lost_in_flight` reports (and discards) the
    deltas the standby will never receive.
    """

    def __init__(self, lag: int = 0) -> None:
        if lag < 0:
            raise ValueError("replication lag cannot be negative")
        self.lag = lag
        self._in_flight: Deque[FlowDelta] = deque()
        self.published_total = 0
        self.delivered_total = 0
        self.lost_total = 0

    def publish(self, delta: FlowDelta) -> List[FlowDelta]:
        """Enqueue a delta; returns the deltas that complete transit."""
        self._in_flight.append(delta)
        self.published_total += 1
        delivered = []
        while len(self._in_flight) > self.lag:
            delivered.append(self._in_flight.popleft())
        self.delivered_total += len(delivered)
        return delivered

    def drain(self) -> List[FlowDelta]:
        """Deliver everything, as after a clean synchronization barrier."""
        delivered = list(self._in_flight)
        self._in_flight.clear()
        self.delivered_total += len(delivered)
        return delivered

    def lost_in_flight(self) -> List[FlowDelta]:
        """Cut the channel: the in-flight deltas are lost, not delivered."""
        lost = list(self._in_flight)
        self._in_flight.clear()
        self.lost_total += len(lost)
        return lost

    def in_flight_count(self) -> int:
        return len(self._in_flight)


class StandbyReplica:
    """A passive mirror of one NF's abstract flow state, fed by deltas.

    Supports the two NATs with delta emission: ``verified-nat`` (keys
    are chain indices; the mirrored order *is* the double chain's age
    order) and ``unverified-nat`` (keys are external ports; the order is
    the LRU dict's). :meth:`to_checkpoint` rebuilds the NF-specific
    checkpoint payload from the mirror.
    """

    def __init__(self, nf_name: str, config: NatConfig) -> None:
        if nf_name not in ("verified-nat", "unverified-nat"):
            raise ValueError(
                f"standby replication is not supported for NF {nf_name!r}"
            )
        self.nf_name = nf_name
        self.config = config
        # key -> [fid_fields, external_port, last_touch_us], LRU order.
        self._flows: "OrderedDict[int, list]" = OrderedDict()
        self._last_t_us = 0
        self.applied_total = 0
        self.out_of_order_total = 0

    def flow_count(self) -> int:
        return len(self._flows)

    def apply(self, delta: FlowDelta) -> None:
        """Mirror one delta. Unknown keys on touch/free are tolerated —
        they refer to flows whose create was emitted before this replica
        attached (or to a free the active re-emitted); losing a touch
        only ages the flow early, never corrupts state."""
        self.applied_total += 1
        self._last_t_us = max(self._last_t_us, delta.t_us)
        if delta.op == "create":
            payload = delta.payload
            fid = getattr(payload, "internal_id", payload)
            port = getattr(payload, "external_port", delta.key)
            if self.nf_name == "unverified-nat":
                port = delta.key
            # A reused key (its free was in flight when the create
            # arrived) must move to the back — assignment alone would
            # keep the old position and break the mirrored age order.
            self._flows.pop(delta.key, None)
            self._flows[delta.key] = [
                [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol],
                port,
                delta.t_us,
            ]
        elif delta.op == "touch":
            row = self._flows.get(delta.key)
            if row is None:
                self.out_of_order_total += 1
                return
            row[2] = delta.t_us
            self._flows.move_to_end(delta.key)
        elif delta.op == "free":
            if self._flows.pop(delta.key, None) is None:
                self.out_of_order_total += 1
        else:
            raise ValueError(f"unknown delta op {delta.op!r}")

    def apply_all(self, deltas) -> None:
        for delta in deltas:
            self.apply(delta)

    # -- promotion ---------------------------------------------------------
    def _state_dict(self) -> Dict:
        if self.nf_name == "verified-nat":
            flows = [
                [key, row[2], row[0], row[1]]
                for key, row in self._flows.items()
            ]
            return {
                "flows": flows,
                "last_now_us": self._last_t_us,
                "generation": 0,
            }
        # unverified-nat: rows are [last_seen, fid_fields, port] in LRU
        # order. The replica cannot see the ad-hoc allocator's internals,
        # so it resumes the bump allocator past every port it has ever
        # mirrored — ports in gaps are simply never reused, which keeps
        # uniqueness (the property that matters) without the free list.
        flows = [
            [row[2], row[0], row[1]] for row in self._flows.values()
        ]
        next_port = self.config.start_port
        if self._flows:
            next_port = max(row[1] for row in self._flows.values()) + 1
        return {
            "flows": flows,
            "next_port": next_port,
            "free_ports": [],
            "generation": 0,
        }

    def to_checkpoint(self, now_us: Optional[int] = None) -> Checkpoint:
        """Synthesize the checkpoint a promotion restores from."""
        from dataclasses import asdict

        return Checkpoint(
            nf=self.nf_name,
            taken_at_us=self._last_t_us if now_us is None else now_us,
            config=asdict(self.config),
            state=self._state_dict(),
        )

    def established_keys(self) -> Tuple[int, ...]:
        """The flow keys this replica currently holds (for loss accounting)."""
        return tuple(self._flows)


__all__ = ["OPS", "FlowDelta", "ReplicationChannel", "StandbyReplica"]
