"""Composable fault injection for the simulated data path.

A :class:`FaultPlan` is an ordered set of :class:`Fault` windows —
link drop/corrupt/delay, network partition, mbuf-pool exhaustion,
worker kill/hang, clock skew — each scoped to a time window (µs, the
NF clock) and optionally to one worker. The plan is *consulted* by the
data path (:class:`repro.net.dpdk.ShardedRuntime`, the failover
runtime, :class:`repro.net.link.LinkModel`) at its natural choke
points; a ``None`` plan keeps every consultation site on its original
code path, so runs without faults are byte-identical to runs on a tree
without this module.

Fault kinds and where they bite:

=============== ===========================================================
``link-drop``   wire → NIC boundary: the packet never reaches the RX ring
``partition``   same as drop, but total by convention (probability 1)
``link-corrupt`` the packet's L4 checksum is damaged in flight
``link-delay``  the packet's arrival timestamp slips by ``magnitude`` µs
``pool-exhaust`` ``magnitude`` mbufs of the worker's pool are seized
``worker-kill`` the worker stops serving; its queued packets are lost
``worker-hang`` the worker stops serving; its queued packets survive
``clock-skew``  the worker's ``now`` reads ``magnitude`` µs off true time
``reorder``     the packet swaps with its predecessor in the RX ring
=============== ===========================================================

``clock-skew`` with a negative magnitude drives the NF clock *backwards*
— exactly the regression the NATs' monotonic clamp absorbs — so the
harness can demonstrate the clamp under fault rather than only in unit
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

KINDS = (
    "link-drop",
    "link-corrupt",
    "link-delay",
    "partition",
    "pool-exhaust",
    "worker-kill",
    "worker-hang",
    "clock-skew",
    "reorder",
)


@dataclass(frozen=True)
class Fault:
    """One fault window: a kind, when, where, and how hard."""

    kind: str
    start_us: int = 0
    end_us: Optional[int] = None  # None = until the end of the run
    worker: Optional[int] = None  # None = every worker
    magnitude: int = 0  # µs for delay/skew, buffers for pool-exhaust
    probability: float = 1.0  # per-packet chance for link faults

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.end_us is not None and self.end_us < self.start_us:
            raise ValueError("fault window ends before it starts")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("fault probability must be in (0, 1]")

    def active_at(self, t_us: int, worker: Optional[int] = None) -> bool:
        if t_us < self.start_us:
            return False
        if self.end_us is not None and t_us >= self.end_us:
            return False
        if (
            self.worker is not None
            and worker is not None
            and worker != self.worker
        ):
            return False
        return True


class FaultPlan:
    """An ordered, composable set of fault windows with seeded randomness.

    Builders chain::

        plan = (FaultPlan(seed=7)
                .kill_worker(worker=1, at_us=5_000)
                .link_drop(start_us=0, end_us=2_000, probability=0.01)
                .skew_clock(worker=0, start_us=3_000, end_us=4_000,
                            magnitude_us=-500))

    Consultations count what they applied in :attr:`applied`, so runs
    can report how much of each fault actually fired.
    """

    def __init__(self, seed: int = 4242) -> None:
        self.faults: List[Fault] = []
        self.seed = seed
        self._rng = random.Random(seed)
        self.applied: Dict[str, int] = {}

    # -- builders ----------------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def link_drop(
        self,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        return self.add(
            Fault("link-drop", start_us, end_us, worker, 0, probability)
        )

    def link_corrupt(
        self,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        return self.add(
            Fault("link-corrupt", start_us, end_us, worker, 0, probability)
        )

    def link_delay(
        self,
        magnitude_us: int,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> "FaultPlan":
        if magnitude_us < 0:
            raise ValueError("link delay cannot be negative")
        return self.add(
            Fault("link-delay", start_us, end_us, worker, magnitude_us)
        )

    def partition(
        self,
        start_us: int,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(Fault("partition", start_us, end_us, worker))

    def exhaust_pool(
        self,
        buffers: int,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> "FaultPlan":
        if buffers <= 0:
            raise ValueError("must seize at least one buffer")
        return self.add(
            Fault("pool-exhaust", start_us, end_us, worker, buffers)
        )

    def kill_worker(
        self, worker: int, at_us: int, end_us: Optional[int] = None
    ) -> "FaultPlan":
        return self.add(Fault("worker-kill", at_us, end_us, worker))

    def hang_worker(
        self, worker: int, start_us: int, end_us: Optional[int] = None
    ) -> "FaultPlan":
        return self.add(Fault("worker-hang", start_us, end_us, worker))

    def skew_clock(
        self,
        magnitude_us: int,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(
            Fault("clock-skew", start_us, end_us, worker, magnitude_us)
        )

    def reorder(
        self,
        start_us: int = 0,
        end_us: Optional[int] = None,
        worker: Optional[int] = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """A reordering link: delivered packets swap with their
        predecessor in the RX ring with the given per-packet chance."""
        return self.add(
            Fault("reorder", start_us, end_us, worker, 0, probability)
        )

    def clear(
        self, kind: Optional[str] = None, worker: Optional[int] = None
    ) -> "FaultPlan":
        """Retire matching fault windows (both filters AND together).

        The failover controller uses this after promoting a standby:
        the ``worker-kill`` window is cleared so the slot — now running
        the promoted replica — serves again.
        """
        self.faults = [
            f
            for f in self.faults
            if not (
                (kind is None or f.kind == kind)
                and (worker is None or f.worker == worker)
            )
        ]
        return self

    # -- consultations -----------------------------------------------------
    def _note(self, kind: str, count: int = 1) -> None:
        self.applied[kind] = self.applied.get(kind, 0) + count

    def _fires(self, fault: Fault) -> bool:
        if fault.probability >= 1.0:
            return True
        return self._rng.random() < fault.probability

    def link_verdict(
        self, t_us: int, worker: Optional[int] = None
    ) -> Tuple[str, int]:
        """What the wire does to one packet: (verdict, delay_us).

        Verdict is ``"deliver"``, ``"drop"`` or ``"corrupt"``; delays
        from every active ``link-delay`` window accumulate and apply
        regardless of verdict (a dropped packet's delay is moot).
        """
        verdict = "deliver"
        delay_us = 0
        for fault in self.faults:
            if not fault.active_at(t_us, worker):
                continue
            if fault.kind in ("link-drop", "partition"):
                if verdict == "deliver" and self._fires(fault):
                    verdict = "drop"
                    self._note(fault.kind)
            elif fault.kind == "link-corrupt":
                if verdict == "deliver" and self._fires(fault):
                    verdict = "corrupt"
                    self._note(fault.kind)
            elif fault.kind == "link-delay":
                delay_us += fault.magnitude
                self._note(fault.kind)
        return verdict, delay_us

    def reorder_fires(self, t_us: int, worker: Optional[int] = None) -> bool:
        """Whether one just-delivered packet swaps with its ring
        predecessor. Consulted only for packets the wire delivered, so
        the seeded draw sequence is shared with :meth:`link_verdict`."""
        fired = False
        for fault in self.faults:
            if fault.kind != "reorder" or not fault.active_at(t_us, worker):
                continue
            if not fired and self._fires(fault):
                fired = True
                self._note("reorder")
        return fired

    def worker_killed(self, t_us: int, worker: int) -> bool:
        return any(
            f.kind == "worker-kill" and f.active_at(t_us, worker)
            for f in self.faults
        )

    def worker_hung(self, t_us: int, worker: int) -> bool:
        return any(
            f.kind == "worker-hang" and f.active_at(t_us, worker)
            for f in self.faults
        )

    def clock_skew_us(self, t_us: int, worker: int) -> int:
        """Net clock error for this worker at true time ``t_us``."""
        return sum(
            f.magnitude
            for f in self.faults
            if f.kind == "clock-skew" and f.active_at(t_us, worker)
        )

    def pool_seizure(self, t_us: int, worker: int) -> int:
        """Buffers that should be held hostage from this worker's pool."""
        return sum(
            f.magnitude
            for f in self.faults
            if f.kind == "pool-exhaust" and f.active_at(t_us, worker)
        )

    @property
    def empty(self) -> bool:
        return not self.faults

    @staticmethod
    def corrupt_packet(packet):
        """Wire corruption: a bit burst through the L4 checksum field.

        Damaging the checksum keeps the frame parseable (so it exercises
        the NF's validation path rather than the parser) while making it
        verifiably wrong — the canonical single-event upset.
        """
        out = packet.clone()
        if out.l4 is not None:
            out.l4.checksum ^= 0x5555
        elif out.ipv4 is not None:
            out.ipv4.checksum ^= 0x5555
        return out


__all__ = ["KINDS", "Fault", "FaultPlan"]
