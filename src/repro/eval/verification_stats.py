"""Verification statistics: the reproduction's analogue of §5's numbers.

The paper reports 108 execution paths through VigNAT's stateless code
and 431 traces (paths plus prefixes), verified in 38 single-core
minutes. Our stateless NF is leaner (one packet per iteration, no
batching, two devices), so the absolute counts are smaller; what must
hold is the *structure*: exhaustive exploration terminates quickly, the
trace count exceeds the path count (prefix accounting), and every
sub-proof P1-P5 discharges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nat.config import NatConfig
from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.nf_env import vignat_symbolic_body
from repro.verif.report import ProofReport
from repro.verif.semantics import NatSemantics
from repro.verif.validator import Validator


@dataclass
class VerificationStats:
    """Everything §5 reports about verifying VigNAT, for our pipeline."""

    paths: int
    traces: int
    solver_queries: int
    explore_seconds: float
    validate_seconds: float
    obligations: int
    report: ProofReport

    @property
    def verified(self) -> bool:
        return self.report.verified


def collect(config: NatConfig | None = None) -> VerificationStats:
    """Run the full Vigor pipeline on VigNat and gather the statistics."""
    import time

    cfg = config if config is not None else NatConfig()
    engine = ExhaustiveSymbolicEngine()
    started = time.monotonic()
    result = engine.explore(vignat_symbolic_body(cfg))
    explore_seconds = time.monotonic() - started

    started = time.monotonic()
    report = Validator(NatSemantics(cfg)).validate(result, "VigNat")
    validate_seconds = time.monotonic() - started

    obligations = sum(v.obligations for v in report.verdicts())
    return VerificationStats(
        paths=report.paths,
        traces=report.traces,
        solver_queries=report.solver_queries,
        explore_seconds=explore_seconds,
        validate_seconds=validate_seconds,
        obligations=obligations,
        report=report,
    )
