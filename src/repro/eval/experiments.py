"""The §6 performance experiments, parameterized for quick or full runs.

Every experiment follows the paper's methodology (Fig. 11 testbed,
RFC 2544): background flows pin the flow-table occupancy, probe flows
take the NAT's worst-case path and are the latency measurement
population, and throughput is the highest rate with <0.1% loss.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.nat.base import NetworkFunction
from repro.obs.flight import TraceDiff, first_divergence
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.nat.netfilter import NetfilterNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat
from repro.net.costmodel import CostModel
from repro.net.moongen import (
    BackgroundFlows,
    ConstantRateFlows,
    PacketEvent,
    ProbeFlows,
    merge_sources,
)
from repro.net.app import PROCESS, THREADED_DETERMINISTIC, RuntimeSpec, launch
from repro.net.rss import NatSteering
from repro.net.testbed import Rfc2544Testbed, ThroughputResult
from repro.packets.headers import Packet, ParseError

S = 1_000_000_000

NfFactory = Callable[[NatConfig], NetworkFunction]


def default_nf_factories(include_linux: bool = False) -> Dict[str, NfFactory]:
    """The paper's NF lineup (§6 a-c), keyed by display name."""
    factories: Dict[str, NfFactory] = {
        "noop": lambda cfg: NoopForwarder(
            cfg.internal_device, cfg.external_device
        ),
        "unverified-nat": lambda cfg: UnverifiedNat(cfg),
        "verified-nat": lambda cfg: VigNat(cfg),
    }
    if include_linux:
        factories["linux-nat"] = lambda cfg: NetfilterNat(cfg)
    return factories


@dataclass
class EvalSettings:
    """Knobs trading fidelity for wall time."""

    #: Aggregate background packet rate (the paper uses 100 kpps).
    background_pps: float = 100_000
    #: Measurement window, seconds of simulated time.
    measure_seconds: float = 0.8
    #: Probe flows and their per-flow rate (the paper: 1,000 at 0.47 pps).
    probe_flows: int = 1_000
    probe_pps: float = 0.47
    #: Flow expiration for the latency experiments (the paper: 2 s; the
    #: second variant uses 60 s).
    expiration_seconds: float = 2.0
    #: RFC 2544 search parameters.
    throughput_packets: int = 30_000
    throughput_iterations: int = 8

    def nat_config(self) -> NatConfig:
        return NatConfig(expiration_time=int(self.expiration_seconds * 1_000_000))


@dataclass
class LatencyPoint:
    """One Fig. 12 data point."""

    nf: str
    background_flows: int
    avg_us: float
    p99_us: float
    samples: int


def _warmup_ns(flow_count: int, pps: float) -> int:
    """Time for the background mix to fully populate the flow table."""
    cycle = flow_count / pps
    return int(max(1.3 * cycle, 0.2) * S)


def _run_latency(
    factory: NfFactory,
    settings: EvalSettings,
    background_flows: int,
    collect_all: bool = False,
):
    cfg = settings.nat_config()
    warmup = _warmup_ns(background_flows, settings.background_pps)
    duration = warmup + int(settings.measure_seconds * S)
    background = BackgroundFlows(
        flow_count=background_flows,
        total_pps=settings.background_pps,
        duration_ns=duration,
        device=cfg.internal_device,
    )
    probes = ProbeFlows(
        flow_count=settings.probe_flows,
        per_flow_pps=settings.probe_pps,
        duration_ns=duration - warmup,
        device=cfg.internal_device,
        start_ns=warmup,
    )
    testbed = Rfc2544Testbed(cost_model=CostModel(), measure_from_ns=warmup)
    nf = factory(cfg)
    result = testbed.run(nf, merge_sources(background.events(), probes.events()))
    return result


def latency_vs_occupancy(
    factories: Optional[Dict[str, NfFactory]] = None,
    occupancies: Sequence[int] = (1_000, 10_000, 30_000, 60_000, 64_000),
    settings: Optional[EvalSettings] = None,
) -> List[LatencyPoint]:
    """Fig. 12: average probe-flow latency vs. flow-table occupancy."""
    factories = factories if factories is not None else default_nf_factories()
    settings = settings if settings is not None else EvalSettings()
    points: List[LatencyPoint] = []
    for name, factory in factories.items():
        for occupancy in occupancies:
            result = _run_latency(factory, settings, occupancy)
            stats = result.probe_latency
            points.append(
                LatencyPoint(
                    nf=name,
                    background_flows=occupancy,
                    avg_us=stats.average_us(),
                    p99_us=stats.percentile_us(0.99),
                    samples=stats.count,
                )
            )
    return points


@dataclass
class CcdfSeries:
    """One Fig. 13 series: CCDF points for one NF."""

    nf: str
    points: List[tuple] = field(default_factory=list)  # (latency_us, ccdf)
    samples: int = 0

    def probability_above(self, latency_us: float) -> float:
        """P[latency > latency_us] from the empirical CCDF.

        Below the smallest sample the probability is 1 (every sample
        exceeds the threshold); above the largest it is 0.
        """
        if not self.points:
            return 0.0
        prob = 1.0
        for x, p in self.points:
            if x <= latency_us:
                prob = p
            else:
                break
        return prob


def latency_ccdf(
    factories: Optional[Dict[str, NfFactory]] = None,
    background_flows: int = 60_000,
    settings: Optional[EvalSettings] = None,
) -> List[CcdfSeries]:
    """Fig. 13: latency CCDF at 92% flow-table occupancy.

    The CCDF is computed over all measured (forwarded) packets; the
    paper computes it over probe packets, but the simulated population
    must be larger for the DPDK-outlier tail to be resolvable — the
    probe-only and all-packet distributions coincide above the outlier
    threshold, which is the region the figure's claim is about.
    """
    factories = factories if factories is not None else default_nf_factories()
    settings = settings if settings is not None else EvalSettings()
    series: List[CcdfSeries] = []
    for name, factory in factories.items():
        result = _run_latency(factory, settings, background_flows, collect_all=True)
        stats = result.all_latency
        series.append(
            CcdfSeries(nf=name, points=stats.ccdf(), samples=stats.count)
        )
    return series


@dataclass
class BurstPoint:
    """One burst-size-sweep data point for one NF."""

    nf: str
    burst_size: int
    #: Core occupancy per processed packet — the cost the sweep tracks.
    per_packet_busy_ns: float
    #: Service-limited forwarding rate implied by that occupancy.
    implied_mpps: float
    #: Average packets per service burst actually achieved.
    avg_burst_fill: float
    #: NF counter snapshot after the run (bursts, amortized scans, ...).
    counters: Dict[str, int] = field(default_factory=dict)


def burst_size_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    burst_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    flow_count: int = 1_000,
    packet_count: int = 6_000,
    offered_pps: float = 4_000_000.0,
    settings: Optional[EvalSettings] = None,
) -> List[BurstPoint]:
    """Per-packet cost vs. burst size, each NF under saturating load.

    The workload offers more than any NF can serve, so service bursts
    fill to the configured size and the measured core occupancy per
    packet isolates the amortization effect: the per-burst fixed cost
    (expiry scan, env setup) spreads over more packets as the burst
    grows, while per-packet marginal work is unchanged. The relative
    cost structure no-op < unverified < verified ≪ NetFilter must hold
    at every burst size.
    """
    factories = factories if factories is not None else default_nf_factories(
        include_linux=True
    )
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    points: List[BurstPoint] = []
    for name, factory in factories.items():
        for burst_size in burst_sizes:
            testbed = Rfc2544Testbed(
                cost_model=CostModel(), burst_size=burst_size
            )
            nf = factory(cfg)
            workload = ConstantRateFlows(
                flow_count, offered_pps, packet_count, burst=burst_size
            )
            result = testbed.run(nf, workload.events())
            busy = result.per_packet_busy_ns
            points.append(
                BurstPoint(
                    nf=name,
                    burst_size=burst_size,
                    per_packet_busy_ns=busy,
                    implied_mpps=1_000.0 / busy if busy > 0 else 0.0,
                    avg_burst_fill=result.avg_burst_fill,
                    counters=nf.op_counters(),
                )
            )
    return points


@dataclass
class ShardPoint:
    """One shard-sweep data point: one NF at one worker count."""

    nf: str
    workers: int
    burst_size: int
    #: Mean core occupancy per packet across workers (per-core cost).
    per_packet_busy_ns: float
    #: Service-limited rate of the whole sharded box (sum of workers).
    aggregate_mpps: float
    #: Each worker's service-limited rate, in worker order.
    per_worker_mpps: List[float] = field(default_factory=list)
    #: Packets steered to each worker.
    steered: List[int] = field(default_factory=list)
    #: Aggregated NF counters after the run.
    counters: Dict[str, int] = field(default_factory=dict)


def shard_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    burst_size: int = 32,
    flow_count: int = 1_000,
    packet_count: int = 6_000,
    offered_pps: float = 4_000_000.0,
    settings: Optional[EvalSettings] = None,
) -> List[ShardPoint]:
    """Aggregate throughput vs. worker count, each NF under saturation.

    Every worker runs the burst-mode main loop over its own shard of the
    partitioned configuration; the offered load and packet budget scale
    with the worker count so each worker stays saturated and per-worker
    service rates are measured in the same regime at every width. The
    single-worker point takes the exact unsharded code path
    (:meth:`Rfc2544Testbed.run` with the same workload the burst sweep
    uses), so ``workers=1`` reproduces the burst-sweep numbers
    byte-identically. The paper's ordering no-op < unverified <
    verified ≪ NetFilter must hold at every worker count.
    """
    factories = factories if factories is not None else default_nf_factories(
        include_linux=True
    )
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    points: List[ShardPoint] = []
    for name, factory in factories.items():
        for workers in worker_counts:
            if workers == 1:
                testbed = Rfc2544Testbed(
                    cost_model=CostModel(), burst_size=burst_size
                )
                nf = factory(cfg)
                workload = ConstantRateFlows(
                    flow_count, offered_pps, packet_count, burst=burst_size
                )
                result = testbed.run(nf, workload.events())
                busy = result.per_packet_busy_ns
                mpps = 1_000.0 / busy if busy > 0 else 0.0
                points.append(
                    ShardPoint(
                        nf=name,
                        workers=1,
                        burst_size=burst_size,
                        per_packet_busy_ns=busy,
                        aggregate_mpps=mpps,
                        per_worker_mpps=[mpps],
                        steered=[result.burst_packets],
                        counters=nf.op_counters(),
                    )
                )
                continue
            testbed = Rfc2544Testbed(
                cost_model=CostModel(), burst_size=burst_size, workers=workers
            )
            workload = ConstantRateFlows(
                flow_count,
                offered_pps * workers,
                packet_count * workers,
                burst=burst_size,
            )
            spec = RuntimeSpec(
                nf_factory=factory,
                config=cfg,
                workers=workers,
                burst_size=burst_size,
            )
            sharded = testbed.run_spec(spec, workload.events())
            counters: Dict[str, int] = sharded.op_counters()
            points.append(
                ShardPoint(
                    nf=name,
                    workers=workers,
                    burst_size=burst_size,
                    per_packet_busy_ns=sharded.per_packet_busy_ns,
                    aggregate_mpps=sharded.aggregate_mpps(),
                    per_worker_mpps=sharded.per_worker_mpps(),
                    steered=sharded.steered,
                    counters=counters,
                )
            )
    return points


@dataclass
class FastpathPoint:
    """One fastpath-sweep data point: one NF at one flow-locality regime.

    ``flow_count`` sets the locality: few flows → the microflow cache
    converges to ~100% hits; many flows (relative to the packet budget)
    → the cache never warms and every packet takes the slow path.
    """

    nf: str
    flow_count: int
    burst_size: int
    #: Fraction of packets served from the microflow cache.
    hit_rate: float
    #: Modeled core occupancy per packet, cache off / on.
    per_packet_busy_ns_off: float
    per_packet_busy_ns_on: float
    #: Wall-clock seconds the replay actually took, cache off / on —
    #: the real Python-level speedup of skipping the slow path.
    wall_seconds_off: float
    wall_seconds_on: float
    #: True when the cache-on replay emitted byte-identical packets
    #: (wire bytes and output device) to the cache-off replay.
    identical: bool
    counters: Dict[str, int] = field(default_factory=dict)
    #: When not identical: where the two replays first disagreed.
    divergence: Optional[TraceDiff] = None
    #: True when the NF exposes the raw byte-level burst path (the
    #: compiled axis only exists there).
    supports_raw: bool = False
    #: Wall-clock seconds for the raw-frame replay of the same events:
    #: no fast path at all (parse / slow path / serialize), the replay
    #: action cache, and the batch-applied compiled closures. All 0.0
    #: for NFs without raw-path support.
    raw_wall_seconds_off: float = 0.0
    raw_wall_seconds_cache: float = 0.0
    raw_wall_seconds_compiled: float = 0.0
    #: True when all three raw modes emitted byte-identical frames to
    #: the object-path replay (vacuously True without raw support).
    raw_identical: bool = True
    #: Counters from the compiled-mode replay (compiles, batches, ...).
    compiled_counters: Dict[str, int] = field(default_factory=dict)
    #: When the raw modes diverged: the first disagreement.
    raw_divergence: Optional[TraceDiff] = None

    @property
    def implied_mpps_off(self) -> float:
        busy = self.per_packet_busy_ns_off
        return 1_000.0 / busy if busy > 0 else 0.0

    @property
    def implied_mpps_on(self) -> float:
        busy = self.per_packet_busy_ns_on
        return 1_000.0 / busy if busy > 0 else 0.0

    @property
    def wall_speedup(self) -> float:
        if self.wall_seconds_on <= 0:
            return 0.0
        return self.wall_seconds_off / self.wall_seconds_on

    @property
    def compiled_speedup_over_cache(self) -> float:
        """Raw-path wall speedup of compiled closures over the replay cache."""
        if self.raw_wall_seconds_compiled <= 0:
            return 0.0
        return self.raw_wall_seconds_cache / self.raw_wall_seconds_compiled

    @property
    def compiled_speedup_over_off(self) -> float:
        """Raw-path wall speedup of compiled closures over no fast path."""
        if self.raw_wall_seconds_compiled <= 0:
            return 0.0
        return self.raw_wall_seconds_off / self.raw_wall_seconds_compiled


def _burst_replay_outputs(
    nf: NetworkFunction, events: Sequence, burst_size: int
) -> List[List[tuple]]:
    """Replay events through an NF in fixed bursts, collecting wire bytes.

    The deterministic replay used for the fastpath differential check:
    (wire_bytes, device) per output packet, one list per input packet.
    """
    outputs: List[List[tuple]] = []
    for i in range(0, len(events), burst_size):
        chunk = events[i : i + burst_size]
        now_us = chunk[0].time_ns // 1_000
        results = nf.process_burst([e.packet.clone() for e in chunk], now_us)
        for outs in results:
            outputs.append([(o.wire_bytes(), o.device) for o in outs])
    return outputs


def _timed_burst_replay(
    nf: NetworkFunction, events: Sequence, burst_size: int, repeats: int = 3
) -> float:
    """Wall-clock seconds for one warmed burst replay of ``events``.

    A first (untimed) pass populates the flow table — and, for a
    :class:`FastPathNat`, the microflow cache past its creation-driven
    invalidation churn — so the timed passes measure the steady state
    both paths would reach under sustained traffic. The fastest of
    ``repeats`` passes is reported (the usual noise-floor estimator:
    scheduling hiccups only ever add time). NFs never mutate their
    input packets, so the events are replayed as-is.
    """
    best = None
    for timed_pass in range(1 + repeats):
        started = time.perf_counter()
        for i in range(0, len(events), burst_size):
            chunk = events[i : i + burst_size]
            nf.process_burst([e.packet for e in chunk], chunk[0].time_ns // 1_000)
        elapsed = time.perf_counter() - started
        if timed_pass > 0 and (best is None or elapsed < best):
            best = elapsed
    return best


class _RawSlowPath:
    """The raw burst path with no fast path at all.

    The fastpath-off baseline for the raw axis: parse every frame, run
    the slow path, serialize with stored checksums — what a byte-level
    data path costs when every packet is treated as cold.
    """

    def __init__(self, nf: NetworkFunction) -> None:
        self.nf = nf

    def process_raw_burst(self, frames, now: int):
        results = []
        process = self.nf.process
        for buf, device in frames:
            try:
                packet = Packet.from_bytes(bytes(buf), device)
            except ParseError:
                results.append([])
                continue
            results.append(
                [(out.wire_bytes(), out.device) for out in process(packet, now)]
            )
        return results


def _raw_frames(events: Sequence) -> List[Tuple[bytes, int]]:
    """Serialize events once; replays copy per pass (hits mutate buffers)."""
    return [(e.packet.wire_bytes(), e.packet.device) for e in events]


def _raw_replay_outputs(nf, events: Sequence, burst_size: int) -> List[List[tuple]]:
    """One raw replay pass, collecting (wire bytes, device) per packet."""
    frames = _raw_frames(events)
    outputs: List[List[tuple]] = []
    for i in range(0, len(frames), burst_size):
        chunk = frames[i : i + burst_size]
        now_us = events[i].time_ns // 1_000
        results = nf.process_raw_burst(
            [(bytearray(buf), device) for buf, device in chunk], now_us
        )
        outputs.extend(list(outs) for outs in results)
    return outputs


def _timed_raw_burst_replay(
    nf, events: Sequence, burst_size: int, repeats: int = 3
) -> float:
    """Wall-clock seconds for one warmed raw-frame replay of ``events``.

    Mirrors :func:`_timed_burst_replay`: an untimed warm pass (flow
    table, caches, compiled closures), then the fastest of ``repeats``
    timed passes. Frames are serialized once up front; the per-burst
    ``bytearray`` copies stay inside the timed region for every mode
    equally (in-place hits mutate the buffers, so each pass needs its
    own).
    """
    frames = _raw_frames(events)
    best = None
    for timed_pass in range(1 + repeats):
        started = time.perf_counter()
        for i in range(0, len(frames), burst_size):
            chunk = frames[i : i + burst_size]
            nf.process_raw_burst(
                [(bytearray(buf), device) for buf, device in chunk],
                events[i].time_ns // 1_000,
            )
        elapsed = time.perf_counter() - started
        if timed_pass > 0 and (best is None or elapsed < best):
            best = elapsed
    return best


def fastpath_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    flow_counts: Sequence[int] = (64, 1_024, 4_096),
    burst_size: int = 32,
    packet_count: int = 6_000,
    offered_pps: float = 4_000_000.0,
    settings: Optional[EvalSettings] = None,
) -> List[FastpathPoint]:
    """The microflow fast path across flow-locality regimes.

    For each NF and flow count, three measurements over the identical
    workload: (1) a deterministic burst replay through a cache-off and a
    cache-on NF, asserting the emitted packets are byte-identical; (2)
    modeled per-packet service cost from a testbed run with the cache
    off and on; (3) warmed wall-clock replays of the bare data path with
    the cache off and on — the real Python-level cost of the slow path
    versus the cached replay, free of the testbed's simulation overhead.
    NFs that support the raw byte path get a fourth axis: the same
    events replayed as raw frames through no fast path, the replay
    cache, and the batch-applied compiled closures
    (``fastpath="compiled"``), each byte-compared against the
    object-path replay. The paper's no-op < unverified < verified cost
    ordering must survive at every hit rate (the cache accelerates
    every NF, it does not reorder them).

    The default lineup excludes the NetFilter NAT: it models a kernel
    path and exposes no fast-path hooks.
    """
    factories = factories if factories is not None else default_nf_factories()
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    points: List[FastpathPoint] = []
    for name, factory in factories.items():
        for flow_count in flow_counts:
            workload = ConstantRateFlows(
                flow_count, offered_pps, packet_count, burst=burst_size
            )
            events = list(workload.events())
            off_outputs = _burst_replay_outputs(factory(cfg), events, burst_size)
            on_outputs = _burst_replay_outputs(
                FastPathNat(factory(cfg)), events, burst_size
            )
            identical = off_outputs == on_outputs
            divergence = (
                None if identical else first_divergence(off_outputs, on_outputs)
            )

            def modeled_run(nf: NetworkFunction):
                testbed = Rfc2544Testbed(
                    cost_model=CostModel(), burst_size=burst_size
                )
                workload = ConstantRateFlows(
                    flow_count, offered_pps, packet_count, burst=burst_size
                )
                return testbed.run(nf, workload.events())

            result_off = modeled_run(factory(cfg))
            result_on = modeled_run(FastPathNat(factory(cfg)))

            wall_off = _timed_burst_replay(factory(cfg), events, burst_size)
            fast = FastPathNat(factory(cfg))
            wall_on = _timed_burst_replay(fast, events, burst_size)

            # The raw axis: the same events over raw frame bytes, with
            # no fast path, the replay cache, and compiled closures.
            # Every mode's output must byte-match the object-path
            # replay — the compiled axis of the differential check.
            hooks = factory(cfg).fastpath_hooks()
            supports_raw = bool(hooks is not None and hooks.supports_raw)
            raw_off_s = raw_cache_s = raw_compiled_s = 0.0
            raw_identical = True
            raw_divergence = None
            compiled_counters: Dict[str, int] = {}
            if supports_raw:
                raw_off_outputs = _raw_replay_outputs(
                    _RawSlowPath(factory(cfg)), events, burst_size
                )
                raw_cache_outputs = _raw_replay_outputs(
                    FastPathNat(factory(cfg), mode="cache"), events, burst_size
                )
                raw_compiled_outputs = _raw_replay_outputs(
                    FastPathNat(factory(cfg), mode="compiled"),
                    events,
                    burst_size,
                )
                raw_identical = (
                    off_outputs
                    == raw_off_outputs
                    == raw_cache_outputs
                    == raw_compiled_outputs
                )
                if not raw_identical:
                    raw_divergence = first_divergence(
                        raw_cache_outputs, raw_compiled_outputs
                    ) or first_divergence(off_outputs, raw_compiled_outputs)
                raw_off_s = _timed_raw_burst_replay(
                    _RawSlowPath(factory(cfg)), events, burst_size
                )
                raw_cache_s = _timed_raw_burst_replay(
                    FastPathNat(factory(cfg), mode="cache"), events, burst_size
                )
                compiled_nf = FastPathNat(factory(cfg), mode="compiled")
                raw_compiled_s = _timed_raw_burst_replay(
                    compiled_nf, events, burst_size
                )
                compiled_counters = {
                    key: value
                    for key, value in compiled_nf.op_counters().items()
                    if key.startswith("fastpath_")
                }

            points.append(
                FastpathPoint(
                    nf=name,
                    flow_count=flow_count,
                    burst_size=burst_size,
                    hit_rate=fast.hit_rate(),
                    per_packet_busy_ns_off=result_off.per_packet_busy_ns,
                    per_packet_busy_ns_on=result_on.per_packet_busy_ns,
                    wall_seconds_off=wall_off,
                    wall_seconds_on=wall_on,
                    identical=identical,
                    counters=fast.op_counters(),
                    divergence=divergence,
                    supports_raw=supports_raw,
                    raw_wall_seconds_off=raw_off_s,
                    raw_wall_seconds_cache=raw_cache_s,
                    raw_wall_seconds_compiled=raw_compiled_s,
                    raw_identical=raw_identical,
                    compiled_counters=compiled_counters,
                    raw_divergence=raw_divergence,
                )
            )
    return points


def collect_sharded_metrics(
    workers: int = 2,
    *,
    fastpath: bool = True,
    flow_count: int = 256,
    packet_count: int = 2_048,
    burst_size: int = 32,
    offered_pps: float = 1_000_000.0,
    execution: str = THREADED_DETERMINISTIC,
    settings: Optional[EvalSettings] = None,
) -> Dict:
    """Drive a sharded run and return its merged metrics snapshot.

    Exercises the full modeled I/O path — RSS steering through the NIC,
    per-worker mbuf pools and ports, the burst main loop, the microflow
    cache over the verified NAT — then collects one snapshot covering
    pool, NIC, runtime, fastpath and flow-table metrics, each worker's
    samples labeled ``worker=<i>``. With ``execution="process"`` the
    same schedule runs on real worker processes and the snapshot is the
    cross-process merge.
    """
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    spec = RuntimeSpec(
        nf_factory=lambda shard: VigNat(shard),
        config=cfg,
        workers=workers,
        execution=execution,
        fastpath=fastpath,
        burst_size=burst_size,
    )
    runtime = launch(spec)
    try:
        workload = ConstantRateFlows(
            flow_count, offered_pps, packet_count, burst=burst_size
        )
        pending = 0
        now_us = 0
        for event in workload.events():
            now_us = event.time_ns // 1_000
            runtime.inject(cfg.internal_device, event.packet, now_us)
            pending += 1
            if pending >= burst_size * workers:
                runtime.main_loop_burst(now_us, burst_size)
                pending = 0
        runtime.main_loop_burst(now_us, burst_size)
        return runtime.snapshot_metrics()
    finally:
        runtime.stop()


@dataclass
class FailoverPoint:
    """One availability data point: one NF, one replication lag.

    The scenario is fixed: establish ``flow_count`` flows across
    ``workers`` workers, run steady reply traffic, kill one worker
    mid-replay, let the controller promote its standby, keep the
    traffic flowing, then probe every flow once after recovery. The
    loss ledger separates the mechanisms: flows lost to in-flight
    replication deltas, packets lost on the dead worker's queues, and
    packets lost to the modeled promotion blackout.
    """

    nf: str
    lag: int
    workers: int
    flow_count: int
    kill_worker: int
    #: From the controller's :class:`~repro.resil.failover.FailoverReport`.
    flows_at_kill: int
    flows_recovered: int
    flows_lost: int
    deltas_lost: int
    recovery_us: int
    packets_lost_queue: int
    packets_lost_blackout: int
    #: Steady-phase reply traffic spanning the kill window.
    steady_offered: int
    steady_delivered: int
    #: Post-recovery probe: one reply per established flow.
    probe_offered: int
    probe_delivered: int
    #: Microflow-cache actions rebuilt from restored flow state at
    #: promotion (0 in cache-off runs).
    fastpath_warmed: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def steady_lost(self) -> int:
        return self.steady_offered - self.steady_delivered

    @property
    def availability(self) -> float:
        if self.steady_offered == 0:
            return 1.0
        return self.steady_delivered / self.steady_offered

    @property
    def probe_lost(self) -> int:
        return self.probe_offered - self.probe_delivered


@dataclass
class FailoverBudget:
    """The loss budget ``experiments failover`` gates on."""

    #: Established flows allowed to die at lag 0 (synchronous channel).
    max_flows_lost_at_lag0: int = 0
    #: Hard ceiling on the modeled promotion blackout.
    max_recovery_us: int = 10_000
    #: Post-recovery probes may lose only the flows replication lost.
    allow_probe_loss_beyond_flows_lost: int = 0


def failover_breaches(
    points: Sequence[FailoverPoint], budget: Optional[FailoverBudget] = None
) -> List[str]:
    """Budget violations across a failover sweep (empty = within budget)."""
    budget = budget if budget is not None else FailoverBudget()
    breaches: List[str] = []
    for p in points:
        where = f"{p.nf} @ lag {p.lag}"
        if p.lag == 0 and p.flows_lost > budget.max_flows_lost_at_lag0:
            breaches.append(
                f"{where}: {p.flows_lost} established flows lost on a "
                f"synchronous channel (budget {budget.max_flows_lost_at_lag0})"
            )
        if p.recovery_us > budget.max_recovery_us:
            breaches.append(
                f"{where}: recovery took {p.recovery_us}us "
                f"(budget {budget.max_recovery_us}us)"
            )
        allowed = p.flows_lost + budget.allow_probe_loss_beyond_flows_lost
        if p.probe_lost > allowed:
            breaches.append(
                f"{where}: {p.probe_lost} probe replies lost after recovery "
                f"but only {p.flows_lost} flows were lost to replication"
            )
    return breaches


def replicable_nf_factories() -> Dict[str, NfFactory]:
    """The NFs that emit flow deltas and so support a warm standby."""
    return {
        "unverified-nat": lambda cfg: UnverifiedNat(cfg),
        "verified-nat": lambda cfg: VigNat(cfg),
    }


def failover_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    lags: Sequence[int] = (0, 8, 64),
    workers: int = 2,
    flow_count: int = 192,
    steady_rounds: int = 6,
    kill_worker: int = 1,
    fastpath: bool = False,
    settings: Optional[EvalSettings] = None,
) -> List[FailoverPoint]:
    """The availability benchmark: kill-and-promote at each replication lag.

    Per (NF, lag): a :class:`~repro.resil.failover.ReplicatedRuntime`
    establishes ``flow_count`` flows, steady reply traffic runs for
    ``steady_rounds`` rounds with ``kill_worker`` killed halfway
    through, and after the promoted standby's blackout every flow is
    probed once. At lag 0 the replication channel is synchronous, so
    the controller must recover every established flow — the zero-loss
    anchor the budget gate pins; growing lag trades replication traffic
    for flows lost with the channel's in-flight window.
    """
    from repro.packets.builder import make_udp_packet
    from repro.resil.faults import FaultPlan

    factories = factories if factories is not None else replicable_nf_factories()
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    burst = 32
    points: List[FailoverPoint] = []
    for name, factory in factories.items():
        for lag in lags:
            plan = FaultPlan()
            runtime = launch(
                RuntimeSpec(
                    nf_factory=factory,
                    config=cfg,
                    workers=workers,
                    fastpath=fastpath,
                    fault_plan=plan,
                    replication_lag=lag,
                )
            )
            ext_ip = runtime.runtime.config.external_ip

            # Establish: one outbound packet per flow; the flow's
            # dst_port doubles as its marker in the translated output.
            now = 1_000
            pending = 0
            for i in range(flow_count):
                packet = make_udp_packet(
                    0x0A000001, "8.8.8.8", 1_024 + i, 20_000 + i, device=0
                )
                runtime.inject(0, packet, now)
                now += 5
                pending += 1
                if pending >= burst:
                    runtime.main_loop_burst(now, burst)
                    pending = 0
            runtime.main_loop_burst(now, burst)
            ext_port_of: Dict[int, int] = {}
            for _, _, out in runtime.collect():
                if out.ipv4 is not None and out.ipv4.src_ip == ext_ip:
                    ext_port_of[out.l4.dst_port - 20_000] = out.l4.src_port

            # Steady phase: each round replays one reply per established
            # flow, then opens `churn` brand-new flows — so creates keep
            # flowing through the replication channel. The kill lands
            # right after the kill round's churn is processed, when
            # those creates are the newest deltas in flight: exactly
            # the window a lagged channel loses.
            churn = max(4, flow_count // 12)
            kill_round = steady_rounds // 2
            steady_offered = 0
            next_marker = flow_count
            for r in range(steady_rounds):
                for i, ext_port in sorted(ext_port_of.items()):
                    reply = make_udp_packet(
                        "8.8.8.8", ext_ip, 20_000 + i, ext_port, device=1
                    )
                    runtime.inject(1, reply, now)
                    steady_offered += 1
                    now += 5
                    pending += 1
                    if pending >= burst:
                        runtime.main_loop_burst(now, burst)
                        pending = 0
                for _ in range(churn):
                    packet = make_udp_packet(
                        0x0A000001,
                        "8.8.8.8",
                        1_024 + next_marker,
                        20_000 + next_marker,
                        device=0,
                    )
                    next_marker += 1
                    runtime.inject(0, packet, now)
                    steady_offered += 1
                    now += 5
                    pending += 1
                now += 100
                runtime.main_loop_burst(now, burst)
                pending = 0
                if r == kill_round:
                    plan.kill_worker(kill_worker, at_us=now + 1)
                    now += 2
                    runtime.main_loop_burst(now, burst)
            steady_delivered = len(runtime.collect())

            # Post-recovery probe: every flow answers unless replication
            # lost it.
            report = runtime.reports[0] if runtime.reports else None
            if report is not None:
                now = max(now, report.ready_at_us) + 100
            probe_offered = 0
            for i, ext_port in sorted(ext_port_of.items()):
                reply = make_udp_packet(
                    "8.8.8.8", ext_ip, 20_000 + i, ext_port, device=1
                )
                runtime.inject(1, reply, now)
                probe_offered += 1
                now += 5
            runtime.main_loop_burst(now, burst)
            probe_delivered = len(runtime.collect())

            points.append(
                FailoverPoint(
                    nf=name,
                    lag=lag,
                    workers=workers,
                    flow_count=flow_count,
                    kill_worker=kill_worker,
                    flows_at_kill=report.flows_at_kill if report else 0,
                    flows_recovered=report.flows_recovered if report else 0,
                    flows_lost=report.flows_lost if report else 0,
                    deltas_lost=report.deltas_lost if report else 0,
                    recovery_us=report.recovery_us if report else 0,
                    packets_lost_queue=report.packets_lost_queue if report else 0,
                    packets_lost_blackout=(
                        report.packets_lost_blackout if report else 0
                    ),
                    steady_offered=steady_offered,
                    steady_delivered=steady_delivered,
                    probe_offered=probe_offered,
                    probe_delivered=probe_delivered,
                    fastpath_warmed=report.fastpath_warmed if report else 0,
                    counters=runtime.op_counters(),
                )
            )
    return points


@dataclass
class CgnatPoint:
    """One stateless-CGNAT scaling point: one NF at one flow count.

    The sweep's claim is about *state*, not speed: as flow count grows
    10x and 100x, the deterministic NAT's ``state_entries`` stays 0 and
    its checkpoint (the serialized footprint a standby must absorb)
    stays constant, while the stateful NATs grow both linearly.
    ``return_path_ok`` is the correctness differential riding along:
    replies to every sampled translated port must reach the internal
    endpoint that originated the flow.
    """

    nf: str
    flow_count: int
    #: Warmed burst-replay throughput of the forward path.
    replay_pps: float
    #: Live flow-table entries after the whole workload (0 = stateless).
    state_entries: int
    #: Serialized checkpoint payload size — the memory/transfer proxy.
    checkpoint_bytes: int
    #: Every sampled reply routed back to its originating endpoint.
    return_path_ok: bool
    counters: Dict[str, int] = field(default_factory=dict)


def cgnat_config(
    flow_count: int,
    subscriber_count: int = 64,
    start_port: int = 1_024,
) -> "CgnatConfig":
    """A CGNAT domain sized to hold exactly ``flow_count`` translations.

    The same config drives every NF in the sweep: for :class:`DetNat`
    it is the bijection's domain, for the stateful NATs a plain
    :class:`NatConfig` with ``max_flows == flow_count`` — so all NFs
    face an identical port budget and an identical workload.
    """
    from repro.nat.cgnat import CgnatConfig

    return CgnatConfig(
        start_port=start_port,
        max_flows=flow_count,
        expiration_time=60 * 1_000_000,
        subscriber_count=subscriber_count,
        internal_port_base=1_024,
    )


def cgnat_nf_factories() -> Dict[str, NfFactory]:
    """The scaling-comparison lineup: stateless vs. the stateful NATs."""
    from repro.nat.cgnat import DetNat

    return {
        "det-nat": lambda cfg: DetNat(cfg),
        "unverified-nat": lambda cfg: UnverifiedNat(cfg),
        "verified-nat": lambda cfg: VigNat(cfg),
    }


def _cgnat_events(config: "CgnatConfig", flow_count: int) -> List[PacketEvent]:
    """One outbound packet per flow, walking the whole subscriber/port
    domain — every packet translatable by DetNat and allocatable by the
    stateful NATs alike."""
    from repro.packets.builder import make_udp_packet

    ppn = config.ports_per_subscriber
    events = []
    for k in range(flow_count):
        subscriber, offset = divmod(k, ppn)
        packet = make_udp_packet(
            config.internal_base + subscriber,
            "8.8.8.8",
            config.internal_port_base + offset,
            53,
            device=config.internal_device,
        )
        events.append(PacketEvent(time_ns=1_000_000_000 + k, packet=packet))
    return events


def _cgnat_return_path_ok(
    nf: NetworkFunction,
    config: "CgnatConfig",
    events: Sequence[PacketEvent],
    sample: int = 64,
) -> bool:
    """Replies to translated ports must reach their originating flows.

    For each sampled flow: push the outbound packet, read the external
    port off the translated output, inject the reply, and require the
    NF to deliver it to the flow's own internal (addr, port) on the
    internal device. For DetNat this exercises the arithmetic inverse;
    for the stateful NATs the flow-table reverse lookup — same
    differential, no NF-specific knowledge.
    """
    from repro.packets.builder import make_udp_packet

    step = max(1, len(events) // sample)
    now_us = 2_000_000
    for event in events[::step]:
        packet = event.packet
        outs = nf.process(packet, now_us)
        if len(outs) != 1:
            return False
        translated = outs[0]
        reply = make_udp_packet(
            packet.ipv4.dst_ip,
            translated.ipv4.src_ip,
            translated.l4.dst_port,
            translated.l4.src_port,
            device=config.external_device,
        )
        backs = nf.process(reply, now_us)
        if len(backs) != 1:
            return False
        back = backs[0]
        if back.device != config.internal_device:
            return False
        if (back.ipv4.dst_ip, back.l4.dst_port) != (
            packet.ipv4.src_ip,
            packet.l4.src_port,
        ):
            return False
        now_us += 1
    return True


def cgnat_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    flow_counts: Sequence[int] = (512, 5_120, 51_200),
    burst_size: int = 32,
    subscriber_count: int = 64,
) -> List[CgnatPoint]:
    """Memory flatness of the stateless CGNAT at 10x and 100x flows.

    Per (NF, flow count): replay one packet per flow through the
    forward path (warmed, timed), then record the NF's live state-entry
    count and serialized checkpoint size, and run the return-path
    differential. The default flow counts are 1x/10x/100x of the
    fastpath sweep's largest regime; ``flow_count`` must be divisible
    by ``subscriber_count`` (the bijection tiles the domain evenly).
    """
    import json as _json

    factories = factories if factories is not None else cgnat_nf_factories()
    points: List[CgnatPoint] = []
    for flow_count in flow_counts:
        config = cgnat_config(flow_count, subscriber_count=subscriber_count)
        events = _cgnat_events(config, flow_count)
        for name, factory in factories.items():
            nf = factory(config)
            wall = _timed_burst_replay(nf, events, burst_size)
            pps = len(events) / wall if wall and wall > 0 else 0.0
            state = nf.checkpoint_state()
            flow_counter = getattr(nf, "flow_count", None)
            points.append(
                CgnatPoint(
                    nf=name,
                    flow_count=flow_count,
                    replay_pps=pps,
                    state_entries=flow_counter() if flow_counter else 0,
                    checkpoint_bytes=len(_json.dumps(state).encode()),
                    return_path_ok=_cgnat_return_path_ok(
                        factory(config), config, events
                    ),
                    counters=nf.op_counters(),
                )
            )
    return points


#: Allowed relative spread of the stateless NAT's checkpoint size
#: across flow counts before the sweep calls it non-flat.
CGNAT_FLATNESS_SLACK = 0.10


def cgnat_flatness_breaches(points: Sequence[CgnatPoint]) -> List[str]:
    """Violations of the sweep's claims (empty = all hold).

    Gated: the stateless NAT holds zero state and a flat checkpoint at
    every flow count; the stateful NATs' state grows with flow count
    (otherwise the contrast is vacuous); and every NF routes the
    sampled return path correctly.
    """
    breaches: List[str] = []
    by_nf: Dict[str, List[CgnatPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
        if not point.return_path_ok:
            breaches.append(
                f"{point.nf} @ {point.flow_count} flows: return-path "
                f"differential failed (reply did not reach its originator)"
            )
    for nf, nf_points in sorted(by_nf.items()):
        nf_points.sort(key=lambda p: p.flow_count)
        entries = [p.state_entries for p in nf_points]
        if nf == "det-nat":
            if any(entries):
                breaches.append(
                    f"det-nat holds flow state ({entries} entries); the "
                    f"stateless mapping must hold none"
                )
            sizes = [p.checkpoint_bytes for p in nf_points]
            if max(sizes) > max(min(sizes), 1) * (1 + CGNAT_FLATNESS_SLACK):
                breaches.append(
                    f"det-nat checkpoint not flat across flow counts: "
                    f"{sizes} bytes"
                )
        elif len(nf_points) > 1:
            if not all(a < b for a, b in zip(entries, entries[1:])):
                breaches.append(
                    f"{nf} state entries {entries} do not grow with flow "
                    f"count; the stateful contrast is not being measured"
                )
    return breaches


def throughput_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    flow_counts: Sequence[int] = (1_000, 16_000, 32_000, 48_000, 64_000),
    settings: Optional[EvalSettings] = None,
) -> Dict[str, List[ThroughputResult]]:
    """Fig. 14: maximum throughput with <0.1% loss vs. flow count.

    Flows never expire during the search (the paper fixes the flow set),
    so the NAT configuration uses a 60 s timeout.
    """
    factories = factories if factories is not None else default_nf_factories(
        include_linux=True
    )
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    outcome: Dict[str, List[ThroughputResult]] = {}
    for name, factory in factories.items():
        testbed = Rfc2544Testbed(cost_model=CostModel())
        results: List[ThroughputResult] = []
        for flow_count in flow_counts:
            results.append(
                testbed.max_throughput(
                    lambda: factory(cfg),
                    flow_count,
                    packet_count=settings.throughput_packets,
                    iterations=settings.throughput_iterations,
                )
            )
        outcome[name] = results
    return outcome


@dataclass
class ProcsPoint:
    """One process-runtime scaling point: one NF × workers × transport.

    Two claims ride together. Correctness: the process runtime's
    per-worker TX streams (and merged NF counters) are byte-identical
    to the deterministic oracle's on the same schedule — ``identical``,
    on either transport. Performance: the warmed replay rate scales
    with workers *up to the cores actually available*, which is why
    ``cores`` is recorded in the artifact: the budget gate scales its
    expectation by ``min(workers, cores)`` instead of assuming the CI
    machine's shape. ``transport_ns`` carries the ablation instruments
    (fleet-total encode/copy/ring-wait nanoseconds across the
    differential + pump phases), so the pipe-vs-shm tax is measured in
    the artifact rather than asserted in prose.
    """

    nf: str
    workers: int
    burst_size: int
    #: Packets in one replay pass (the pps numerator).
    packets: int
    #: CPU cores available to this run (``os.sched_getaffinity``).
    cores: int
    #: Warmed fastest-of-N replay rate through the worker processes.
    replay_pps: float
    #: ``replay_pps`` relative to the same NF's 1-worker point on the
    #: same transport.
    speedup_vs_1: float
    #: Process TX streams and counters matched the oracle exactly.
    identical: bool
    counters: Dict[str, int] = field(default_factory=dict)
    #: Which payload transport carried the packets ("pipe" | "shm").
    transport: str = "shm"
    #: Fleet-total transport ablation counters (parent + all workers):
    #: encode_ns / copy_ns / ring_wait_ns.
    transport_ns: Dict[str, int] = field(default_factory=dict)


def procs_nf_factories() -> Dict[str, NfFactory]:
    """The NFs the process-runtime differential + scaling sweep covers."""
    return {
        "unverified-nat": lambda cfg: UnverifiedNat(cfg),
        "verified-nat": lambda cfg: VigNat(cfg),
    }


def _drive_differential(runtime, events, burst_size: int) -> None:
    """The shared drive loop: inject per event, turn every burst."""
    pending = 0
    now_us = 0
    for event in events:
        now_us = event.time_ns // 1_000
        runtime.inject(event.packet.device, event.packet, now_us)
        pending += 1
        if pending >= burst_size:
            runtime.main_loop_burst(now_us, burst_size)
            pending = 0
    runtime.main_loop_burst(now_us + 1, burst_size)
    runtime.main_loop_burst(now_us + 2, burst_size)


def procs_sweep(
    factories: Optional[Dict[str, NfFactory]] = None,
    worker_counts: Sequence[int] = (1, 2, 4),
    flow_count: int = 256,
    packet_count: int = 4_000,
    burst_size: int = 32,
    fastpath: bool = False,
    repeats: int = 3,
    settings: Optional[EvalSettings] = None,
    transports: Optional[Sequence[str]] = None,
) -> List[ProcsPoint]:
    """Process-per-shard scaling with the oracle differential riding along.

    Per (NF, worker count, transport): the identical schedule is driven
    through the deterministic :class:`~repro.net.dpdk.ShardedRuntime`
    (the oracle) and a
    :class:`~repro.net.procrun.ProcessShardedRuntime`, and their
    per-worker TX streams plus merged counters must match byte for
    byte — the differential drive doubles as the warm-up pass. Then
    the throughput phase pre-steers and serializes the schedule once
    (:meth:`~repro.net.procrun.ProcessShardedRuntime.prepare_schedule`)
    and times the fastest of ``repeats`` scatter/gather pumps, so the
    measured rate is the workers' concurrent data path, not the
    parent's per-packet steering. The fleet's transport ablation
    counters are harvested after the pumps, so each point carries the
    measured encode/copy/ring-wait split for its transport.
    """
    from repro.net.procrun import TRANSPORTS

    factories = factories if factories is not None else procs_nf_factories()
    transports = tuple(transports) if transports is not None else TRANSPORTS
    settings = settings if settings is not None else EvalSettings(
        expiration_seconds=60.0
    )
    cfg = settings.nat_config()
    cores = len(os.sched_getaffinity(0))
    points: List[ProcsPoint] = []
    for name, factory in factories.items():
        for transport in transports:
            base_pps: Optional[float] = None
            for workers in worker_counts:
                workload = ConstantRateFlows(
                    flow_count, 1_000_000.0, packet_count, burst=burst_size
                )
                events = list(workload.events())

                oracle = launch(
                    RuntimeSpec(
                        nf_factory=factory,
                        config=cfg,
                        workers=workers,
                        execution=THREADED_DETERMINISTIC,
                        fastpath=fastpath,
                        burst_size=burst_size,
                    )
                )
                proc = launch(
                    RuntimeSpec(
                        nf_factory=factory,
                        config=cfg,
                        workers=workers,
                        execution=PROCESS,
                        fastpath=fastpath,
                        burst_size=burst_size,
                        transport=transport,
                    )
                )
                try:
                    _drive_differential(oracle, events, burst_size)
                    _drive_differential(proc, events, burst_size)
                    oracle_tx = [
                        [
                            (port, packet.device, ts, packet.wire_bytes())
                            for port, ts, packet in worker_records
                        ]
                        for worker_records in oracle.collect_by_worker()
                    ]
                    proc_tx = proc.collect_raw_by_worker()
                    counters = proc.op_counters()
                    identical = (
                        oracle_tx == proc_tx
                        and counters == oracle.op_counters()
                    )

                    schedule = proc.prepare_schedule(events, burst_size)
                    best: Optional[float] = None
                    for _ in range(max(1, repeats)):
                        started = time.perf_counter()
                        proc.pump(schedule, burst_size)
                        elapsed = time.perf_counter() - started
                        if best is None or elapsed < best:
                            best = elapsed
                    replay_pps = (
                        len(events) / best if best and best > 0 else 0.0
                    )
                    transport_ns = proc.transport_counters()["total"]
                finally:
                    oracle.stop()
                    proc.stop()

                if workers == 1 or base_pps is None:
                    base_pps = replay_pps if workers == 1 else base_pps
                speedup = (
                    replay_pps / base_pps if base_pps and base_pps > 0 else 0.0
                )
                points.append(
                    ProcsPoint(
                        nf=name,
                        workers=workers,
                        burst_size=burst_size,
                        packets=len(events),
                        cores=cores,
                        replay_pps=replay_pps,
                        speedup_vs_1=speedup,
                        identical=identical,
                        counters=counters,
                        transport=transport,
                        transport_ns=transport_ns,
                    )
                )
    return points


@dataclass
class ProcsBudget:
    """The scaling/identity budget ``experiments procs`` gates on."""

    #: Fraction of the core-aware ideal (``min(workers, cores)`` x the
    #: 1-worker rate) a multi-worker point must reach. 0.5 means a
    #: 4-worker run on a >=4-core box must hit 2x the 1-worker rate.
    min_efficiency: float = 0.5
    #: When only one core is available, ideal scaling is 1x and the
    #: transport traffic is pure overhead; multi-worker points need
    #: only stay above this fraction of the 1-worker rate. Set with
    #: headroom: at 4 workers time-sharing one core, scheduler jitter
    #: alone moves the rate by tens of percent between runs.
    single_core_floor: float = 0.25


def procs_scaling_breaches(
    points: Sequence[ProcsPoint], budget: Optional[ProcsBudget] = None
) -> List[str]:
    """Budget violations across a procs sweep (empty = within budget)."""
    budget = budget if budget is not None else ProcsBudget()
    breaches: List[str] = []
    base: Dict[Tuple[str, str], ProcsPoint] = {
        (p.nf, p.transport): p for p in points if p.workers == 1
    }
    for p in points:
        where = f"{p.nf} @ {p.workers} workers / {p.transport}"
        if not p.identical:
            breaches.append(
                f"{where}: process TX stream or counters diverged from "
                f"the deterministic oracle"
            )
        if p.workers == 1:
            continue
        anchor = base.get((p.nf, p.transport))
        if anchor is None or anchor.replay_pps <= 0:
            continue
        ideal = min(p.workers, p.cores)
        if ideal > 1:
            required = budget.min_efficiency * ideal * anchor.replay_pps
            shape = (
                f"{budget.min_efficiency:.2f} x {ideal}x ideal "
                f"on {p.cores} core(s)"
            )
        else:
            required = budget.single_core_floor * anchor.replay_pps
            shape = f"single-core floor {budget.single_core_floor:.2f}"
        if p.replay_pps < required:
            breaches.append(
                f"{where}: {p.replay_pps:,.0f} pps < required "
                f"{required:,.0f} ({shape})"
            )
    return breaches
