"""Terminal line charts for the evaluation figures (no plotting deps).

Rendering the Fig. 12/14 series as small ASCII charts makes the
benchmark output directly comparable to the paper's figures without
leaving the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_MARKS = "o*x+#@"


def line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Plot named (x, y) series on one shared-axes ASCII chart."""
    points = [p for ps in series.values() for p in ps]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1
    # A little vertical margin so flat lines are visible mid-chart.
    pad = (y_max - y_min) * 0.1
    y_min -= pad
    y_max += pad

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for i, (name, ps) in enumerate(series.items()):
        mark = _MARKS[i % len(_MARKS)]
        ordered = sorted(ps)
        # Connect consecutive points with interpolated marks.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(2, width // max(1, len(ordered)))
            for s in range(steps + 1):
                t = s / steps
                r, c = cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in ordered:
            r, c = cell(x, y)
            grid[r][c] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.2f}"
    bottom_label = f"{y_min:.2f}"
    label_width = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_width
        + f"  {x_min:g}"
        + " " * max(1, width - len(f"{x_min:g}") - len(f"{x_max:g}"))
        + f"{x_max:g}"
        + (f"  ({x_label})" if x_label else "")
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)


def latency_chart(points: Sequence) -> str:
    """Fig. 12 as an ASCII chart (input: LatencyPoint sequence)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for p in points:
        series.setdefault(p.nf, []).append((p.background_flows / 1000, p.avg_us))
    return line_chart(
        series,
        title="Fig. 12 — probe-flow latency",
        y_label="latency, us",
        x_label="background flows, thousands",
    )


def throughput_chart(results: Dict[str, list]) -> str:
    """Fig. 14 as an ASCII chart (input: throughput_sweep output)."""
    series = {
        name: [(r.flow_count / 1000, r.max_mpps) for r in rs]
        for name, rs in results.items()
    }
    return line_chart(
        series,
        title="Fig. 14 — max throughput, <0.1% loss",
        y_label="Mpps",
        x_label="flows, thousands",
    )
