"""Experiment runners regenerating every figure of the paper's §6.

- :func:`repro.eval.experiments.latency_vs_occupancy` — Fig. 12,
- :func:`repro.eval.experiments.latency_ccdf` — Fig. 13,
- :func:`repro.eval.experiments.throughput_sweep` — Fig. 14,
- :func:`repro.eval.verification_stats.collect` — the §5 verification
  statistics (path/trace counts, proof outcomes),
- :mod:`repro.eval.reporting` — table rendering for all of the above.
"""

from repro.eval.experiments import (
    EvalSettings,
    LatencyPoint,
    default_nf_factories,
    latency_ccdf,
    latency_vs_occupancy,
    throughput_sweep,
)
from repro.eval.verification_stats import VerificationStats, collect

__all__ = [
    "EvalSettings",
    "LatencyPoint",
    "VerificationStats",
    "collect",
    "default_nf_factories",
    "latency_ccdf",
    "latency_vs_occupancy",
    "throughput_sweep",
]
