"""Table rendering for the experiment runners — the rows §6 plots."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.eval.experiments import (
    BurstPoint,
    CcdfSeries,
    CgnatPoint,
    FailoverPoint,
    FastpathPoint,
    LatencyPoint,
    ProcsPoint,
    ShardPoint,
)
from repro.eval.verification_stats import VerificationStats
from repro.net.testbed import ThroughputResult

if TYPE_CHECKING:
    from repro.chain.scenarios import ScenarioReport


def render_fig12(points: Sequence[LatencyPoint]) -> str:
    """Fig. 12: probe-flow latency vs. background flows, one row per NF."""
    by_nf: Dict[str, List[LatencyPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    occupancies = sorted({p.background_flows for p in points})
    header = "background flows (k): " + "  ".join(
        f"{occ // 1000:>6d}" for occ in occupancies
    )
    lines = ["Fig. 12 — average probe-flow latency (us)", header]
    for nf, nf_points in by_nf.items():
        cells = {p.background_flows: p for p in nf_points}
        row = "  ".join(
            f"{cells[occ].avg_us:6.2f}" if occ in cells else "     -"
            for occ in occupancies
        )
        lines.append(f"{nf:>20s}: {row}")
    return "\n".join(lines)


def render_fig13(
    series: Sequence[CcdfSeries],
    thresholds=(5.0, 5.5, 6.0, 6.5, 10.0, 100.0),
    background_flows: int | None = None,
) -> str:
    """Fig. 13: latency CCDF — P[latency > x] at selected thresholds."""
    occupancy = (
        f"{background_flows // 1000}k" if background_flows else "high"
    )
    lines = [
        f"Fig. 13 — latency CCDF at {occupancy} background flows",
        "threshold (us):      " + "  ".join(f"{t:>8.1f}" for t in thresholds),
    ]
    for s in series:
        row = "  ".join(f"{s.probability_above(t):8.2e}" for t in thresholds)
        lines.append(f"{s.nf:>20s}: {row}  ({s.samples} samples)")
    return "\n".join(lines)


def render_fig14(results: Dict[str, List[ThroughputResult]]) -> str:
    """Fig. 14: max throughput with <0.1% loss vs. flow count."""
    flow_counts = sorted(
        {r.flow_count for rs in results.values() for r in rs}
    )
    header = "flows (k):           " + "  ".join(
        f"{fc // 1000:>6d}" for fc in flow_counts
    )
    lines = ["Fig. 14 — maximum throughput, <0.1% loss (Mpps)", header]
    for nf, rs in results.items():
        cells = {r.flow_count: r for r in rs}
        row = "  ".join(
            f"{cells[fc].max_mpps:6.2f}" if fc in cells else "     -"
            for fc in flow_counts
        )
        lines.append(f"{nf:>20s}: {row}")
    return "\n".join(lines)


def render_burst_sweep(points: Sequence[BurstPoint]) -> str:
    """Burst-size sweep: per-packet core occupancy, one row per NF.

    Shows the DPDK amortization lever: per-packet cost falls with burst
    size while the NF ordering is preserved. A second block reports the
    burst-path counters each NF surfaced through ``op_counters()``.
    """
    by_nf: Dict[str, List[BurstPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    sizes = sorted({p.burst_size for p in points})
    header = "burst size:          " + "  ".join(f"{b:>7d}" for b in sizes)
    lines = ["Burst-size sweep — per-packet core occupancy (ns)", header]
    for nf, nf_points in by_nf.items():
        cells = {p.burst_size: p for p in nf_points}
        row = "  ".join(
            f"{cells[b].per_packet_busy_ns:7.0f}" if b in cells else "      -"
            for b in sizes
        )
        lines.append(f"{nf:>20s}: {row}")
    lines.append("")
    lines.append("implied service-limited throughput (Mpps)")
    for nf, nf_points in by_nf.items():
        cells = {p.burst_size: p for p in nf_points}
        row = "  ".join(
            f"{cells[b].implied_mpps:7.2f}" if b in cells else "      -"
            for b in sizes
        )
        lines.append(f"{nf:>20s}: {row}")
    lines.append("")
    largest = sizes[-1]
    for nf, nf_points in by_nf.items():
        point = next((p for p in nf_points if p.burst_size == largest), None)
        if point is None:
            continue
        counters = point.counters
        lines.append(
            f"{nf:>20s} @ burst {largest}: "
            f"bursts={counters.get('bursts', 0)}, "
            f"avg fill={point.avg_burst_fill:.1f}, "
            f"expiry scans amortized={counters.get('expiry_scans_amortized', 0)}"
        )
    return "\n".join(lines)


def render_shard_sweep(points: Sequence[ShardPoint]) -> str:
    """Shard sweep: aggregate service-limited throughput per worker count.

    One row per NF, one column per worker width; a second block shows
    the per-core cost (which stays near-flat — scaling comes from
    parallelism, not from each core getting faster) and the steering
    spread at the widest configuration.
    """
    by_nf: Dict[str, List[ShardPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    widths = sorted({p.workers for p in points})
    burst = points[0].burst_size if points else 0
    header = "workers:             " + "  ".join(f"{w:>7d}" for w in widths)
    lines = [
        f"Shard sweep — aggregate throughput (Mpps), burst size {burst}",
        header,
    ]
    for nf, nf_points in by_nf.items():
        cells = {p.workers: p for p in nf_points}
        row = "  ".join(
            f"{cells[w].aggregate_mpps:7.2f}" if w in cells else "      -"
            for w in widths
        )
        lines.append(f"{nf:>20s}: {row}")
    lines.append("")
    lines.append("per-core occupancy per packet (ns)")
    for nf, nf_points in by_nf.items():
        cells = {p.workers: p for p in nf_points}
        row = "  ".join(
            f"{cells[w].per_packet_busy_ns:7.0f}" if w in cells else "      -"
            for w in widths
        )
        lines.append(f"{nf:>20s}: {row}")
    lines.append("")
    widest = widths[-1] if widths else 0
    for nf, nf_points in by_nf.items():
        point = next((p for p in nf_points if p.workers == widest), None)
        if point is None:
            continue
        spread = "/".join(str(count) for count in point.steered)
        lines.append(f"{nf:>20s} @ {widest} workers: steered {spread}")
    return "\n".join(lines)


def render_fastpath_sweep(points: Sequence[FastpathPoint]) -> str:
    """Fastpath sweep: per-packet cost with the microflow cache on/off.

    One block per NF across flow-locality regimes, with the measured
    hit rate, the modeled service-cost improvement, the wall-clock
    speedup of the replay, and the byte-identity verdict of the
    differential check.
    """
    by_nf: Dict[str, List[FastpathPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    burst = points[0].burst_size if points else 0
    lines = [
        f"Fastpath sweep — microflow cache on vs off, burst size {burst}",
        "flows    hit-rate   busy off/on (ns)   mpps off/on    wall ×   identical",
    ]
    for nf, nf_points in by_nf.items():
        lines.append(f"{nf}:")
        for p in sorted(nf_points, key=lambda p: p.flow_count):
            lines.append(
                f"  {p.flow_count:>6d}   {p.hit_rate:7.1%}"
                f"   {p.per_packet_busy_ns_off:7.0f}/{p.per_packet_busy_ns_on:<7.0f}"
                f"   {p.implied_mpps_off:5.2f}/{p.implied_mpps_on:<5.2f}"
                f"   {p.wall_speedup:5.2f}"
                f"   {'yes' if p.identical else 'NO — DIVERGED'}"
            )
    raw_points = [p for p in points if p.supports_raw]
    if raw_points:
        lines.append("")
        lines.append(
            "Raw-frame replay — off vs replay cache vs compiled closures"
        )
        lines.append(
            "flows    raw wall off/cache/compiled (s)   "
            "comp/cache ×   comp/off ×   identical"
        )
        for nf, nf_points in by_nf.items():
            nf_raw = [p for p in nf_points if p.supports_raw]
            if not nf_raw:
                continue
            lines.append(f"{nf}:")
            for p in sorted(nf_raw, key=lambda p: p.flow_count):
                lines.append(
                    f"  {p.flow_count:>6d}"
                    f"   {p.raw_wall_seconds_off:7.3f}/"
                    f"{p.raw_wall_seconds_cache:.3f}/"
                    f"{p.raw_wall_seconds_compiled:<7.3f}"
                    f"   {p.compiled_speedup_over_cache:10.2f}"
                    f"   {p.compiled_speedup_over_off:8.2f}"
                    f"   {'yes' if p.raw_identical else 'NO — DIVERGED'}"
                )
    lines.append("")
    smallest = min((p.flow_count for p in points), default=0)
    for nf, nf_points in by_nf.items():
        hot = next((p for p in nf_points if p.flow_count == smallest), None)
        if hot is None:
            continue
        counters = hot.counters
        lines.append(
            f"{nf:>20s} @ {smallest} flows: "
            f"hits={counters.get('fastpath_hits', 0)}, "
            f"misses={counters.get('fastpath_misses', 0)}, "
            f"invalidations={counters.get('fastpath_invalidations', 0)}, "
            f"learns={counters.get('fastpath_learns', 0)}"
        )
        compiled = hot.compiled_counters
        if compiled:
            lines.append(
                f"{'':>20s}   compiled: "
                f"compiles={compiled.get('fastpath_compiles', 0)}, "
                f"rejected={compiled.get('fastpath_compile_rejected', 0)}, "
                f"hits={compiled.get('fastpath_compiled_hits', 0)}, "
                f"batches={compiled.get('fastpath_compiled_batches', 0)}"
            )
    for point in points:
        if point.divergence is not None:
            lines.append("")
            lines.append(f"{point.nf} @ {point.flow_count} flows DIVERGED:")
            lines.append(point.divergence.render())
        if point.raw_divergence is not None:
            lines.append("")
            lines.append(
                f"{point.nf} @ {point.flow_count} flows RAW/COMPILED DIVERGED:"
            )
            lines.append(point.raw_divergence.render())
    return "\n".join(lines)


def render_failover(points: Sequence[FailoverPoint]) -> str:
    """Failover sweep: loss vs. replication lag, one block per NF.

    Lag 0 is the zero-loss anchor (synchronous channel: every
    established flow must survive promotion); the flows-lost column
    growing with lag is the asynchrony cost the sweep quantifies.
    Availability covers the steady reply traffic spanning the kill.
    """
    by_nf: Dict[str, List[FailoverPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    first = points[0] if points else None
    scenario = (
        f"workers {first.workers}, {first.flow_count} flows, "
        f"kill worker {first.kill_worker}"
        if first
        else ""
    )
    lines = [
        f"Failover sweep — kill-and-promote at each replication lag ({scenario})",
        "   lag   flows kill/rec/lost   deltas   recovery   steady lost   "
        "probe lost   availability",
    ]
    for nf, nf_points in by_nf.items():
        lines.append(f"{nf}:")
        for p in sorted(nf_points, key=lambda p: p.lag):
            lines.append(
                f"  {p.lag:>4d}   "
                f"{p.flows_at_kill:>5d}/{p.flows_recovered:<4d}/{p.flows_lost:<4d}"
                f"   {p.deltas_lost:>6d}   {p.recovery_us:>6d}us"
                f"   {p.steady_lost:>6d}/{p.steady_offered:<6d}"
                f"   {p.probe_lost:>4d}/{p.probe_offered:<5d}"
                f"   {p.availability:8.3%}"
            )
    warmed = [p for p in points if p.fastpath_warmed]
    if warmed:
        lines.append("")
        for p in sorted(warmed, key=lambda p: (p.nf, p.lag)):
            lines.append(
                f"  {p.nf} @ lag {p.lag}: {p.fastpath_warmed} microflow "
                f"actions rebuilt from restored flows at promotion"
            )
    return "\n".join(lines)


def render_cgnat_sweep(points: Sequence[CgnatPoint]) -> str:
    """CGNAT scaling sweep: state footprint vs. flow count, per NF.

    The column that matters is state/checkpoint: the stateless det-nat
    stays at zero entries and a constant checkpoint while the stateful
    NATs grow linearly — the bijective mapping's whole value. Return-ok
    is the sampled differential: replies to translated ports reached
    the internal endpoints that originated them.
    """
    by_nf: Dict[str, List[CgnatPoint]] = {}
    for point in points:
        by_nf.setdefault(point.nf, []).append(point)
    lines = [
        "CGNAT scaling sweep — state footprint vs. flow count",
        "   flows    replay pps   state entries   checkpoint B   return-ok",
    ]
    for nf, nf_points in by_nf.items():
        lines.append(f"{nf}:")
        for p in sorted(nf_points, key=lambda p: p.flow_count):
            lines.append(
                f"  {p.flow_count:>6d}   {p.replay_pps:>10.0f}"
                f"   {p.state_entries:>13d}   {p.checkpoint_bytes:>12d}"
                f"   {'yes' if p.return_path_ok else 'NO — MISROUTED'}"
            )
    det = sorted(by_nf.get("det-nat", []), key=lambda p: p.flow_count)
    if len(det) > 1:
        lines.append("")
        low, high = det[0], det[-1]
        growth = high.flow_count / max(low.flow_count, 1)
        lines.append(
            f"det-nat at {growth:.0f}x flows: checkpoint "
            f"{low.checkpoint_bytes} -> {high.checkpoint_bytes} bytes, "
            f"state entries {low.state_entries} -> {high.state_entries} "
            f"(flat by construction: the mapping is arithmetic)"
        )
    return "\n".join(lines)


def render_procs_sweep(points: Sequence[ProcsPoint]) -> str:
    """Procs sweep: wall-clock replay rate per worker-process count.

    One row per (NF, transport), one column per width, with the
    speedup over the matching 1-worker point and the oracle
    byte-identity verdict. ``cores`` matters for reading the speedups:
    a 4-worker run on a 1-core box is expected near 1x, not 4x — the
    budget gate scales accordingly. The pipe/shm rows share a scenario,
    so the per-transport deltas read straight down a column.
    """
    by_row: Dict[Tuple[str, str], List[ProcsPoint]] = {}
    for point in points:
        by_row.setdefault((point.nf, point.transport), []).append(point)
    widths = sorted({p.workers for p in points})
    first = points[0] if points else None
    scenario = (
        f"{first.packets} packets, burst {first.burst_size}, "
        f"{first.cores} core(s)"
        if first
        else ""
    )
    header = "workers:                   " + "  ".join(
        f"{w:>9d}" for w in widths
    )
    lines = [
        f"Process-runtime sweep — warmed replay rate (pps) ({scenario})",
        header,
    ]
    for (nf, transport), row_points in by_row.items():
        cells = {p.workers: p for p in row_points}
        row = "  ".join(
            f"{cells[w].replay_pps:9,.0f}" if w in cells else "        -"
            for w in widths
        )
        lines.append(f"{nf:>20s}/{transport:<5s}: {row}")
    lines.append("")
    lines.append("speedup vs 1 worker / oracle byte-identity")
    for (nf, transport), row_points in by_row.items():
        cells = {p.workers: p for p in row_points}
        row = "  ".join(
            (
                f"{cells[w].speedup_vs_1:5.2f}x "
                + ("ok " if cells[w].identical else "DIV")
                if w in cells
                else "         -"
            )
            for w in widths
        )
        lines.append(f"{nf:>20s}/{transport:<5s}: {row}")
    return "\n".join(lines)


def render_chain_scenarios(reports: Sequence["ScenarioReport"]) -> str:
    """Chain scenario suite: measured loss/disruption vs. declared SLAs.

    One row per scenario. Every number is measured from traffic that
    actually exited the chain — the disruption column is the span of
    lossy rounds in traffic time, not a model — and the verdict column
    is the SLA judgement the CLI and CI gate on.
    """
    from repro.chain.scenarios import scenario_breaches

    lines = [
        "Chain scenario suite — measured disruption vs. declared SLAs",
        "        scenario   offered/delivered      avail (floor)"
        "   disruption (budget)   flows lost   probe lost   verdict",
    ]
    for r in reports:
        lines.append(
            f"  {r.scenario:>14s}   {r.offered:>7d}/{r.delivered:<9d}"
            f"   {r.availability:7.3%} ({r.sla.min_availability:.0%})"
            f"   {r.disruption_us:>7d}us ({r.sla.max_disruption_us}us)"
            f"   {r.flows_lost:>4d}/{r.flows_total:<5d}"
            f"   {r.probe_lost:>4d}/{r.probe_offered:<5d}"
            f"   {'ok' if not scenario_breaches(r) else 'SLA BREACH'}"
        )
    actions = [r for r in reports if r.action_wall_us]
    if actions:
        lines.append("")
        for r in actions:
            lines.append(
                f"  {r.scenario}: control-plane action took "
                f"{r.action_wall_us}us wall clock (reported, not gated)"
            )
    return "\n".join(lines)


def render_metrics(snapshot: Dict) -> str:
    """A merged metrics snapshot as a readable table.

    Counters and sum-gauges show their total across samples, max-gauges
    (watermarks) the worst sample; histograms show count and exact
    merged percentiles. The per-label breakdown stays available in the
    JSON/Prometheus renderings (:mod:`repro.obs.expo`).
    """
    from repro.obs.histogram import LatencyHistogram

    lines = [
        "Metrics snapshot (merged across samples)",
        f"{'metric':<34s} {'kind':<10s} {'samples':>7s}  value",
    ]
    for metric in snapshot.get("metrics", []):
        samples = metric.get("samples", [])
        if metric["kind"] == "histogram":
            merged = LatencyHistogram.merge_all(
                LatencyHistogram.from_dict(s["histogram"]) for s in samples
            )
            value = (
                f"count={merged.count} p50={merged.p50()} "
                f"p99={merged.p99()} p99.9={merged.p999()}"
            )
        else:
            values = [s["value"] for s in samples]
            if metric["kind"] == "gauge" and metric.get("merge") == "max":
                total = max(values, default=0)
            else:
                total = sum(values)
            value = f"{total:g}"
        lines.append(
            f"{metric['name']:<34s} {metric['kind']:<10s} {len(samples):>7d}  {value}"
        )
    return "\n".join(lines)


def render_verification(stats: VerificationStats) -> str:
    """The §5 verification statistics table."""
    lines = [
        "Verification statistics (paper: 108 paths, 431 traces, <1 min ESE)",
        f"  execution paths:     {stats.paths}",
        f"  traces (w/ prefixes): {stats.traces}",
        f"  proof obligations:   {stats.obligations}",
        f"  solver queries:      {stats.solver_queries}",
        f"  exploration time:    {stats.explore_seconds:.2f}s",
        f"  validation time:     {stats.validate_seconds:.2f}s",
        f"  verdict:             {'VERIFIED' if stats.verified else 'NOT VERIFIED'}",
    ]
    return "\n".join(lines)
