"""A Python reproduction of "A Formally Verified NAT" (SIGCOMM 2017).

The package mirrors the paper's architecture:

- :mod:`repro.packets` — the packet substrate (headers, checksums, pcap);
- :mod:`repro.libvig` — the verified data-structure library;
- :mod:`repro.nat` — VigNat, the evaluation baselines, and three further
  NFs verified by the same pipeline;
- :mod:`repro.spec` — the executable RFC 3022 specification (Fig. 6);
- :mod:`repro.verif` — the Vigor toolchain: exhaustive symbolic
  execution, symbolic models with contracts, and the lazy-proofs
  Validator (P1-P5, Fig. 7);
- :mod:`repro.net` — the simulated RFC 2544 testbed (Fig. 11);
- :mod:`repro.eval` — experiment runners for every evaluation figure;
- :mod:`repro.cli` — ``python -m repro`` / ``repro-nat``.

Start with ``examples/quickstart.py`` and ``examples/verify_nat.py``, or
read ``README.md`` / ``DESIGN.md`` / ``EXPERIMENTS.md``.
"""

__version__ = "1.0.0"
