"""The executable RFC 3022 specification — a transcription of Fig. 6.

``NatSpec.step`` is the paper's decision tree: given the abstract state
and an arriving packet it returns the new abstract state and the output
(a rewritten packet descriptor, or ``None`` for a drop). It is written
at the specification's level of abstraction: no hash tables, no chains,
no checksums — just the flow table as a map.

Port allocation is where implementations legitimately differ (any unused
port in range is RFC-conformant), so the spec is parameterized by a
*port oracle*. Differential tests pass an oracle that asks the
implementation which port it chose and the spec then *checks* the choice
was legal; conformance over everything else must be exact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from repro.nat.flow import FlowId
from repro.packets.headers import Packet
from repro.spec.state import AbstractFlowEntry, AbstractNatState

INTERNAL = "internal"
EXTERNAL = "external"


@dataclass(frozen=True)
class SpecPacket:
    """A packet at the specification's level of detail."""

    iface: str  # INTERNAL or EXTERNAL
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    protocol: int
    data: bytes = b""

    def flow_id(self) -> FlowId:
        return FlowId(
            src_ip=self.src_ip,
            src_port=self.src_port,
            dst_ip=self.dst_ip,
            dst_port=self.dst_port,
            protocol=self.protocol,
        )


@dataclass(frozen=True)
class SpecOutput:
    """The spec's verdict for one packet arrival."""

    state: AbstractNatState
    sent: Optional[SpecPacket]  # None means the packet was dropped
    case: str  # which branch of the decision tree fired (for reports)


class PortUnavailable(ValueError):
    """The port oracle proposed a port the spec deems illegal."""


PortOracle = Callable[[AbstractNatState, SpecPacket], int]


def lowest_free_port(start_port: int, max_port: int) -> PortOracle:
    """The default oracle: smallest unallocated port in range."""

    def oracle(state: AbstractNatState, _packet: SpecPacket) -> int:
        taken = state.allocated_ports()
        for port in range(start_port, max_port + 1):
            if port not in taken:
                return port
        raise PortUnavailable("no free port in range")

    return oracle


class NatSpec:
    """Fig. 6, executable. One instance per NAT configuration."""

    def __init__(
        self,
        external_ip: int,
        capacity: int,
        expiration_time: int,
        port_oracle: PortOracle | None = None,
        start_port: int = 1,
    ) -> None:
        self.external_ip = external_ip
        self.capacity = capacity
        self.expiration_time = expiration_time
        self.start_port = start_port
        self.max_port = min(0xFFFF, start_port + capacity - 1)
        self._oracle = (
            port_oracle
            if port_oracle is not None
            else lowest_free_port(start_port, self.max_port)
        )

    def initial_state(self) -> AbstractNatState:
        return AbstractNatState({}, self.capacity)

    # -- Fig. 6, line by line ----------------------------------------------
    def step(self, state: AbstractNatState, packet: SpecPacket, now: int) -> SpecOutput:
        """Packet P arrives at time t (Fig. 6 l.1)."""
        # l.2: expire_flows(t)
        state = state.expire(now, self.expiration_time)
        # l.3: update_flow(P, t)
        state, case_prefix = self._update_flow(state, packet, now)
        # l.4: forward(P)
        return self._forward(state, packet, case_prefix)

    def _update_flow(
        self, state: AbstractNatState, packet: SpecPacket, now: int
    ) -> Tuple[AbstractNatState, str]:
        flow_id = self._table_key(state, packet)
        if flow_id is not None:
            # ll.10-12: refresh the timestamp of the matching entry.
            entry = state.entry(flow_id)
            return (
                state.with_flow(flow_id, replace(entry, timestamp=now)),
                "existing",
            )
        if packet.iface == INTERNAL:
            if state.size() < self.capacity:
                # ll.14-17: insert F(P).
                port = self._oracle(state, packet)
                self._check_port_legal(state, port)
                return (
                    state.with_flow(
                        packet.flow_id(),
                        AbstractFlowEntry(external_port=port, timestamp=now),
                    ),
                    "created",
                )
            return state, "table-full"
        return state, "no-entry"

    def _forward(
        self, state: AbstractNatState, packet: SpecPacket, case_prefix: str
    ) -> SpecOutput:
        flow_id = self._table_key(state, packet)
        if flow_id is None:
            # l.39: drop.
            return SpecOutput(state=state, sent=None, case=f"{case_prefix}/drop")
        entry = state.entry(flow_id)
        if packet.iface == INTERNAL:
            # ll.21-28: rewrite source to (EXT_IP, ext_port), send external.
            sent = SpecPacket(
                iface=EXTERNAL,
                src_ip=self.external_ip,
                src_port=entry.external_port,
                dst_ip=packet.dst_ip,
                dst_port=packet.dst_port,
                protocol=packet.protocol,
                data=packet.data,
            )
        else:
            # ll.29-36: rewrite destination to the internal endpoint.
            sent = SpecPacket(
                iface=INTERNAL,
                src_ip=packet.src_ip,
                src_port=packet.src_port,
                dst_ip=flow_id.src_ip,
                dst_port=flow_id.src_port,
                protocol=packet.protocol,
                data=packet.data,
            )
        return SpecOutput(state=state, sent=sent, case=f"{case_prefix}/forward")

    # -- helpers -------------------------------------------------------------
    def _table_key(
        self, state: AbstractNatState, packet: SpecPacket
    ) -> FlowId | None:
        """The flow-table entry matching F(P), if any (Fig. 6's G = F(P)).

        Internal packets match by their own 5-tuple; external packets
        match the entry whose translated reply tuple equals the packet's
        5-tuple: src must be the remote endpoint and dst the NAT's
        external (ip, port).
        """
        if packet.iface == INTERNAL:
            fid = packet.flow_id()
            return fid if state.has(fid) else None
        if packet.dst_ip != self.external_ip:
            return None
        owner = state.flow_of_external_port(packet.dst_port)
        if owner is None:
            return None
        if (
            owner.dst_ip == packet.src_ip
            and owner.dst_port == packet.src_port
            and owner.protocol == packet.protocol
        ):
            return owner
        return None

    def _check_port_legal(self, state: AbstractNatState, port: int) -> None:
        if not self.start_port <= port <= self.max_port:
            raise PortUnavailable(f"port {port} outside [{self.start_port}, {self.max_port}]")
        if port in state.allocated_ports():
            raise PortUnavailable(f"port {port} already allocated")


def spec_packet_of(packet: Packet, internal_device: int) -> SpecPacket:
    """Lift a concrete packet to the spec's level of abstraction."""
    if packet.ipv4 is None or packet.l4 is None:
        raise ValueError("spec packets are TCP/UDP over IPv4")
    return SpecPacket(
        iface=INTERNAL if packet.device == internal_device else EXTERNAL,
        src_ip=packet.ipv4.src_ip,
        src_port=packet.l4.src_port,
        dst_ip=packet.ipv4.dst_ip,
        dst_port=packet.l4.dst_port,
        protocol=packet.ipv4.protocol,
        data=packet.payload,
    )
