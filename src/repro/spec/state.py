"""Abstract NAT state: the mathematical flow table of Fig. 6.

The specification never mentions hash tables or chains — its state is a
partial map from internal flow IDs to entries carrying a timestamp and
the allocated external port. Immutable, like all spec-level objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.nat.flow import FlowId


@dataclass(frozen=True)
class AbstractFlowEntry:
    """One flow-table entry G of Fig. 6."""

    external_port: int
    timestamp: int


@dataclass(frozen=True)
class AbstractNatState:
    """The spec's entire state: flow_table plus static configuration."""

    flows: Mapping[FlowId, AbstractFlowEntry] = field(default_factory=dict)
    capacity: int = 0

    def size(self) -> int:
        return len(self.flows)

    def has(self, flow_id: FlowId) -> bool:
        return flow_id in self.flows

    def entry(self, flow_id: FlowId) -> AbstractFlowEntry:
        return self.flows[flow_id]

    def with_flow(self, flow_id: FlowId, entry: AbstractFlowEntry) -> "AbstractNatState":
        updated = dict(self.flows)
        updated[flow_id] = entry
        return AbstractNatState(updated, self.capacity)

    def without_flows(self, flow_ids: Tuple[FlowId, ...]) -> "AbstractNatState":
        updated = {k: v for k, v in self.flows.items() if k not in flow_ids}
        return AbstractNatState(updated, self.capacity)

    def expire(self, now: int, expiration_time: int) -> "AbstractNatState":
        """Fig. 6 expire_flows: drop every G with timestamp + Texp <= t."""
        survivors = {
            fid: entry
            for fid, entry in self.flows.items()
            if entry.timestamp + expiration_time > now
        }
        return AbstractNatState(survivors, self.capacity)

    def allocated_ports(self) -> frozenset:
        """External ports currently bound to some flow."""
        return frozenset(entry.external_port for entry in self.flows.values())

    def flow_of_external_port(self, port: int) -> FlowId | None:
        """Internal flow ID owning ``port``, or None."""
        for fid, entry in self.flows.items():
            if entry.external_port == port:
                return fid
        return None
