"""The formal NAT specification (§4.1).

:mod:`repro.spec.state` defines the abstract NAT state (the mathematical
flow table of Fig. 6); :mod:`repro.spec.rfc3022` is the executable
decision-tree specification derived from RFC 3022, used both as a
differential-testing oracle against the implementations and — in its
symbolic form in :mod:`repro.verif.semantics` — as the property P1 the
Validator proves about VigNat.
"""

from repro.spec.rfc3022 import (
    NatSpec,
    SpecOutput,
    SpecPacket,
    spec_packet_of,
)
from repro.spec.state import AbstractFlowEntry, AbstractNatState

__all__ = [
    "AbstractFlowEntry",
    "AbstractNatState",
    "NatSpec",
    "SpecOutput",
    "SpecPacket",
    "spec_packet_of",
]
