"""Shared machinery for symbolic models: call recording with contracts."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Union

from repro.verif.context import ExplorationContext
from repro.verif.contracts import CONTRACTS, ContractContext
from repro.verif.expr import IntExpr
from repro.verif.symbols import SymInt

ExprLike = Union[int, IntExpr, SymInt]


def as_expr(value: ExprLike, width: int = 64) -> IntExpr:
    """Lift ints and SymInts to bare expressions for trace records."""
    if isinstance(value, SymInt):
        return value.expr
    if isinstance(value, IntExpr):
        return value
    return IntExpr.const(value, width)


class ModelBase:
    """Base class wiring model calls into the trace with their contracts."""

    def __init__(self, ctx: ExplorationContext, contract_ctx: ContractContext) -> None:
        self.ctx = ctx
        self.contract_ctx = contract_ctx

    @contextmanager
    def call(self, fn: str, args: Dict[str, ExprLike]) -> Iterator["_CallScope"]:
        """Record one traced call; the body performs branches/assumes."""
        scope = _CallScope(fn, {k: as_expr(v) for k, v in args.items()})
        pc_start = len(self.ctx.pc)
        yield scope
        pc_end = len(self.ctx.pc)
        from repro.verif.trace import CallRecord

        record = CallRecord(
            fn=fn,
            args=scope.args,
            rets={k: as_expr(v) for k, v in scope.rets.items()},
        )
        record.pc_start = pc_start
        record.selector_indices = tuple(
            i
            for i in range(pc_start, pc_end)
            if self.ctx.pc_tags[i] == "branch"
        )
        record.model_constraints = [
            self.ctx.pc[i]
            for i in range(pc_start, pc_end)
            if self.ctx.pc_tags[i] == "assume"
        ]
        contract = CONTRACTS.get(fn)
        if contract is not None and not contract.trusted:
            record.pre = contract.pre(record.args, record.rets, self.contract_ctx)
            record.post = contract.post(record.args, record.rets, self.contract_ctx)
        self.ctx.record_call(record)


class _CallScope:
    """Mutable bag the model body fills with its symbolic results."""

    def __init__(self, fn: str, args: Dict[str, IntExpr]) -> None:
        self.fn = fn
        self.args = args
        self.rets: Dict[str, ExprLike] = {}
