"""Symbolic models of the libVig structures VigNat uses (§5.1.4).

One :class:`NatModelState` is created per explored path. It havocs the
loop-carried abstract state under the loop invariant (the flow-table
occupancy is some value in ``[0, capacity]``, and every stored flow's
external port equals ``start_port + index``) and then simulates each
libVig call with fresh symbols plus the minimal constraints that make
the call's effect visible to the stateless code — exactly the modelling
discipline of Fig. 4(a).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.verif.context import ExplorationContext
from repro.verif.contracts import ContractContext
from repro.verif.expr import W8, W16, W32, W64
from repro.verif.models.base import ModelBase
from repro.verif.symbols import SymInt


class SymbolicPacket:
    """The havoced received packet: every header field is a symbol."""

    def __init__(self, ctx: ExplorationContext) -> None:
        self.ethertype = ctx.fresh("pkt_ethertype", W16)
        self.protocol = ctx.fresh("pkt_proto", W8)
        self.device = ctx.fresh("pkt_device", W8)
        self.src_ip = ctx.fresh("pkt_src_ip", W32)
        self.src_port = ctx.fresh("pkt_src_port", W16)
        self.dst_ip = ctx.fresh("pkt_dst_ip", W32)
        self.dst_port = ctx.fresh("pkt_dst_port", W16)


class NatModelState(ModelBase):
    """Per-path symbolic state shared by the flow-table models."""

    def __init__(self, ctx: ExplorationContext, capacity: int, start_port: int) -> None:
        super().__init__(ctx, ContractContext(capacity=capacity, start_port=start_port))
        self.capacity = capacity
        self.start_port = start_port
        # loop_invariant_produce: havoc the occupancy within bounds.
        with self.call("loop_invariant_produce", {}) as scope:
            self.size = ctx.fresh("table_size", W32)
            ctx.assume(self.size <= capacity)
            scope.rets["size"] = self.size
        #: Occupancy after this iteration's expiration pass.
        self.size_after_expiry: SymInt = self.size

    # -- nf_time ----------------------------------------------------------------
    def current_time(self) -> SymInt:
        with self.call("current_time", {}) as scope:
            now = self.ctx.fresh("now", W64)
            scope.rets["now"] = now
        return now

    # -- expirator ----------------------------------------------------------------
    def expire_items(self, min_time) -> SymInt:
        with self.call("expire_items", {"min_time": min_time, "size": self.size}) as scope:
            new_size = self.ctx.fresh("table_size_after_expiry", W32)
            self.ctx.assume(new_size <= self.size)
            scope.rets["new_size"] = new_size
        self.size_after_expiry = new_size
        return new_size

    # -- DoubleMap ------------------------------------------------------------------
    def _dmap_get(self, fn: str, flag_name: str, key: dict) -> Optional[SymInt]:
        ctx = self.ctx
        with self.call(fn, {**key, "size": self.size_after_expiry}) as scope:
            found = ctx.bool_sym(flag_name)
            scope.rets["found"] = found
            scope.rets["size"] = self.size_after_expiry
            if found == 1:
                index = ctx.fresh(f"{flag_name}_index", W32)
                ctx.assume(index <= self.capacity - 1)
                ctx.assume(self.size_after_expiry >= 1)
                scope.rets["index"] = index
                return index
            return None

    def dmap_get_by_first_key(self, key: dict) -> Optional[SymInt]:
        """Lookup by internal 5-tuple; None when absent (branches)."""
        return self._dmap_get("dmap_get_by_first_key", "int_found", key)

    def dmap_get_by_second_key(self, key: dict) -> Optional[SymInt]:
        """Lookup by external 5-tuple; None when absent (branches)."""
        return self._dmap_get("dmap_get_by_second_key", "ext_found", key)

    def dmap_put(self, index: SymInt, key: dict, ext_port=None, now=None) -> None:
        """Insert at ``index``. ``ext_port`` is NAT-specific; session
        tables (e.g. the firewall's) omit it."""
        args = {**key, "index": index, "size": self.size_after_expiry}
        if ext_port is not None:
            args["ext_port"] = ext_port
        if now is not None:
            args["time"] = now
        with self.call("dmap_put", args):
            pass

    def dmap_get_value(self, index: SymInt) -> Tuple[SymInt, SymInt, SymInt]:
        """Returns (internal_ip, internal_port, external_port) of an entry."""
        ctx = self.ctx
        with self.call("dmap_get_value", {"index": index}) as scope:
            int_ip = ctx.fresh("entry_int_ip", W32)
            int_port = ctx.fresh("entry_int_port", W16)
            ext_port = ctx.fresh("entry_ext_port", W16)
            # The loop invariant pins the allocation rule; without this
            # the semantic property P1 would be unprovable (and with a
            # wrong rule here, model validation P5 fails).
            ctx.assume(ext_port == index + self.start_port)
            scope.rets["int_ip"] = int_ip
            scope.rets["int_port"] = int_port
            scope.rets["ext_port"] = ext_port
        return int_ip, int_port, ext_port

    # -- DoubleChain --------------------------------------------------------------
    def dchain_allocate_new_index(self, now) -> Optional[SymInt]:
        """Allocate an index, or None when the table is full (branches)."""
        ctx = self.ctx
        with self.call(
            "dchain_allocate_new_index",
            {"time": now, "size": self.size_after_expiry},
        ) as scope:
            if self.size_after_expiry < self.capacity:
                index = ctx.fresh("fresh_index", W32)
                ctx.assume(index <= self.capacity - 1)
                scope.rets["success"] = 1
                scope.rets["index"] = index
                return index
            scope.rets["success"] = 0
            return None

    def dchain_rejuvenate_index(self, index: SymInt, now) -> None:
        with self.call(
            "dchain_rejuvenate_index", {"index": index, "time": now}
        ):
            pass

    # -- DPDK ------------------------------------------------------------------------
    def receive(self) -> Optional[SymbolicPacket]:
        """A fully adversarial packet, or None when the NIC is idle."""
        ctx = self.ctx
        with self.call("receive", {}) as scope:
            got = ctx.bool_sym("packet_received")
            scope.rets["received"] = got
            if got == 1:
                packet = SymbolicPacket(ctx)
                scope.rets["device"] = packet.device
                scope.rets["ethertype"] = packet.ethertype
                scope.rets["protocol"] = packet.protocol
                scope.rets["src_ip"] = packet.src_ip
                scope.rets["src_port"] = packet.src_port
                scope.rets["dst_ip"] = packet.dst_ip
                scope.rets["dst_port"] = packet.dst_port
                return packet
            return None

    def drop(self) -> None:
        with self.call("drop", {}):
            pass
