"""Symbolic models for the bridge's libVig usage (single-keyed table).

Same modelling discipline as the NAT's models: per-path havoced state
under the loop invariant (station count within capacity), fresh symbols
for lookup results with the minimal constraints, contracts attached for
the Validator's P4/P5 checks.
"""

from __future__ import annotations

from typing import Optional

from repro.verif.context import ExplorationContext
from repro.verif.contracts import (
    CONTRACTS,
    ContractContext,
    SymbolicContract,
)
from repro.verif.expr import W8, W32, W48, W64, conj, disj, eq, le, lt
from repro.verif.models.base import ModelBase
from repro.verif.symbols import SymInt


def _register_bridge_contracts() -> None:
    """Bridge-table contracts, added to the shared registry once."""
    if "bridge_table_get" in CONTRACTS:
        return

    def _c(value):
        from repro.verif.expr import IntExpr

        return IntExpr.const(value)

    def _get_post(args, rets, cc):
        if "device" not in rets:
            return []  # the not-found case constrains nothing
        return [
            disj(
                conj(
                    eq(rets["found"], _c(1)),
                    le(_c(0), rets["device"]),
                    le(rets["device"], _c(0xFF)),
                    le(_c(1), rets["size"]),
                ),
                eq(rets["found"], _c(0)),
            )
        ]

    CONTRACTS["bridge_table_get"] = SymbolicContract(
        name="bridge_table_get",
        description="MAC lookup: found implies a bound port and occupancy",
        post=_get_post,
    )
    CONTRACTS["bridge_table_learn_new"] = SymbolicContract(
        name="bridge_table_learn_new",
        description="Bind a new station; requires a vacant slot",
        pre=lambda args, rets, cc: [lt(args["size"], _c(cc.capacity))],
    )
    CONTRACTS["bridge_table_refresh"] = SymbolicContract(
        name="bridge_table_refresh",
        description="Refresh a known station's port binding and age",
    )


class SymbolicFrame:
    """The havoced received frame: port and both MAC addresses."""

    def __init__(self, ctx: ExplorationContext) -> None:
        self.device = ctx.fresh("frm_device", W8)
        self.src_mac = ctx.fresh("frm_src_mac", W48)
        self.dst_mac = ctx.fresh("frm_dst_mac", W48)


class BridgeModelState(ModelBase):
    """Per-path symbolic state of the bridge's station table."""

    def __init__(self, ctx: ExplorationContext, capacity: int) -> None:
        _register_bridge_contracts()
        super().__init__(ctx, ContractContext(capacity=capacity))
        self.capacity = capacity
        with self.call("loop_invariant_produce", {}) as scope:
            self.size = ctx.fresh("station_count", W32)
            ctx.assume(self.size <= capacity)
            scope.rets["size"] = self.size
        self.size_after_expiry: SymInt = self.size
        self._lookup_counter = 0

    def current_time(self) -> SymInt:
        with self.call("current_time", {}) as scope:
            now = self.ctx.fresh("now", W64)
            scope.rets["now"] = now
        return now

    def expire_items(self, min_time) -> SymInt:
        with self.call(
            "expire_items", {"min_time": min_time, "size": self.size}
        ) as scope:
            new_size = self.ctx.fresh("station_count_after_expiry", W32)
            self.ctx.assume(new_size <= self.size)
            scope.rets["new_size"] = new_size
        self.size_after_expiry = new_size
        return new_size

    def table_get(self, mac) -> Optional[SymInt]:
        """Port the MAC is bound to, or None (branches on a flag)."""
        ctx = self.ctx
        self._lookup_counter += 1
        tag = f"lookup{self._lookup_counter}"
        with self.call(
            "bridge_table_get", {"mac": mac, "size": self.size_after_expiry}
        ) as scope:
            found = ctx.bool_sym(f"{tag}_found")
            scope.rets["found"] = found
            scope.rets["size"] = self.size_after_expiry
            if found == 1:
                device = ctx.fresh(f"{tag}_device", W8)
                ctx.assume(self.size_after_expiry >= 1)
                scope.rets["device"] = device
                return device
            return None

    def table_learn_new(self, mac, device, now) -> None:
        with self.call(
            "bridge_table_learn_new",
            {
                "mac": mac,
                "device": device,
                "time": now,
                "size": self.size_after_expiry,
            },
        ):
            pass

    def table_refresh(self, mac, device, now) -> None:
        with self.call(
            "bridge_table_refresh",
            {"mac": mac, "device": device, "time": now},
        ):
            pass

    def receive(self) -> Optional[SymbolicFrame]:
        ctx = self.ctx
        with self.call("receive", {}) as scope:
            got = ctx.bool_sym("frame_received")
            scope.rets["received"] = got
            if got == 1:
                frame = SymbolicFrame(ctx)
                scope.rets["device"] = frame.device
                scope.rets["src_mac"] = frame.src_mac
                scope.rets["dst_mac"] = frame.dst_mac
                return frame
            return None

    def drop(self) -> None:
        with self.call("drop", {}):
            pass
