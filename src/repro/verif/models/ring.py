"""The three ring models of Fig. 4 and the discard-NF environment (§3).

- :class:`GoodRingModel` — model (a): the popped packet is constrained to
  satisfy the packet constraint (dst_port != 9). All proofs succeed.
- :class:`OverApproximateRingModel` — model (b): no constraint on the
  popped packet. Model validation (P5) succeeds but the semantic
  property (P1: no emitted packet targets port 9) becomes unprovable.
- :class:`UnderApproximateRingModel` — model (c): the popped packet's
  port is pinned to 0. The semantic property holds trivially, but model
  validation (P5) fails: the ring's contract allows ports other than 0.

The tests in ``tests/verif/test_discard_example.py`` reproduce the
paper's worked example with all three.
"""

from __future__ import annotations

from typing import Optional

from repro.verif.context import ExplorationContext
from repro.verif.contracts import ContractContext
from repro.verif.expr import W8, W16, W32
from repro.verif.models.base import ModelBase


class SymbolicRingPacket:
    """A packet as the discard NF sees it: a target port and a device."""

    def __init__(self, ctx: ExplorationContext, prefix: str) -> None:
        self.dst_port = ctx.fresh(f"{prefix}_dst_port", W16)
        self.device = ctx.fresh(f"{prefix}_device", W8)


class _RingModelBase(ModelBase):
    """Shared state: the havoced ring length under the loop invariant."""

    def __init__(self, ctx: ExplorationContext, capacity: int) -> None:
        super().__init__(ctx, ContractContext(capacity=capacity))
        self.capacity = capacity
        with self.call("loop_invariant_produce", {}) as scope:
            self.length = ctx.fresh("ring_length", W32)
            ctx.assume(self.length <= capacity)
            scope.rets["size"] = self.length

    def ring_full(self) -> bool:
        with self.call("ring_full", {"length": self.length}) as scope:
            full = self.ctx.branch((self.length == self.capacity).expr)
            scope.rets["result"] = 1 if full else 0
        return full

    def ring_empty(self) -> bool:
        with self.call("ring_empty", {"length": self.length}) as scope:
            empty = self.ctx.branch((self.length == 0).expr)
            scope.rets["result"] = 1 if empty else 0
        return empty

    def ring_push_back(self, packet: SymbolicRingPacket) -> None:
        with self.call(
            "ring_push_back",
            {"length": self.length, "dst_port": packet.dst_port},
        ):
            self.length = self.length + 1

    def receive(self) -> Optional[SymbolicRingPacket]:
        with self.call("receive", {}) as scope:
            got = self.ctx.bool_sym("packet_received")
            scope.rets["received"] = got
            if got == 1:
                packet = SymbolicRingPacket(self.ctx, "rx")
                scope.rets["dst_port"] = packet.dst_port
                scope.rets["device"] = packet.device
                return packet
            return None

    def can_send(self) -> bool:
        with self.call("can_send", {}) as scope:
            ready = self.ctx.bool_sym("link_ready")
            scope.rets["result"] = ready
            return bool(ready == 1)

    def _pop_packet(self) -> SymbolicRingPacket:
        raise NotImplementedError

    def ring_pop_front(self) -> SymbolicRingPacket:
        with self.call("ring_pop_front", {"length": self.length}) as scope:
            packet = self._pop_packet()
            self.length = self.length - 1
            scope.rets["dst_port"] = packet.dst_port
        return packet


class GoodRingModel(_RingModelBase):
    """Fig. 4 model (a): pop yields a packet satisfying the constraint."""

    def _pop_packet(self) -> SymbolicRingPacket:
        packet = SymbolicRingPacket(self.ctx, "popped")
        self.ctx.assume(packet.dst_port != 9)
        return packet


class OverApproximateRingModel(_RingModelBase):
    """Fig. 4 model (b): pop yields an unconstrained packet."""

    def _pop_packet(self) -> SymbolicRingPacket:
        return SymbolicRingPacket(self.ctx, "popped")


class UnderApproximateRingModel(_RingModelBase):
    """Fig. 4 model (c): pop always yields target port 0."""

    def _pop_packet(self) -> SymbolicRingPacket:
        packet = SymbolicRingPacket(self.ctx, "popped")
        self.ctx.assume(packet.dst_port == 0)
        return packet
