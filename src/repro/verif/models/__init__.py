"""Symbolic models of libVig and the DPDK layer (§5.1.4, Fig. 4).

A model is executable code that *simulates the effect* of calling into
the real library, over per-path symbolic state, while recording the call
into the trace. Models may be imperfect — the lazy-proofs Validator
checks a posteriori that each model's behaviour on the explored paths is
justified by the library's contract (P5).

:mod:`repro.verif.models.nat` holds the models VigNat's stateless code
uses; :mod:`repro.verif.models.ring` holds the three ring models of
Fig. 4 (the valid one, the too-abstract one, the too-specific one) that
drive the §3 worked example.
"""

from repro.verif.models.base import ModelBase
from repro.verif.models.nat import NatModelState
from repro.verif.models.ring import (
    GoodRingModel,
    OverApproximateRingModel,
    UnderApproximateRingModel,
)

__all__ = [
    "GoodRingModel",
    "ModelBase",
    "NatModelState",
    "OverApproximateRingModel",
    "UnderApproximateRingModel",
]
