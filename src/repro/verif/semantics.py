"""Semantic trace properties: the P1 obligations woven into each trace.

The paper's Validator takes each symbolic trace and weaves in the NAT
specification as pre/post-conditions, producing a verification task per
trace (§5.2.2, Fig. 10). This module builds those obligations:

- :class:`NatSemantics` — the RFC 3022 decision tree of Fig. 6 expressed
  over the trace's symbols: forwarded packets carry exactly the rewritten
  headers the spec mandates for their case, drops happen exactly when the
  spec mandates a drop, and the state updates (create/refresh/expire) use
  the right timestamps and ports. The external-packet security property
  ("unsolicited external traffic never creates state") is one of the
  structural obligations.
- :class:`DiscardSemantics` — the §3 example's property: no emitted
  packet targets port 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.nat.config import NatConfig
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP
from repro.verif.expr import (
    BoolExpr,
    FALSE,
    IntExpr,
    TRUE,
    conj,
    disj,
    eq,
    le,
    lt,
    ne,
    negate,
)
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.trace import CallRecord, PathTrace


@dataclass
class Obligation:
    """One provable fact a trace must satisfy (part of P1)."""

    name: str
    formula: BoolExpr
    #: False when the obligation failed structurally (e.g. two packets
    #: emitted where the spec allows at most one) — no proof attempted.
    structural_ok: bool = True
    detail: str = ""


def _c(value: int) -> IntExpr:
    return IntExpr.const(value)


class DiscardSemantics:
    """The discard NF's semantic property: never emit to port 9."""

    name = "discard protocol (RFC 863)"

    def obligations(self, trace: PathTrace) -> List[Obligation]:
        found = []
        for i, send in enumerate(trace.sends):
            found.append(
                Obligation(
                    name=f"send[{i}].dst_port != 9",
                    formula=ne(send.dst_port, _c(9)),
                )
            )
        return found


class NatSemantics:
    """The RFC 3022 decision tree (Fig. 6) as per-trace obligations."""

    name = "RFC 3022 NAT semantics"

    def __init__(self, config: NatConfig | None = None) -> None:
        self.config = config if config is not None else NatConfig()

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _calls_by_fn(trace: PathTrace) -> Dict[str, CallRecord]:
        seen: Dict[str, CallRecord] = {}
        for call in trace.calls:
            seen.setdefault(call.fn, call)
        return seen

    @staticmethod
    def _entailed(solver: Solver, trace: PathTrace, goal: BoolExpr) -> bool:
        try:
            return solver.entails(trace.pc, goal)
        except SolverUnknown:
            return False

    # -- obligation construction -------------------------------------------------
    def obligations(self, trace: PathTrace) -> List[Obligation]:
        cfg = self.config
        solver = Solver(trace.widths)
        calls = self._calls_by_fn(trace)
        obligations: List[Obligation] = []

        recv = calls.get("receive")
        time_call = calls.get("current_time")
        expire = calls.get("expire_items")

        # Fig. 6 l.2: the expiration threshold is exactly t - Texp
        # (inclusive), clamped at zero.
        if expire is not None and time_call is not None:
            now = time_call.rets["now"]
            texp = cfg.expiration_time
            min_time = expire.args["min_time"]
            threshold_ok = disj(
                conj(
                    le(_c(texp), now),
                    eq(min_time, now.sub(_c(texp)).add(_c(1))),
                ),
                conj(lt(now, _c(texp)), eq(min_time, _c(0))),
            )
            obligations.append(Obligation("expiry-threshold", threshold_ok))

        if recv is None:
            obligations.append(
                Obligation(
                    "no-receive-no-send",
                    TRUE,
                    structural_ok=not trace.sends,
                    detail="a trace without receive() must not emit",
                )
            )
            return obligations

        received = recv.rets["received"]
        if self._entailed(solver, trace, eq(received, _c(0))):
            obligations.append(
                Obligation(
                    "silent-when-idle",
                    TRUE,
                    structural_ok=not trace.sends,
                    detail="no packet was received on this path",
                )
            )
            return obligations

        device = recv.rets["device"]
        ethertype = recv.rets["ethertype"]
        protocol = recv.rets["protocol"]
        pkt_src_ip = recv.rets["src_ip"]
        pkt_src_port = recv.rets["src_port"]
        pkt_dst_ip = recv.rets["dst_ip"]
        pkt_dst_port = recv.rets["dst_port"]

        is_flow = conj(
            eq(ethertype, _c(ETHERTYPE_IPV4)),
            disj(eq(protocol, _c(PROTO_TCP)), eq(protocol, _c(PROTO_UDP))),
        )
        internal = eq(device, _c(cfg.internal_device))
        external = eq(device, _c(cfg.external_device))

        get_int = calls.get("dmap_get_by_first_key")
        get_ext = calls.get("dmap_get_by_second_key")
        alloc = calls.get("dchain_allocate_new_index")
        put = calls.get("dmap_put")
        rejuvenate = calls.get("dchain_rejuvenate_index")
        get_value = calls.get("dmap_get_value")
        now = time_call.rets["now"] if time_call is not None else None

        # -- state-update obligations (Fig. 6 ll.10-17) ------------------------
        if rejuvenate is not None and now is not None:
            obligations.append(
                Obligation(
                    "refresh-uses-arrival-time",
                    eq(rejuvenate.args["time"], now),
                )
            )
            found_index = None
            if get_int is not None and "index" in get_int.rets:
                found_index = get_int.rets["index"]
            elif get_ext is not None and "index" in get_ext.rets:
                found_index = get_ext.rets["index"]
            if found_index is not None:
                obligations.append(
                    Obligation(
                        "refresh-targets-matched-flow",
                        eq(rejuvenate.args["index"], found_index),
                    )
                )

        if rejuvenate is None:
            # Fig. 6 ll.10-12: a matched flow's timestamp must be
            # refreshed. Without a rejuvenate call, the path must be
            # provably a no-match path.
            for get in (get_int, get_ext):
                if get is not None:
                    obligations.append(
                        Obligation(
                            "match-implies-refresh",
                            eq(get.rets["found"], _c(0)),
                        )
                    )

        if put is not None:
            # Creation is only legal for internal arrivals (the NAT's
            # security property: unsolicited external traffic never
            # creates state).
            obligations.append(Obligation("create-only-internal", internal))
            if now is not None and "time" in put.args:
                obligations.append(
                    Obligation("create-uses-arrival-time", eq(put.args["time"], now))
                )
            if "ext_port" in put.args:
                obligations.append(
                    Obligation(
                        "create-respects-port-rule",
                        eq(
                            put.args["ext_port"],
                            put.args["index"].add(_c(cfg.start_port)),
                        ),
                    )
                )
            if alloc is not None and "index" in alloc.rets:
                obligations.append(
                    Obligation(
                        "create-uses-allocated-index",
                        eq(put.args["index"], alloc.rets["index"]),
                    )
                )
            obligations.append(
                Obligation(
                    "create-only-when-room",
                    lt(put.args["size"], _c(cfg.max_flows)),
                )
            )
        elif self._entailed(solver, trace, external):
            obligations.append(
                Obligation(
                    "no-state-for-external",
                    TRUE,
                    structural_ok=alloc is None,
                    detail="external packets must not allocate flow state",
                )
            )

        # -- forwarding obligations (Fig. 6 ll.20-39) -----------------------------
        if len(trace.sends) > 1:
            obligations.append(
                Obligation(
                    "at-most-one-send",
                    TRUE,
                    structural_ok=False,
                    detail=f"{len(trace.sends)} packets emitted for one arrival",
                )
            )
            return obligations

        if not trace.sends:
            drop_cases: List[BoolExpr] = [
                negate(is_flow),
                conj(negate(internal), negate(external)),
            ]
            if get_ext is not None:
                drop_cases.append(conj(external, eq(get_ext.rets["found"], _c(0))))
            if get_int is not None and alloc is not None:
                drop_cases.append(
                    conj(
                        internal,
                        eq(get_int.rets["found"], _c(0)),
                        eq(alloc.rets["success"], _c(0)),
                    )
                )
            obligations.append(Obligation("drop-justified", disj(*drop_cases)))
            return obligations

        send = trace.sends[0]
        packet_fields = {
            "src_ip": pkt_src_ip,
            "src_port": pkt_src_port,
            "dst_ip": pkt_dst_ip,
            "dst_port": pkt_dst_port,
            "protocol": protocol,
        }
        forward_cases = self._forward_cases(
            send=send,
            packet=packet_fields,
            internal=internal,
            external=external,
            is_flow=is_flow,
            get_int=get_int,
            get_ext=get_ext,
            alloc=alloc,
            get_value=get_value,
        )
        obligations.append(
            Obligation(
                "forward-justified",
                disj(*forward_cases) if forward_cases else FALSE,
            )
        )
        return obligations

    # -- the per-NF part: which (case, output-fields) pairs justify a send --
    def _forward_cases(
        self,
        send,
        packet,
        internal,
        external,
        is_flow,
        get_int,
        get_ext,
        alloc,
        get_value,
    ) -> List[BoolExpr]:
        """Fig. 6 ll.20-37: NAT header rewriting per direction."""
        cfg = self.config
        forward_cases: List[BoolExpr] = []
        if get_int is not None:
            membership = eq(get_int.rets["found"], _c(1))
            if alloc is not None:
                membership = disj(
                    membership,
                    conj(
                        eq(get_int.rets["found"], _c(0)),
                        eq(alloc.rets["success"], _c(1)),
                    ),
                )
            out_fields = conj(
                eq(send.device, _c(cfg.external_device)),
                eq(send.src_ip, _c(cfg.external_ip)),
                eq(send.dst_ip, packet["dst_ip"]),
                eq(send.dst_port, packet["dst_port"]),
                eq(send.protocol, packet["protocol"]),
            )
            if get_value is not None:
                out_fields = conj(
                    out_fields, eq(send.src_port, get_value.rets["ext_port"])
                )
            forward_cases.append(conj(internal, is_flow, membership, out_fields))
        if get_ext is not None and get_value is not None:
            in_fields = conj(
                eq(send.device, _c(cfg.internal_device)),
                eq(send.src_ip, packet["src_ip"]),
                eq(send.src_port, packet["src_port"]),
                eq(send.dst_ip, get_value.rets["int_ip"]),
                eq(send.dst_port, get_value.rets["int_port"]),
                eq(send.protocol, packet["protocol"]),
            )
            forward_cases.append(
                conj(
                    external,
                    is_flow,
                    eq(get_ext.rets["found"], _c(1)),
                    in_fields,
                )
            )
        return forward_cases


class FirewallSemantics(NatSemantics):
    """The connection-tracking firewall's semantic specification.

    Same flow-table discipline as the NAT (create only for internal
    arrivals when there is room, refresh on match, expire by idle time),
    but forwarding never rewrites a header: every field of the emitted
    packet equals the received one, only the device changes.
    """

    name = "stateful firewall semantics (allow outbound, track sessions)"

    def _forward_cases(
        self,
        send,
        packet,
        internal,
        external,
        is_flow,
        get_int,
        get_ext,
        alloc,
        get_value,
    ) -> List[BoolExpr]:
        cfg = self.config
        preserved = conj(
            eq(send.src_ip, packet["src_ip"]),
            eq(send.src_port, packet["src_port"]),
            eq(send.dst_ip, packet["dst_ip"]),
            eq(send.dst_port, packet["dst_port"]),
            eq(send.protocol, packet["protocol"]),
        )
        forward_cases: List[BoolExpr] = []
        if get_int is not None:
            membership = eq(get_int.rets["found"], _c(1))
            if alloc is not None:
                membership = disj(
                    membership,
                    conj(
                        eq(get_int.rets["found"], _c(0)),
                        eq(alloc.rets["success"], _c(1)),
                    ),
                )
            forward_cases.append(
                conj(
                    internal,
                    is_flow,
                    membership,
                    preserved,
                    eq(send.device, _c(cfg.external_device)),
                )
            )
        if get_ext is not None:
            forward_cases.append(
                conj(
                    external,
                    is_flow,
                    eq(get_ext.rets["found"], _c(1)),
                    preserved,
                    eq(send.device, _c(cfg.internal_device)),
                )
            )
        return forward_cases
