"""Symbolic environment, models and semantics for the rate limiter."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nat.limiter import LimiterConfig, limiter_loop_iteration
from repro.packets.headers import ETHERTYPE_IPV4
from repro.verif.context import ExplorationContext
from repro.verif.contracts import CONTRACTS, ContractContext, SymbolicContract
from repro.verif.expr import (
    BoolExpr,
    IntExpr,
    TRUE,
    W8,
    W16,
    W32,
    W64,
    conj,
    disj,
    eq,
    le,
    lt,
    negate,
)
from repro.verif.models.base import ModelBase, as_expr
from repro.verif.semantics import Obligation
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.symbols import SymInt
from repro.verif.trace import PathTrace, SendRecord


def _c(value: int) -> IntExpr:
    return IntExpr.const(value)


def _register_limiter_contracts() -> None:
    if "budget_get" in CONTRACTS:
        return
    CONTRACTS["budget_get"] = SymbolicContract(
        name="budget_get",
        description="Per-source budget lookup",
        post=lambda args, rets, cc: (
            [
                disj(
                    conj(
                        eq(rets["found"], _c(1)),
                        le(_c(0), rets["index"]),
                        lt(rets["index"], _c(cc.capacity)),
                        le(_c(1), rets["size"]),
                    ),
                    eq(rets["found"], _c(0)),
                )
            ]
            if "index" in rets
            else []
        ),
    )
    def _create_post(args, rets, cc):
        from repro.verif.expr import implies

        clauses = [
            implies(lt(args["size"], _c(cc.capacity)), eq(rets["success"], _c(1))),
            implies(le(_c(cc.capacity), args["size"]), eq(rets["success"], _c(0))),
        ]
        if "index" in rets:
            clauses.append(
                implies(
                    eq(rets["success"], _c(1)),
                    conj(
                        le(_c(0), rets["index"]),
                        lt(rets["index"], _c(cc.capacity)),
                    ),
                )
            )
        return clauses

    CONTRACTS["budget_create"] = SymbolicContract(
        name="budget_create",
        description="Open a budget window with count=1; fails iff full",
        post=_create_post,
    )
    CONTRACTS["counter_read"] = SymbolicContract(
        name="counter_read",
        description="Read a budget counter; counters fit u32",
        pre=lambda args, rets, cc: [
            le(_c(0), args["index"]),
            lt(args["index"], _c(cc.capacity)),
        ],
        post=lambda args, rets, cc: [
            le(_c(1), rets["count"]),
            le(rets["count"], _c(0xFFFFFFFF)),
        ],
    )
    CONTRACTS["counter_bump"] = SymbolicContract(
        name="counter_bump",
        description="Store an updated budget counter",
        pre=lambda args, rets, cc: [
            le(_c(0), args["index"]),
            lt(args["index"], _c(cc.capacity)),
            le(args["value"], _c(0xFFFFFFFF)),
        ],
    )


class SymbolicIpPacket:
    """The havoced frame the limiter sees: ethertype, device, source IP."""

    def __init__(self, ctx: ExplorationContext) -> None:
        self.ethertype = ctx.fresh("pkt_ethertype", W16)
        self.device = ctx.fresh("pkt_device", W8)
        self.src_ip = ctx.fresh("pkt_src_ip", W32)


class LimiterModelState(ModelBase):
    """Per-path symbolic state of the limiter's budget table."""

    def __init__(self, ctx: ExplorationContext, capacity: int) -> None:
        _register_limiter_contracts()
        super().__init__(ctx, ContractContext(capacity=capacity))
        self.capacity = capacity
        with self.call("loop_invariant_produce", {}) as scope:
            self.size = ctx.fresh("budget_count", W32)
            ctx.assume(self.size <= capacity)
            scope.rets["size"] = self.size
        self.size_after_expiry: SymInt = self.size

    def current_time(self) -> SymInt:
        with self.call("current_time", {}) as scope:
            now = self.ctx.fresh("now", W64)
            scope.rets["now"] = now
        return now

    def expire_items(self, min_time) -> None:
        with self.call(
            "expire_items", {"min_time": min_time, "size": self.size}
        ) as scope:
            new_size = self.ctx.fresh("budget_count_after_expiry", W32)
            self.ctx.assume(new_size <= self.size)
            scope.rets["new_size"] = new_size
        self.size_after_expiry = new_size

    def budget_get(self, src_ip) -> Optional[SymInt]:
        ctx = self.ctx
        with self.call(
            "budget_get", {"src_ip": src_ip, "size": self.size_after_expiry}
        ) as scope:
            found = ctx.bool_sym("budget_found")
            scope.rets["found"] = found
            scope.rets["size"] = self.size_after_expiry
            if found == 1:
                index = ctx.fresh("budget_index", W32)
                ctx.assume(index <= self.capacity - 1)
                ctx.assume(self.size_after_expiry >= 1)
                scope.rets["index"] = index
                return index
            return None

    def budget_create(self, src_ip, now) -> Optional[SymInt]:
        ctx = self.ctx
        with self.call(
            "budget_create",
            {"src_ip": src_ip, "time": now, "size": self.size_after_expiry},
        ) as scope:
            if self.size_after_expiry < self.capacity:
                index = ctx.fresh("fresh_budget_index", W32)
                ctx.assume(index <= self.capacity - 1)
                scope.rets["success"] = 1
                scope.rets["index"] = index
                return index
            scope.rets["success"] = 0
            return None

    def counter_read(self, index) -> SymInt:
        ctx = self.ctx
        with self.call("counter_read", {"index": index}) as scope:
            count = ctx.fresh("budget_used", W32)
            ctx.assume(count >= 1)  # a tracked source has spent >= 1
            scope.rets["count"] = count
        return count

    def counter_bump(self, index, value) -> None:
        with self.call("counter_bump", {"index": index, "value": value}):
            pass

    def receive(self) -> Optional[SymbolicIpPacket]:
        ctx = self.ctx
        with self.call("receive", {}) as scope:
            got = ctx.bool_sym("packet_received")
            scope.rets["received"] = got
            if got == 1:
                packet = SymbolicIpPacket(ctx)
                scope.rets["device"] = packet.device
                scope.rets["ethertype"] = packet.ethertype
                scope.rets["src_ip"] = packet.src_ip
                return packet
            return None

    def drop(self) -> None:
        with self.call("drop", {}):
            pass


class SymbolicLimiterEnv:
    """The LimiterEnv over symbolic models."""

    def __init__(self, ctx: ExplorationContext, config: LimiterConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.models = LimiterModelState(ctx, capacity=config.capacity)

    def current_time(self):
        return self.models.current_time()

    def expire_budgets(self, min_time) -> None:
        self.models.expire_items(min_time)

    def receive(self):
        return self.models.receive()

    def budget_get(self, src_ip):
        return self.models.budget_get(src_ip)

    def budget_create(self, src_ip, now):
        return self.models.budget_create(src_ip, now)

    def counter_read(self, index):
        return self.models.counter_read(index)

    def counter_bump(self, index, value) -> None:
        self.models.counter_bump(index, value)

    def forward(self, packet, device) -> None:
        self.ctx.record_send(
            SendRecord(
                device=as_expr(device),
                src_ip=as_expr(packet.src_ip),
                src_port=as_expr(0),
                dst_ip=as_expr(0),
                dst_port=as_expr(0),
                protocol=as_expr(0),
            )
        )

    def drop(self, packet) -> None:
        self.models.drop()


def limiter_symbolic_body(
    config: LimiterConfig | None = None,
) -> Callable[[ExplorationContext], None]:
    """The limiter's stateless logic bound to symbolic models."""
    cfg = config if config is not None else LimiterConfig()

    def body(ctx: ExplorationContext) -> None:
        env = SymbolicLimiterEnv(ctx, cfg)
        limiter_loop_iteration(env, cfg)

    return body


class LimiterSemantics:
    """Fixed-window per-source budgeting as per-trace obligations."""

    name = "per-source fixed-window rate limiting"

    def __init__(self, config: LimiterConfig | None = None) -> None:
        self.config = config if config is not None else LimiterConfig()

    @staticmethod
    def _entailed(solver: Solver, trace: PathTrace, goal: BoolExpr) -> bool:
        try:
            return solver.entails(trace.pc, goal)
        except SolverUnknown:
            return False

    def obligations(self, trace: PathTrace) -> List[Obligation]:
        cfg = self.config
        solver = Solver(trace.widths)
        by_fn: dict = {}
        for call in trace.calls:
            by_fn.setdefault(call.fn, call)
        obligations: List[Obligation] = []

        time_call = by_fn.get("current_time")
        expire = by_fn.get("expire_items")
        if expire is not None and time_call is not None:
            now = time_call.rets["now"]
            window = cfg.window
            obligations.append(
                Obligation(
                    "window-threshold",
                    disj(
                        conj(
                            le(_c(window), now),
                            eq(expire.args["min_time"], now.sub(_c(window)).add(_c(1))),
                        ),
                        conj(lt(now, _c(window)), eq(expire.args["min_time"], _c(0))),
                    ),
                )
            )

        # Fixed-window semantics: the window is never extended, so the
        # limiter must never rejuvenate a budget entry.
        obligations.append(
            Obligation(
                "fixed-window-no-rejuvenation",
                TRUE,
                structural_ok=not any(
                    "rejuvenate" in call.fn for call in trace.calls
                ),
                detail="rejuvenation would turn the fixed window into an idle window",
            )
        )

        recv = by_fn.get("receive")
        if recv is None or self._entailed(
            solver, trace, eq(recv.rets["received"], _c(0))
        ):
            obligations.append(
                Obligation("silent-when-idle", TRUE, structural_ok=not trace.sends)
            )
            return obligations

        device = recv.rets["device"]
        ethertype = recv.rets["ethertype"]
        src_ip = recv.rets["src_ip"]
        is_ipv4 = eq(ethertype, _c(ETHERTYPE_IPV4))
        ingress = eq(device, _c(cfg.ingress_device))
        egress = eq(device, _c(cfg.egress_device))

        lookup = by_fn.get("budget_get")
        create = by_fn.get("budget_create")
        read = by_fn.get("counter_read")
        bump = by_fn.get("counter_bump")
        now = time_call.rets["now"] if time_call is not None else None

        if create is not None:
            obligations.append(
                Obligation("create-binds-source", eq(create.args["src_ip"], src_ip))
            )
            if "success" in create.rets:
                from repro.verif.expr import implies

                obligations.append(
                    Obligation(
                        "create-only-with-room",
                        implies(
                            eq(create.rets["success"], _c(1)),
                            lt(create.args["size"], _c(cfg.capacity)),
                        ),
                    )
                )
            if now is not None:
                obligations.append(
                    Obligation("window-opens-at-arrival", eq(create.args["time"], now))
                )
            if lookup is not None:
                obligations.append(
                    Obligation("create-only-unknown", eq(lookup.rets["found"], _c(0)))
                )
        if bump is not None:
            assert read is not None
            obligations.append(
                Obligation(
                    "bump-increments-by-one",
                    eq(bump.args["value"], read.rets["count"].add(_c(1))),
                )
            )
            obligations.append(
                Obligation(
                    "bump-only-under-budget",
                    lt(read.rets["count"], _c(cfg.max_packets)),
                )
            )
            obligations.append(
                Obligation(
                    "bump-targets-looked-up-entry",
                    eq(bump.args["index"], lookup.rets["index"])
                    if lookup is not None and "index" in lookup.rets
                    else TRUE,
                )
            )

        if len(trace.sends) > 1:
            obligations.append(
                Obligation(
                    "at-most-one-send",
                    TRUE,
                    structural_ok=False,
                    detail=f"{len(trace.sends)} sends",
                )
            )
            return obligations
        if trace.sends:
            send = trace.sends[0]
            within_budget_cases: List[BoolExpr] = []
            if create is not None and "success" in create.rets:
                within_budget_cases.append(eq(create.rets["success"], _c(1)))
            if read is not None:
                within_budget_cases.append(
                    lt(read.rets["count"], _c(cfg.max_packets))
                )
            ingress_ok = conj(
                ingress,
                is_ipv4,
                eq(send.device, _c(cfg.egress_device)),
                eq(send.src_ip, src_ip),
                disj(*within_budget_cases) if within_budget_cases else TRUE,
            )
            egress_ok = conj(
                egress,
                is_ipv4,
                eq(send.device, _c(cfg.ingress_device)),
                eq(send.src_ip, src_ip),
            )
            obligations.append(
                Obligation("forward-justified", disj(ingress_ok, egress_ok))
            )
        else:
            drop_cases: List[BoolExpr] = [
                negate(is_ipv4),
                conj(negate(ingress), negate(egress)),
            ]
            if read is not None:
                drop_cases.append(
                    conj(ingress, le(_c(cfg.max_packets), read.rets["count"]))
                )
            if create is not None and "success" in create.rets:
                drop_cases.append(conj(ingress, eq(create.rets["success"], _c(0))))
            obligations.append(Obligation("drop-justified", disj(*drop_cases)))
        return obligations
