"""Symbolic environment for the verified firewall.

Reuses the flow-table models of :mod:`repro.verif.models.nat` (same
libVig structures, same contracts) and binds them to the firewall's
stateless logic — the amortization the paper's §9 promises from a shared
verified library.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.nat.config import NatConfig
from repro.nat.firewall import firewall_loop_iteration
from repro.verif.context import ExplorationContext
from repro.verif.models.base import as_expr
from repro.verif.models.nat import NatModelState, SymbolicPacket
from repro.verif.symbols import SymInt
from repro.verif.trace import SendRecord


class SymbolicFirewallEnv:
    """The FirewallEnv over symbolic models instead of libVig."""

    def __init__(self, ctx: ExplorationContext, config: NatConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.models = NatModelState(
            ctx, capacity=config.max_flows, start_port=config.start_port
        )

    def current_time(self) -> SymInt:
        return self.models.current_time()

    def expire_sessions(self, min_time) -> None:
        self.models.expire_items(min_time)

    def receive(self) -> Optional[SymbolicPacket]:
        return self.models.receive()

    @staticmethod
    def _key_of(packet: SymbolicPacket) -> dict:
        return {
            "src_ip": packet.src_ip,
            "src_port": packet.src_port,
            "dst_ip": packet.dst_ip,
            "dst_port": packet.dst_port,
            "protocol": packet.protocol,
        }

    def session_get_internal(self, packet: SymbolicPacket) -> Optional[SymInt]:
        return self.models.dmap_get_by_first_key(self._key_of(packet))

    def session_get_external(self, packet: SymbolicPacket) -> Optional[SymInt]:
        return self.models.dmap_get_by_second_key(self._key_of(packet))

    def session_create(self, packet: SymbolicPacket, now) -> Optional[SymInt]:
        index = self.models.dchain_allocate_new_index(now)
        if index is None:
            return None
        self.models.dmap_put(index, self._key_of(packet), now=now)
        return index

    def session_rejuvenate(self, index: SymInt, now) -> None:
        self.models.dchain_rejuvenate_index(index, now)

    def forward(self, packet: SymbolicPacket, device) -> None:
        self.ctx.record_send(
            SendRecord(
                device=as_expr(device),
                src_ip=as_expr(packet.src_ip),
                src_port=as_expr(packet.src_port),
                dst_ip=as_expr(packet.dst_ip),
                dst_port=as_expr(packet.dst_port),
                protocol=as_expr(packet.protocol),
            )
        )

    def drop(self, packet: SymbolicPacket) -> None:
        self.models.drop()


def firewall_symbolic_body(
    config: NatConfig | None = None,
) -> Callable[[ExplorationContext], None]:
    """The firewall's stateless logic bound to symbolic models."""
    cfg = config if config is not None else NatConfig()

    def body(ctx: ExplorationContext) -> None:
        env = SymbolicFirewallEnv(ctx, cfg)
        firewall_loop_iteration(env, cfg)

    return body
