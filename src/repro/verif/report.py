"""Proof reports: the Fig. 7 structure, rendered.

A :class:`ProofReport` aggregates the verdicts of the five sub-proofs:

- P1 — semantic properties (Validator + proof checker),
- P2 — low-level properties (symbolic execution engine),
- P3 — libVig implementation vs. contracts (refinement checking),
- P4 — stateless code uses libVig per the contracts (Validator),
- P5 — libVig models faithful to the contracts (Validator),

plus the exploration statistics the paper reports in §5.2 (path count,
trace count, timing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class PropertyVerdict:
    """Outcome of one sub-proof."""

    name: str
    title: str
    proven: bool
    obligations: int = 0
    failures: List[str] = field(default_factory=list)
    note: str = ""

    def summary(self) -> str:
        status = "PROVEN" if self.proven else "FAILED"
        text = f"{self.name} {status:6s} {self.title} ({self.obligations} obligations"
        if self.failures:
            text += f", {len(self.failures)} failed"
        text += ")"
        if self.note:
            text += f" — {self.note}"
        return text


@dataclass
class ProofReport:
    """The stitched proof of Fig. 7 plus exploration statistics."""

    nf_name: str
    p1: PropertyVerdict
    p2: PropertyVerdict
    p3: PropertyVerdict
    p4: PropertyVerdict
    p5: PropertyVerdict
    paths: int = 0
    traces: int = 0
    solver_queries: int = 0
    wall_seconds: float = 0.0

    @property
    def verified(self) -> bool:
        """True when every sub-proof succeeded — the NF is verified."""
        return all(p.proven for p in (self.p1, self.p2, self.p3, self.p4, self.p5))

    def verdicts(self) -> List[PropertyVerdict]:
        return [self.p1, self.p2, self.p3, self.p4, self.p5]

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the CLI's proof cache)."""
        return {
            "nf_name": self.nf_name,
            "verified": self.verified,
            "paths": self.paths,
            "traces": self.traces,
            "solver_queries": self.solver_queries,
            "wall_seconds": self.wall_seconds,
            "properties": [
                {
                    "name": v.name,
                    "title": v.title,
                    "proven": v.proven,
                    "obligations": v.obligations,
                    "failures": list(v.failures),
                    "note": v.note,
                }
                for v in self.verdicts()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProofReport":
        """Inverse of :meth:`to_dict`."""
        verdicts = [
            PropertyVerdict(
                name=p["name"],
                title=p["title"],
                proven=p["proven"],
                obligations=p["obligations"],
                failures=list(p["failures"]),
                note=p.get("note", ""),
            )
            for p in data["properties"]
        ]
        return cls(
            nf_name=data["nf_name"],
            p1=verdicts[0],
            p2=verdicts[1],
            p3=verdicts[2],
            p4=verdicts[3],
            p5=verdicts[4],
            paths=data["paths"],
            traces=data["traces"],
            solver_queries=data["solver_queries"],
            wall_seconds=data["wall_seconds"],
        )

    def render(self) -> str:
        header = (
            f"Vigor proof report for {self.nf_name!r}: "
            + ("VERIFIED" if self.verified else "NOT VERIFIED")
        )
        lines = [header, "=" * len(header)]
        lines.extend(verdict.summary() for verdict in self.verdicts())
        lines.append(
            f"paths: {self.paths}, traces (paths + prefixes): {self.traces}, "
            f"solver queries: {self.solver_queries}, "
            f"wall time: {self.wall_seconds:.2f}s"
        )
        for verdict in self.verdicts():
            for failure in verdict.failures[:20]:
                lines.append(f"  [{verdict.name}] {failure}")
            if len(verdict.failures) > 20:
                lines.append(
                    f"  [{verdict.name}] ... {len(verdict.failures) - 20} more"
                )
        return "\n".join(lines)
