"""The per-path exploration context: path condition, branching, checks.

One :class:`ExplorationContext` lives for one execution of the NF body
down one path. It owns the path condition, decides branches (consulting
the path plan for replayed prefixes, the solver for new choice points),
mints fresh symbols, discharges low-level property checks (P2), and
records the symbolic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.verif.expr import BoolExpr, BoolConst, IntExpr, conj, le, negate
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.symbols import SymBool, SymInt
from repro.verif.trace import CallRecord, CheckRecord, PathTrace, SendRecord


class PathAbort(Exception):
    """Internal: the scheduled path became infeasible (should not happen)."""


@dataclass
class BranchOutcome:
    value: bool
    forced: bool  # True when only one side was feasible
    flip_feasible: bool  # True when the other side is worth scheduling


@dataclass
class ExplorationContext:
    """Mutable state of one symbolic execution path."""

    plan: List[bool] = field(default_factory=list)
    check_arithmetic: bool = True

    def __post_init__(self) -> None:
        self.pc: List[BoolExpr] = []
        #: Parallel to ``pc``: "branch" for constraints added by branch
        #: decisions, "assume" for constraints a model imposed. The
        #: Validator's P5 check needs the distinction (§5.2.3): branch
        #: constraints select the contract case, assume constraints are
        #: what must be *justified by* the contract.
        self.pc_tags: List[str] = []
        self.decisions: List[BranchOutcome] = []
        self.widths: Dict[str, int] = {}
        self.calls: List[CallRecord] = []
        self.sends: List[SendRecord] = []
        self.checks: List[CheckRecord] = []
        #: (source-site, outcome) pairs decided on this path — the raw
        #: material of the engine's branch-coverage report.
        self.covered: set = set()
        self._fresh_counters: Dict[str, int] = {}
        self._solver = Solver(self.widths)
        self.solver_queries = 0

    # -- symbols ---------------------------------------------------------------
    def fresh(self, name: str, width: int) -> SymInt:
        """Mint a fresh unconstrained symbol with a unique name."""
        counter = self._fresh_counters.get(name, 0)
        self._fresh_counters[name] = counter + 1
        unique = name if counter == 0 else f"{name}#{counter}"
        self.widths[unique] = width
        return SymInt(IntExpr.var(unique, width), self)

    def const(self, value: int, width: int = 64) -> SymInt:
        return SymInt(IntExpr.const(value, width), self)

    def bool_sym(self, name: str) -> SymInt:
        """A fresh 0/1 flag symbol (used by models for 'found' bits)."""
        return self.fresh(name, 1)

    # -- path condition -----------------------------------------------------
    def assume(self, condition: SymBool | BoolExpr) -> None:
        """Add a constraint the model guarantees on this path."""
        expr = condition.expr if isinstance(condition, SymBool) else condition
        if isinstance(expr, BoolConst):
            if not expr.value:
                raise PathAbort("model assumed false")
            return
        self.pc.append(expr)
        self.pc_tags.append("assume")

    def _feasible(self, extra: BoolExpr) -> bool:
        self.solver_queries += 1
        try:
            return self._solver.satisfiable(self.pc + [extra]) is not None
        except SolverUnknown:
            # Conservatively explore: a spurious path can only add noise,
            # never unsoundness, to the property proofs.
            return True

    @staticmethod
    def _branch_site() -> str:
        """The source location of the NF-code branch being decided.

        Walks out of the toolchain's own frames so coverage points at
        the stateless code (or a model), not at ``SymBool.__bool__``.
        """
        import sys

        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if not (
                filename.endswith("symbols.py") or filename.endswith("context.py")
            ):
                return f"{filename}:{frame.f_lineno}"
            frame = frame.f_back
        return "<unknown>"

    def branch(self, expr: BoolExpr) -> bool:
        """Decide a symbolic branch; schedule the alternative if feasible."""
        if isinstance(expr, BoolConst):
            return expr.value
        site = self._branch_site()
        position = len(self.decisions)
        if position < len(self.plan):
            value = self.plan[position]
            self.decisions.append(
                BranchOutcome(value=value, forced=False, flip_feasible=False)
            )
            self.pc.append(expr if value else negate(expr))
            self.pc_tags.append("branch")
            self.covered.add((site, value))
            return value
        true_ok = self._feasible(expr)
        false_ok = self._feasible(negate(expr))
        if not true_ok and not false_ok:
            raise PathAbort("both branch directions infeasible")
        if true_ok and false_ok:
            self.decisions.append(
                BranchOutcome(value=True, forced=False, flip_feasible=True)
            )
            self.pc.append(expr)
            self.pc_tags.append("branch")
            self.covered.add((site, True))
            return True
        value = true_ok
        self.decisions.append(
            BranchOutcome(value=value, forced=True, flip_feasible=False)
        )
        self.pc.append(expr if value else negate(expr))
        self.pc_tags.append("branch")
        self.covered.add((site, value))
        return value

    # -- low-level property checks (P2) ------------------------------------------
    def check(self, prop: BoolExpr, kind: str, detail: str = "") -> bool:
        """Prove ``pc ⟹ prop``; record the outcome either way."""
        self.solver_queries += 1
        counterexample: Optional[Dict[str, int]] = None
        try:
            model = self._solver.satisfiable(self.pc + [negate(prop)])
            proven = model is None
            if model is not None:
                counterexample = model
        except SolverUnknown:
            proven = False
        self.checks.append(
            CheckRecord(
                kind=kind,
                property=prop,
                proven=proven,
                detail=detail,
                counterexample=counterexample,
            )
        )
        return proven

    def check_arith(self, value: SymInt) -> None:
        """Bounds check for an arithmetic result (no wrap under/overflow)."""
        if not self.check_arithmetic:
            return
        expr = value.expr
        if expr.is_const:
            if not 0 <= expr.offset < (1 << expr.width):
                self.checks.append(
                    CheckRecord(
                        kind="arith-bounds",
                        property=BoolConst(False),
                        proven=False,
                        detail=f"constant {expr.offset} outside u{expr.width}",
                    )
                )
            return
        low = le(IntExpr.const(0), expr)
        high = le(expr, IntExpr.const((1 << expr.width) - 1))
        self.check(conj(low, high), "arith-bounds", detail=str(expr))

    def check_index(self, index: SymInt, capacity: int, structure: str) -> None:
        """Array-bounds check for an index into a preallocated structure."""
        low = le(IntExpr.const(0), index.expr)
        high = le(index.expr, IntExpr.const(capacity - 1))
        self.check(conj(low, high), "index-bounds", detail=structure)

    # -- trace recording -----------------------------------------------------------
    def record_call(self, record: CallRecord) -> CallRecord:
        record.pc_index = len(self.pc)
        self.calls.append(record)
        return record

    def record_send(self, record: SendRecord) -> None:
        record.pc_index = len(self.pc)
        self.sends.append(record)

    # -- finalization ---------------------------------------------------------------
    def finish(self, path_id: int, crashed: Optional[str] = None) -> PathTrace:
        witness: Dict[str, int] = {}
        try:
            model = self._solver.satisfiable(self.pc)
            if model is not None:
                witness = model
        except SolverUnknown:
            pass
        return PathTrace(
            path_id=path_id,
            decisions=tuple(
                (outcome.value, outcome.forced) for outcome in self.decisions
            ),
            pc=list(self.pc),
            calls=list(self.calls),
            sends=list(self.sends),
            checks=list(self.checks),
            witness=witness,
            widths=dict(self.widths),
            crashed=crashed,
        )
