"""Symbolic traces and the execution tree (§5.2.2, Fig. 9).

A path trace records, for one feasible execution path of the stateless
NF code: every call into (the models of) libVig and the DPDK layer with
its symbolic arguments and results, every packet emission, the path
condition, and the low-level checks discharged along the way.

The *execution tree* is formed by the common prefixes of all path
traces; the paper counts both full paths and prefixes as verification
tasks (108 paths → 431 traces), and :meth:`ExecutionTree.trace_count`
reproduces that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verif.expr import BoolExpr, IntExpr


@dataclass
class CallRecord:
    """One call across the traced interface (libVig or DPDK model)."""

    fn: str
    #: Symbolic argument expressions by parameter name.
    args: Dict[str, IntExpr] = field(default_factory=dict)
    #: Symbolic results by name ("result" for the return value).
    rets: Dict[str, IntExpr] = field(default_factory=dict)
    #: Contract precondition instantiated at this call site (P4 goal).
    pre: List[BoolExpr] = field(default_factory=list)
    #: Contract postcondition instantiated on args/rets (P5 antecedent).
    post: List[BoolExpr] = field(default_factory=list)
    #: Constraints the *model* imposed on its outputs (P5 consequent).
    model_constraints: List[BoolExpr] = field(default_factory=list)
    #: Length of the path condition when the call started.
    pc_start: int = 0
    #: Length of the path condition when the call returned.
    pc_index: int = 0
    #: Indices into the path condition of branch decisions taken *inside*
    #: this call — they select which contract case applies (P5).
    selector_indices: Tuple[int, ...] = ()

    def __str__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.args.items())
        rets = ", ".join(f"{k}={v}" for k, v in self.rets.items())
        return f"{self.fn}({args}) ==> [{rets}]"


@dataclass
class SendRecord:
    """One emitted packet with its (symbolic) header fields."""

    device: IntExpr
    src_ip: IntExpr
    src_port: IntExpr
    dst_ip: IntExpr
    dst_port: IntExpr
    protocol: IntExpr
    pc_index: int = 0


@dataclass
class CheckRecord:
    """One low-level property check (P2) discharged on this path."""

    kind: str  # e.g. "arith-bounds", "index-bounds", "assert"
    property: BoolExpr
    proven: bool
    detail: str = ""
    counterexample: Optional[Dict[str, int]] = None


@dataclass
class PathTrace:
    """Everything recorded along one feasible execution path."""

    path_id: int
    decisions: Tuple[Tuple[bool, bool], ...]  # (value, forced) per branch
    pc: List[BoolExpr] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    sends: List[SendRecord] = field(default_factory=list)
    checks: List[CheckRecord] = field(default_factory=list)
    #: Example concrete input that drives execution down this path.
    witness: Dict[str, int] = field(default_factory=dict)
    #: Widths of every symbol mentioned anywhere in the trace.
    widths: Dict[str, int] = field(default_factory=dict)
    crashed: Optional[str] = None  # exception text when the path died

    @property
    def decision_values(self) -> Tuple[bool, ...]:
        return tuple(value for value, _ in self.decisions)

    def violations(self) -> List[CheckRecord]:
        return [check for check in self.checks if not check.proven]

    def render(self) -> str:
        """Fig. 9-style text rendering of the trace."""
        lines = []
        if not self.calls or self.calls[0].fn != "loop_invariant_produce":
            lines.append("loop_invariant_produce() ==> []")
        lines.extend(str(call) for call in self.calls)
        for send in self.sends:
            lines.append(
                f"send(device={send.device}, src={send.src_ip}:{send.src_port}, "
                f"dst={send.dst_ip}:{send.dst_port}, proto={send.protocol}) ==> []"
            )
        lines.append("loop_invariant_consume() ==> []")
        lines.append("--- constraints ---")
        lines.extend(str(constraint) for constraint in self.pc)
        return "\n".join(lines)


@dataclass
class ExecutionTree:
    """All feasible paths, organized by branch-decision prefixes."""

    paths: List[PathTrace] = field(default_factory=list)

    def path_count(self) -> int:
        return len(self.paths)

    def trace_count(self) -> int:
        """Paths plus all their distinct proper prefixes (the 431 number).

        Each node of the execution tree is a verification task in the
        paper's accounting: every prefix of every call sequence, which in
        decision space is every distinct decision-prefix (including the
        root and the full paths).
        """
        prefixes = set()
        for path in self.paths:
            values = path.decision_values
            for length in range(len(values) + 1):
                prefixes.add(values[:length])
        return len(prefixes)

    def violations(self) -> List[Tuple[int, CheckRecord]]:
        found = []
        for path in self.paths:
            for check in path.violations():
                found.append((path.path_id, check))
        return found

    def crashed_paths(self) -> List[PathTrace]:
        return [path for path in self.paths if path.crashed is not None]
