"""The Vigor Validator: lazy proofs over symbolic traces (§5.2).

Takes the execution tree produced by exhaustive symbolic execution and
discharges, per trace:

- **P4** (§5.2.4) — at every call into libVig, the contract's
  precondition is implied by the path condition at the call site.
- **P5** (§5.2.3) — every constraint a *model* imposed on its outputs is
  implied by the library contract's postcondition (given the path up to
  the call and the case-selecting branch decisions inside the call). An
  under-approximate model fails here; an over-approximate one passes here
  and fails in P1 instead — the paper's Fig. 4 taxonomy.
- **P1** (§5.2.2) — the NF's semantic property, woven into the trace by a
  semantics object (:mod:`repro.verif.semantics`).

P2 is aggregated from the engine's per-path checks, and P3 from an
executable refinement smoke-test of the real libVig structures against
their abstract models (the full P3 evidence is the refinement test-suite
in ``tests/libvig``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol

from repro.verif.engine import ExplorationResult
from repro.verif.expr import BoolExpr
from repro.verif.report import ProofReport, PropertyVerdict
from repro.verif.semantics import Obligation
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.trace import PathTrace


class SemanticProperty(Protocol):
    """What the Validator needs from an NF's semantic specification."""

    name: str

    def obligations(self, trace: PathTrace) -> List[Obligation]: ...


def _validate_one_trace(payload):
    """Worker for parallel validation: all per-trace checks for one trace.

    Module-level so it pickles; §5.2.2 notes trace verification is
    highly parallelizable (the paper: 38 min on one core, 11 min on
    four) — traces are independent proof tasks.
    """
    trace, semantics = payload
    validator = Validator(semantics)
    p1_failures: List[str] = []
    p2_failures: List[str] = []
    p4_failures: List[str] = []
    p5_failures: List[str] = []
    if trace.crashed is not None:
        p2_failures.append(f"path {trace.path_id}: crashed: {trace.crashed}")
    p2_count = 0
    for check in trace.checks:
        p2_count += 1
        if not check.proven:
            p2_failures.append(
                f"path {trace.path_id}: {check.kind} {check.detail} "
                f"counterexample={check.counterexample}"
            )
    p4_count = validator._check_p4(trace, p4_failures)
    p5_count = validator._check_p5(trace, p5_failures)
    p1_count = 0
    if semantics is not None:
        p1_count = validator._check_p1(trace, p1_failures)
    return (
        (p1_count, p1_failures),
        (p2_count, p2_failures),
        (p4_count, p4_failures),
        (p5_count, p5_failures),
    )


class Validator:
    """Stitches the sub-proofs of Fig. 7 into one report."""

    def __init__(self, semantics: Optional[SemanticProperty] = None) -> None:
        self.semantics = semantics

    # -- the per-trace proofs -----------------------------------------------------
    def _prove(
        self,
        solver: Solver,
        assumptions: List[BoolExpr],
        goal: BoolExpr,
    ) -> bool:
        try:
            return solver.entails(assumptions, goal)
        except SolverUnknown:
            return False

    def _check_p4(self, trace: PathTrace, failures: List[str]) -> int:
        """Preconditions hold at every call site; returns obligation count."""
        solver = Solver(trace.widths)
        count = 0
        for call in trace.calls:
            for pre in call.pre:
                count += 1
                pc_before = trace.pc[: call.pc_start]
                if not self._prove(solver, pc_before, pre):
                    failures.append(
                        f"path {trace.path_id}: {call.fn} precondition {pre} "
                        "not implied by the path condition"
                    )
        return count

    def _check_p5(self, trace: PathTrace, failures: List[str]) -> int:
        """Model outputs are justified by contract postconditions."""
        solver = Solver(trace.widths)
        count = 0
        for call in trace.calls:
            if not call.model_constraints:
                continue
            if not call.post and not call.pre:
                # Trusted model (DPDK, nf_time): part of the TCB (§5.4).
                continue
            antecedent = list(trace.pc[: call.pc_start])
            antecedent.extend(trace.pc[i] for i in call.selector_indices)
            antecedent.extend(call.post)
            for constraint in call.model_constraints:
                count += 1
                if not self._prove(solver, antecedent, constraint):
                    failures.append(
                        f"path {trace.path_id}: {call.fn} model constraint "
                        f"{constraint} not justified by the contract"
                    )
        return count

    def _check_p1(self, trace: PathTrace, failures: List[str]) -> int:
        assert self.semantics is not None
        solver = Solver(trace.widths)
        count = 0
        for obligation in self.semantics.obligations(trace):
            count += 1
            if not obligation.structural_ok:
                failures.append(
                    f"path {trace.path_id}: {obligation.name} "
                    f"(structural): {obligation.detail}"
                )
                continue
            if not self._prove(solver, trace.pc, obligation.formula):
                failures.append(
                    f"path {trace.path_id}: {obligation.name} not provable: "
                    f"{obligation.formula}"
                )
        return count

    # -- P3: executable refinement smoke-test ----------------------------------------
    @staticmethod
    def refinement_smoke(operations: int = 400, seed: int = 2017) -> List[str]:
        """Drive real libVig structures against their abstract models.

        The full evidence for P3 is the property-based refinement suite
        in ``tests/libvig``; this in-process smoke keeps the proof report
        self-contained.
        """
        from repro.libvig.abstract import chain_times_nondecreasing
        from repro.libvig.contracts import checked
        from repro.libvig.double_chain import DoubleChain
        from repro.libvig.map import Map

        failures: List[str] = []
        rng = random.Random(seed)
        with checked():
            concrete = Map(capacity=32)
            chain = DoubleChain(16)
            clock = 0
            for _ in range(operations):
                op = rng.randrange(4)
                try:
                    if op == 0 and not concrete.full():
                        key = rng.randrange(64)
                        if not concrete.has(key):
                            concrete.put(key, rng.randrange(1000))
                    elif op == 1:
                        live = [k for k, _ in concrete.items()]
                        if live:
                            concrete.erase(rng.choice(live))
                    elif op == 2:
                        clock += rng.randrange(3)
                        if chain.size() < chain.index_range:
                            chain.allocate_new_index(clock)
                    else:
                        clock += rng.randrange(3)
                        state = chain._abstract_state()
                        if state.cells:
                            chain.rejuvenate_index(
                                rng.choice(state.allocated()), clock
                            )
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    failures.append(f"refinement smoke: {exc}")
                    break
                if not chain_times_nondecreasing(chain._abstract_state().cells):
                    failures.append("chain timestamp ordering violated")
                    break
        return failures

    # -- the stitched proof --------------------------------------------------------
    def validate(
        self,
        result: ExplorationResult,
        nf_name: str = "nf",
        processes: int = 1,
    ) -> ProofReport:
        """Run P1/P4/P5 over every trace and assemble the Fig. 7 report.

        ``processes > 1`` validates traces in parallel (each trace is an
        independent proof task, §5.2.2); results are identical to the
        sequential run.
        """
        p1_failures: List[str] = []
        p2_failures: List[str] = []
        p4_failures: List[str] = []
        p5_failures: List[str] = []
        p1_count = p2_count = p4_count = p5_count = 0

        if processes > 1:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [(trace, self.semantics) for trace in result.tree.paths]
            with ProcessPoolExecutor(max_workers=processes) as pool:
                outcomes = list(pool.map(_validate_one_trace, payloads))
        else:
            outcomes = [
                _validate_one_trace((trace, self.semantics))
                for trace in result.tree.paths
            ]
        for (p1c, p1f), (p2c, p2f), (p4c, p4f), (p5c, p5f) in outcomes:
            p1_count += p1c
            p1_failures.extend(p1f)
            p2_count += p2c
            p2_failures.extend(p2f)
            p4_count += p4c
            p4_failures.extend(p4f)
            p5_count += p5c
            p5_failures.extend(p5f)

        p3_failures = self.refinement_smoke()

        report = ProofReport(
            nf_name=nf_name,
            p1=PropertyVerdict(
                name="P1",
                title=(
                    self.semantics.name
                    if self.semantics is not None
                    else "semantic properties (no spec supplied)"
                ),
                proven=self.semantics is not None and not p1_failures,
                obligations=p1_count,
                failures=p1_failures,
                note="" if self.semantics is not None else "skipped",
            ),
            p2=PropertyVerdict(
                name="P2",
                title="low-level properties (crash-freedom, bounds, overflow)",
                proven=not p2_failures,
                obligations=p2_count,
                failures=p2_failures,
            ),
            p3=PropertyVerdict(
                name="P3",
                title="libVig implementation refines its contracts",
                proven=not p3_failures,
                obligations=1,
                failures=p3_failures,
                note="full evidence: tests/libvig refinement suite",
            ),
            p4=PropertyVerdict(
                name="P4",
                title="stateless code respects libVig preconditions",
                proven=not p4_failures,
                obligations=p4_count,
                failures=p4_failures,
            ),
            p5=PropertyVerdict(
                name="P5",
                title="libVig models faithful to the contracts",
                proven=not p5_failures,
                obligations=p5_count,
                failures=p5_failures,
            ),
            paths=result.tree.path_count(),
            traces=result.tree.trace_count(),
            solver_queries=result.stats.solver_queries,
            wall_seconds=result.stats.wall_seconds,
        )
        return report
