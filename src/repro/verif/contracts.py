"""Symbolic interface contracts for the libVig data types (§5.1.2).

These are the machine-readable pre/post-conditions the Validator checks
traces against — the reproduction's analogue of libVig's separation-logic
contracts. Each contract instantiates, for a concrete call site, the
precondition over the argument expressions (proof obligation P4) and the
postcondition over argument and result expressions (the antecedent of
the model-validation proof P5).

The contracts speak the solver's fragment, so abstract-state relations
are expressed through the symbols the models mint: table occupancy is
the shared ``table_size`` symbol, membership is a 0/1 ``found`` flag
whose allowed valuations the postcondition ties to occupancy and index
bounds. Where the paper's separation-logic contracts quantify over all
entries, this reproduction instantiates the needed instance lazily —
the same move the lazy-proofs technique makes (§5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

from repro.verif.expr import (
    BoolExpr,
    IntExpr,
    conj,
    disj,
    eq,
    implies,
    le,
    lt,
)

Exprs = Mapping[str, IntExpr]
ClauseBuilder = Callable[[Exprs, Exprs, "ContractContext"], List[BoolExpr]]


@dataclass(frozen=True)
class ContractContext:
    """Static facts contracts may reference (configuration constants)."""

    capacity: int
    start_port: int = 1


@dataclass
class SymbolicContract:
    """A named contract with precondition and postcondition builders."""

    name: str
    description: str
    pre: ClauseBuilder = field(default=lambda args, rets, cc: [])
    post: ClauseBuilder = field(default=lambda args, rets, cc: [])
    #: Part of the trusted computing base (§5.4): P5 is not checked.
    trusted: bool = False


def _c(value: int) -> IntExpr:
    return IntExpr.const(value)


# -- the flow-table (DoubleMap) contracts --------------------------------------


def _dmap_get_pre(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    # The key is an output-parameter struct owned by the caller; nothing
    # to require beyond well-formed field widths, which typing ensures.
    return []


def _dmap_get_post(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    # Fig. 8: found==1 means a valid occupied index and a non-empty map;
    # found==0 means the key is absent (no other facts).
    found = rets["found"]
    clauses: List[BoolExpr] = []
    if "index" in rets:
        clauses.append(
            disj(
                conj(
                    eq(found, _c(1)),
                    le(_c(0), rets["index"]),
                    lt(rets["index"], _c(cc.capacity)),
                    le(_c(1), rets["size"]),
                ),
                eq(found, _c(0)),
            )
        )
    return clauses


def _dmap_put_pre(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    return [
        le(_c(0), args["index"]),
        lt(args["index"], _c(cc.capacity)),
        lt(args["size"], _c(cc.capacity)),
    ]


def _dmap_get_value_pre(
    args: Exprs, rets: Exprs, cc: ContractContext
) -> List[BoolExpr]:
    return [
        le(_c(0), args["index"]),
        lt(args["index"], _c(cc.capacity)),
    ]


def _dmap_get_value_post(
    args: Exprs, rets: Exprs, cc: ContractContext
) -> List[BoolExpr]:
    # The entry's external port is well-formed, and — woven in from the
    # NF's loop invariant (§3 "Loop invariants") — equal to
    # start_port + index, the allocation rule the NAT maintains.
    clauses: List[BoolExpr] = [
        le(_c(0), rets["ext_port"]),
        le(rets["ext_port"], _c(0xFFFF)),
        eq(rets["ext_port"], args["index"].add(_c(cc.start_port))),
    ]
    return clauses


# -- the allocator (DoubleChain) contracts -------------------------------------


def _dchain_alloc_post(
    args: Exprs, rets: Exprs, cc: ContractContext
) -> List[BoolExpr]:
    success = rets["success"]
    size = args["size"]
    clauses: List[BoolExpr] = [
        implies(lt(size, _c(cc.capacity)), eq(success, _c(1))),
        implies(le(_c(cc.capacity), size), eq(success, _c(0))),
    ]
    if "index" in rets:
        clauses.append(
            implies(
                eq(success, _c(1)),
                conj(
                    le(_c(0), rets["index"]),
                    lt(rets["index"], _c(cc.capacity)),
                ),
            )
        )
    return clauses


def _dchain_rejuvenate_pre(
    args: Exprs, rets: Exprs, cc: ContractContext
) -> List[BoolExpr]:
    return [
        le(_c(0), args["index"]),
        lt(args["index"], _c(cc.capacity)),
    ]


# -- the expirator contract ----------------------------------------------------


def _expire_post(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    # Expiration only shrinks the table, never below empty.
    return [
        le(_c(0), rets["new_size"]),
        le(rets["new_size"], args["size"]),
    ]


# -- the ring contracts (the §3 worked example) ---------------------------------


def _ring_pop_pre(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    # Fig. 3 l.3: lst != nil — the ring must be non-empty.
    return [le(_c(1), args["length"])]


def _ne_helper(expr: IntExpr, value: int) -> BoolExpr:
    from repro.verif.expr import ne

    return ne(expr, _c(value))


def _ring_pop_post(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    # Fig. 3 ll.4-6: the popped packet satisfies the packet constraint
    # (target port != 9 for the discard NF).
    from repro.nat.discard import DISCARD_PORT

    return [_ne_helper(rets["dst_port"], DISCARD_PORT)]


def _ring_push_pre(args: Exprs, rets: Exprs, cc: ContractContext) -> List[BoolExpr]:
    return [
        lt(args["length"], _c(cc.capacity)),
        _ne_helper(args["dst_port"], 9),
    ]


# -- registry --------------------------------------------------------------------

CONTRACTS: Dict[str, SymbolicContract] = {
    "loop_invariant_produce": SymbolicContract(
        name="loop_invariant_produce",
        description="Havoc loop-carried state subject to the loop invariant",
        post=lambda args, rets, cc: [
            le(_c(0), rets["size"]),
            le(rets["size"], _c(cc.capacity)),
        ],
    ),
    "current_time": SymbolicContract(
        name="current_time",
        description="System time is a non-negative microsecond count",
        trusted=True,  # part of the TCB like the paper's nf_time model
    ),
    "receive": SymbolicContract(
        name="receive",
        description="DPDK receive: fully adversarial packet (trusted model)",
        trusted=True,
    ),
    "expire_items": SymbolicContract(
        name="expire_items",
        description="Expire all flows stamped strictly before min_time",
        post=_expire_post,
    ),
    "dmap_get_by_first_key": SymbolicContract(
        name="dmap_get_by_first_key",
        description="Flow lookup by internal 5-tuple (Fig. 8)",
        pre=_dmap_get_pre,
        post=_dmap_get_post,
    ),
    "dmap_get_by_second_key": SymbolicContract(
        name="dmap_get_by_second_key",
        description="Flow lookup by external 5-tuple",
        pre=_dmap_get_pre,
        post=_dmap_get_post,
    ),
    "dmap_put": SymbolicContract(
        name="dmap_put",
        description="Bind a flow to a vacant index",
        pre=_dmap_put_pre,
    ),
    "dmap_get_value": SymbolicContract(
        name="dmap_get_value",
        description="Read the flow entry at an occupied index",
        pre=_dmap_get_value_pre,
        post=_dmap_get_value_post,
    ),
    "dchain_allocate_new_index": SymbolicContract(
        name="dchain_allocate_new_index",
        description="Allocate the oldest free index, stamped now",
        post=_dchain_alloc_post,
    ),
    "dchain_rejuvenate_index": SymbolicContract(
        name="dchain_rejuvenate_index",
        description="Refresh an allocated index's timestamp",
        pre=_dchain_rejuvenate_pre,
    ),
    "ring_full": SymbolicContract(
        name="ring_full",
        description="result == (length == capacity)",
    ),
    "ring_empty": SymbolicContract(
        name="ring_empty",
        description="result == (length == 0)",
    ),
    "can_send": SymbolicContract(
        name="can_send",
        description="DPDK transmit readiness (trusted model)",
        trusted=True,
    ),
    "ring_push_back": SymbolicContract(
        name="ring_push_back",
        description="Append an item satisfying the ring constraint",
        pre=_ring_push_pre,
    ),
    "ring_pop_front": SymbolicContract(
        name="ring_pop_front",
        description="Pop the front item; it satisfies the ring constraint",
        pre=_ring_pop_pre,
        post=_ring_pop_post,
    ),
    "drop": SymbolicContract(
        name="drop",
        description="Return the packet buffer to DPDK (trusted model)",
        trusted=True,
    ),
}
