"""Concolic bijectivity proof for the stateless CGNAT.

The deterministic NAT's claim is arithmetic, not behavioral: the
subscriber/port → external-port map of :mod:`repro.nat.cgnat` is a
bijection. This module discharges that claim by running the *same*
stateless function the deployed NF runs
(:func:`~repro.nat.cgnat.det_nat_loop_iteration`) under the exhaustive
symbolic engine — the Step 2(a) substitution of §3 again, with one
twist.

The in-house solver speaks difference logic: sums of a symbol and
constants, no multiplication. The bijection's ``subscriber *
ports_per_subscriber`` term would fall outside it — so the two places
that term lives (the forward block lookup and the return-path inverse)
sit behind environment hooks, and the symbolic environment resolves
them *concolically*: it forks one path per concrete subscriber (an
equality branch on the symbolic address, a range branch on the symbolic
port) and returns the subscriber's block start as a **constant**. On
each resulting path the multiplication has been evaluated away, every
port expression is ``symbol ± constant``, and the per-path proof
obligations — round-trip identity, block containment, untouched-field
preservation, u16 overflow freedom (via the automatic ``check_arith``
on every SymInt add/sub) — are all difference-logic facts the solver
can settle.

Per-path round trips compose into full bijectivity with two concrete
side conditions this module checks directly (they quantify over
subscribers, not packets, so enumeration *is* the proof): the
subscribers' port blocks are pairwise disjoint and exactly tile the
external domain, and the ``NatConfig.partition`` shard ranges are
pairwise disjoint and exactly tile the same domain. Injectivity: two
distinct internal endpoints map into different blocks (different
subscriber) or different offsets within one block (different port).
Surjectivity: every domain port lies in exactly one block, and the
return path's per-path check proves it maps back to the unique internal
endpoint the forward path would have sent there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.nat.cgnat import CgnatConfig, det_nat_loop_iteration
from repro.verif.context import ExplorationContext
from repro.verif.engine import ExhaustiveSymbolicEngine, ExplorationResult
from repro.verif.expr import W8, W16, W32
from repro.verif.models.base import as_expr
from repro.verif.symbols import SymInt
from repro.verif.trace import SendRecord


class SymbolicCgnatPacket:
    """The havoced received packet: every header field is a symbol."""

    def __init__(self, ctx: ExplorationContext) -> None:
        self.ethertype = ctx.fresh("pkt_ethertype", W16)
        self.protocol = ctx.fresh("pkt_proto", W8)
        self.device = ctx.fresh("pkt_device", W8)
        self.src_ip = ctx.fresh("pkt_src_ip", W32)
        self.src_port = ctx.fresh("pkt_src_port", W16)
        self.dst_ip = ctx.fresh("pkt_dst_ip", W32)
        self.dst_port = ctx.fresh("pkt_dst_port", W16)


class SymbolicCgnatEnv:
    """The DetNatEnv over symbols: block lookups resolved concolically."""

    def __init__(self, ctx: ExplorationContext, config: CgnatConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.packet: Optional[SymbolicCgnatPacket] = None
        #: Set by the hook that fired on this path: (subscriber index,
        #: block start), both concrete — the concolic anchor the emit
        #: checks are phrased against.
        self._forward: Optional[Tuple[int, int]] = None
        self._return: Optional[Tuple[int, int]] = None

    def receive(self) -> Optional[SymbolicCgnatPacket]:
        self.packet = SymbolicCgnatPacket(self.ctx)
        return self.packet

    def subscriber_block(self, src_ip) -> Optional[SymInt]:
        """Concretize the subscriber by forking on the symbolic address.

        One path per subscriber (address equal to that subscriber's)
        plus the all-miss path (address outside the pool → the caller
        drops). On a hit the block start returns as a constant, so the
        caller's ``block + offset`` stays in difference logic.
        """
        cfg = self.config
        for subscriber in range(cfg.subscriber_count):
            if src_ip == cfg.internal_base + subscriber:
                self._forward = (subscriber, cfg.block_start(subscriber))
                return self.ctx.const(cfg.block_start(subscriber), W16)
        return None

    def block_of_port(self, dst_port) -> Optional[Tuple[SymInt, SymInt]]:
        """Concretize the owning block by forking on the symbolic port.

        One path per subscriber (port inside that subscriber's block —
        the blocks tile the domain, so the cases are disjoint) plus the
        out-of-domain path. The division of the closed-form inverse is
        evaluated away with the fork.
        """
        cfg = self.config
        ppn = cfg.ports_per_subscriber
        for subscriber in range(cfg.subscriber_count):
            start = cfg.block_start(subscriber)
            if (dst_port >= start) & (dst_port <= start + ppn - 1):
                self._return = (subscriber, start)
                return (
                    self.ctx.const(cfg.internal_base + subscriber, W32),
                    self.ctx.const(start, W16),
                )
        return None

    def emit(self, packet, device, src_ip, src_port, dst_ip, dst_port) -> None:
        ctx = self.ctx
        cfg = self.config
        ctx.record_send(
            SendRecord(
                device=as_expr(device),
                src_ip=as_expr(src_ip),
                src_port=as_expr(src_port),
                dst_ip=as_expr(dst_ip),
                dst_port=as_expr(dst_port),
                protocol=as_expr(packet.protocol),
            )
        )
        ipb = cfg.internal_port_base
        ppn = cfg.ports_per_subscriber
        if self._forward is not None:
            subscriber, block = self._forward
            # The translated source port lands inside this subscriber's
            # block — with block disjointness, injectivity across
            # subscribers.
            ctx.check(
                ((src_port >= block) & (src_port <= block + ppn - 1)).expr,
                "cgnat-block-bounds",
                detail=f"forward port within subscriber {subscriber}'s block",
            )
            # Round-trip identity: inverting the emitted port recovers
            # the packet's own source port — injectivity within a block,
            # and exactly what the return path will compute.
            ctx.check(
                ((src_port - block) + ipb == packet.src_port).expr,
                "cgnat-round-trip",
                detail=f"forward map inverts for subscriber {subscriber}",
            )
            # The destination endpoint passes through untouched.
            ctx.check(
                ((dst_ip == packet.dst_ip) & (dst_port == packet.dst_port)).expr,
                "cgnat-endpoint-preserved",
                detail="forward path leaves the remote endpoint alone",
            )
        elif self._return is not None:
            subscriber, block = self._return
            # The recovered internal port lies in the subscriber window.
            ctx.check(
                ((dst_port >= ipb) & (dst_port <= ipb + ppn - 1)).expr,
                "cgnat-block-bounds",
                detail=f"return port within subscriber {subscriber}'s window",
            )
            # Round trip: mapping the recovered endpoint forward again
            # yields the very port this packet arrived on.
            ctx.check(
                (block + (dst_port - ipb) == packet.dst_port).expr,
                "cgnat-round-trip",
                detail=f"return map inverts for subscriber {subscriber}",
            )
            ctx.check(
                (dst_ip == cfg.internal_base + subscriber).expr,
                "cgnat-round-trip",
                detail=f"return address is subscriber {subscriber}'s",
            )
            # The remote endpoint passes through untouched.
            ctx.check(
                ((src_ip == packet.src_ip) & (src_port == packet.src_port)).expr,
                "cgnat-endpoint-preserved",
                detail="return path leaves the remote endpoint alone",
            )
        else:
            # det_nat_loop_iteration only emits after one of the two
            # hooks succeeded; reaching here is a logic regression.
            ctx.check(
                (self.ctx.const(0, W8) == 1).expr,
                "cgnat-unreachable",
                detail="emit without a block lookup",
            )

    def drop(self, packet) -> None:
        """Nothing to model: the stateless NF has no state to corrupt."""


def cgnat_symbolic_body(config: CgnatConfig | None = None):
    """The NF body the engine explores: the real stateless CGNAT logic."""
    cfg = config if config is not None else CgnatConfig()

    def body(ctx: ExplorationContext) -> None:
        env = SymbolicCgnatEnv(ctx, cfg)
        det_nat_loop_iteration(env, cfg)

    return body


# -- the concrete tiling side conditions -----------------------------------
def _block_intervals(config: CgnatConfig) -> List[Tuple[int, int]]:
    ppn = config.ports_per_subscriber
    return [
        (config.block_start(i), config.block_start(i) + ppn - 1)
        for i in range(config.subscriber_count)
    ]


def _tiles_domain(intervals: List[Tuple[int, int]], config: CgnatConfig) -> bool:
    """Pairwise disjoint and exactly covering the external domain."""
    ordered = sorted(intervals)
    if not ordered:
        return False
    if ordered[0][0] != config.domain_start_port:
        return False
    if ordered[-1][1] != config.domain_end_port:
        return False
    return all(
        previous_end + 1 == next_start
        for (_, previous_end), (next_start, _) in zip(ordered, ordered[1:])
    )


@dataclass
class CgnatProofReport:
    """The DetNat bijectivity proof, Fig. 7-style."""

    nf: str
    paths: int
    checks_total: int
    checks_proven: int
    crash_free: bool
    blocks_tile_domain: bool
    shards_tile_domain: bool
    subscriber_count: int
    ports_per_subscriber: int
    shard_count: int
    #: The exploration itself, for coverage rendering (not serialized).
    result: Optional[ExplorationResult] = field(default=None, repr=False)

    @property
    def verified(self) -> bool:
        return (
            self.crash_free
            and self.checks_total > 0
            and self.checks_proven == self.checks_total
            and self.blocks_tile_domain
            and self.shards_tile_domain
        )

    def render(self) -> str:
        def mark(ok: bool) -> str:
            return "proven" if ok else "FAILED"

        lines = [
            f"=== {self.nf}: deterministic CGNAT bijectivity ===",
            f"paths explored: {self.paths} "
            f"({self.subscriber_count} subscribers x "
            f"{self.ports_per_subscriber} ports, both directions)",
            f"per-path checks proven: {self.checks_proven}/{self.checks_total} "
            f"(round trip, block bounds, endpoint preservation, "
            f"overflow freedom)",
            f"crash freedom: {mark(self.crash_free)}",
            f"subscriber blocks tile the domain: "
            f"{mark(self.blocks_tile_domain)}",
            f"{self.shard_count} partition shards tile the domain: "
            f"{mark(self.shards_tile_domain)}",
            "",
            f"VERDICT: {'VERIFIED' if self.verified else 'NOT VERIFIED'} "
            f"(the subscriber/port map is a bijection and shard-disjoint)",
        ]
        return "\n".join(lines)


def verify_cgnat(
    config: CgnatConfig | None = None,
    shard_count: int = 2,
    max_paths: int = 10_000,
) -> CgnatProofReport:
    """Prove the deterministic mapping bijective and shard-disjoint.

    The default configuration is deliberately small (4 subscribers x 4
    ports): the concolic fork-per-subscriber makes path count linear in
    ``subscriber_count``, and the per-path obligations are independent
    of the sizes — a larger domain re-proves the same difference-logic
    facts with different constants, while the tiling side conditions
    cover the *configured* domain exhaustively whatever its size.
    """
    cfg = (
        config
        if config is not None
        else CgnatConfig(start_port=1_000, max_flows=16, subscriber_count=4)
    )
    result = ExhaustiveSymbolicEngine(max_paths=max_paths).explore(
        cgnat_symbolic_body(cfg)
    )
    checks = [check for path in result.tree.paths for check in path.checks]
    shards = cfg.partition(shard_count)
    return CgnatProofReport(
        nf="DetNat",
        paths=result.tree.path_count(),
        checks_total=len(checks),
        checks_proven=sum(1 for check in checks if check.proven),
        crash_free=result.crash_free,
        blocks_tile_domain=_tiles_domain(_block_intervals(cfg), cfg),
        shards_tile_domain=_tiles_domain(
            [(shard.start_port, shard.end_port) for shard in shards], cfg
        ),
        subscriber_count=cfg.subscriber_count,
        ports_per_subscriber=cfg.ports_per_subscriber,
        shard_count=shard_count,
        result=result,
    )


__all__ = [
    "CgnatProofReport",
    "SymbolicCgnatEnv",
    "SymbolicCgnatPacket",
    "cgnat_symbolic_body",
    "verify_cgnat",
]
