"""Symbolic environment and semantic specification for the bridge."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nat.bridge import BridgeConfig, bridge_loop_iteration, BROADCAST_MAC
from repro.verif.context import ExplorationContext
from repro.verif.expr import (
    BoolExpr,
    IntExpr,
    TRUE,
    conj,
    disj,
    eq,
    le,
    lt,
    ne,
    negate,
)
from repro.verif.models.base import as_expr
from repro.verif.models.bridge import BridgeModelState, SymbolicFrame
from repro.verif.semantics import Obligation
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.symbols import SymInt
from repro.verif.trace import PathTrace, SendRecord


class SymbolicBridgeEnv:
    """The BridgeEnv over symbolic models instead of libVig."""

    def __init__(self, ctx: ExplorationContext, config: BridgeConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.models = BridgeModelState(ctx, capacity=config.capacity)

    def current_time(self) -> SymInt:
        return self.models.current_time()

    def expire_entries(self, min_time) -> None:
        self.models.expire_items(min_time)

    def receive(self) -> Optional[SymbolicFrame]:
        return self.models.receive()

    def table_get(self, mac) -> Optional[SymInt]:
        return self.models.table_get(mac)

    def table_has_room(self):
        return self.models.size_after_expiry < self.config.capacity

    def table_learn_new(self, mac, device, now) -> None:
        self.models.table_learn_new(mac, device, now)

    def table_refresh(self, mac, device, now) -> None:
        self.models.table_refresh(mac, device, now)

    def forward(self, frame: SymbolicFrame, device) -> None:
        # Bridges do not touch headers: record MACs in the send record's
        # address fields (ips/ports are L3 concepts a bridge never sees).
        self.ctx.record_send(
            SendRecord(
                device=as_expr(device),
                src_ip=as_expr(frame.src_mac),
                src_port=as_expr(0),
                dst_ip=as_expr(frame.dst_mac),
                dst_port=as_expr(0),
                protocol=as_expr(0),
            )
        )

    def drop(self, frame: SymbolicFrame) -> None:
        self.models.drop()


def bridge_symbolic_body(
    config: BridgeConfig | None = None,
) -> Callable[[ExplorationContext], None]:
    """The bridge's stateless logic bound to symbolic models."""
    cfg = config if config is not None else BridgeConfig()

    def body(ctx: ExplorationContext) -> None:
        env = SymbolicBridgeEnv(ctx, cfg)
        bridge_loop_iteration(env, cfg)

    return body


def _c(value: int) -> IntExpr:
    return IntExpr.const(value)


class BridgeSemantics:
    """802.1D learning/filtering/aging as per-trace obligations."""

    name = "802.1D learning bridge semantics"

    def __init__(self, config: BridgeConfig | None = None) -> None:
        self.config = config if config is not None else BridgeConfig()

    @staticmethod
    def _entailed(solver: Solver, trace: PathTrace, goal: BoolExpr) -> bool:
        try:
            return solver.entails(trace.pc, goal)
        except SolverUnknown:
            return False

    def obligations(self, trace: PathTrace) -> List[Obligation]:
        cfg = self.config
        solver = Solver(trace.widths)
        by_fn: dict = {}
        lookups = []
        for call in trace.calls:
            if call.fn == "bridge_table_get":
                lookups.append(call)
            else:
                by_fn.setdefault(call.fn, call)
        obligations: List[Obligation] = []

        time_call = by_fn.get("current_time")
        expire = by_fn.get("expire_items")
        if expire is not None and time_call is not None:
            now = time_call.rets["now"]
            aging = cfg.aging_time
            obligations.append(
                Obligation(
                    "aging-threshold",
                    disj(
                        conj(
                            le(_c(aging), now),
                            eq(expire.args["min_time"], now.sub(_c(aging)).add(_c(1))),
                        ),
                        conj(lt(now, _c(aging)), eq(expire.args["min_time"], _c(0))),
                    ),
                )
            )

        recv = by_fn.get("receive")
        if recv is None or self._entailed(
            solver, trace, eq(recv.rets["received"], _c(0))
        ):
            obligations.append(
                Obligation(
                    "silent-when-idle",
                    TRUE,
                    structural_ok=not trace.sends,
                )
            )
            return obligations

        device = recv.rets["device"]
        src_mac = recv.rets["src_mac"]
        dst_mac = recv.rets["dst_mac"]
        on_a = eq(device, _c(cfg.device_a))
        on_b = eq(device, _c(cfg.device_b))
        known_port = disj(on_a, on_b)

        # Identify which lookup served learning (src) vs filtering (dst):
        src_lookup = next(
            (c for c in lookups if c.args["mac"] == src_mac), None
        )
        dst_lookup = next(
            (c for c in lookups if c.args["mac"] == dst_mac and c is not src_lookup),
            None,
        )
        learn_new = by_fn.get("bridge_table_learn_new")
        refresh = by_fn.get("bridge_table_refresh")
        now = time_call.rets["now"] if time_call is not None else None

        # -- learning obligations (802.1D clause 7.8) ----------------------
        if learn_new is not None:
            obligations.append(
                Obligation("learn-binds-source", eq(learn_new.args["mac"], src_mac))
            )
            obligations.append(
                Obligation("learn-binds-arrival-port", eq(learn_new.args["device"], device))
            )
            obligations.append(
                Obligation("learn-only-with-room", lt(learn_new.args["size"], _c(cfg.capacity)))
            )
            obligations.append(
                Obligation("learn-not-broadcast", ne(src_mac, _c(BROADCAST_MAC)))
            )
            if now is not None:
                obligations.append(
                    Obligation("learn-uses-arrival-time", eq(learn_new.args["time"], now))
                )
            if src_lookup is not None:
                obligations.append(
                    Obligation("learn-only-unknown", eq(src_lookup.rets["found"], _c(0)))
                )
        if refresh is not None:
            obligations.append(
                Obligation("refresh-binds-source", eq(refresh.args["mac"], src_mac))
            )
            if src_lookup is not None:
                obligations.append(
                    Obligation("refresh-only-known", eq(src_lookup.rets["found"], _c(1)))
                )
        if learn_new is None and refresh is None:
            # No learning happened: the source must be broadcast, the
            # port unknown, or the station unknown with the table full.
            cases = [eq(src_mac, _c(BROADCAST_MAC)), negate(known_port)]
            if src_lookup is not None:
                cases.append(
                    conj(
                        eq(src_lookup.rets["found"], _c(0)),
                        le(_c(cfg.capacity), src_lookup.rets["size"]),
                    )
                )
            obligations.append(Obligation("no-learn-justified", disj(*cases)))

        # -- forwarding/filtering obligations (clause 7.7) ------------------
        if len(trace.sends) > 1:
            obligations.append(
                Obligation(
                    "at-most-one-send",
                    TRUE,
                    structural_ok=False,
                    detail=f"{len(trace.sends)} frames emitted",
                )
            )
            return obligations
        if trace.sends:
            send = trace.sends[0]
            preserved = conj(
                eq(send.src_ip, src_mac),  # src MAC field
                eq(send.dst_ip, dst_mac),  # dst MAC field
            )
            out_mapping = disj(
                conj(on_a, eq(send.device, _c(cfg.device_b))),
                conj(on_b, eq(send.device, _c(cfg.device_a))),
            )
            if dst_lookup is None:
                # No destination lookup happened: only broadcast frames
                # may skip it (the stateless code's short-circuit).
                not_filtered = eq(dst_mac, _c(BROADCAST_MAC))
            else:
                cases = [
                    eq(dst_mac, _c(BROADCAST_MAC)),
                    eq(dst_lookup.rets["found"], _c(0)),
                ]
                if "device" in dst_lookup.rets:
                    cases.append(
                        conj(
                            eq(dst_lookup.rets["found"], _c(1)),
                            ne(dst_lookup.rets["device"], device),
                        )
                    )
                not_filtered = disj(*cases)
            obligations.append(
                Obligation(
                    "forward-justified",
                    conj(known_port, preserved, out_mapping, not_filtered),
                )
            )
        else:
            drop_cases = [negate(known_port)]
            if dst_lookup is not None and "device" in dst_lookup.rets:
                drop_cases.append(
                    conj(
                        eq(dst_lookup.rets["found"], _c(1)),
                        eq(dst_lookup.rets["device"], device),
                    )
                )
            obligations.append(Obligation("filter-justified", disj(*drop_cases)))
        return obligations
