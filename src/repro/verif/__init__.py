"""Vigor: the verification toolchain (§3, §5).

This package reproduces the paper's toolchain in Python, against Python
NF code instead of C:

- :mod:`repro.verif.expr` / :mod:`repro.verif.solver` — a symbolic
  expression language and an SMT-lite decision procedure (equalities with
  offsets, difference bounds, disequalities over bounded integers), the
  reproduction's stand-in for KLEE's and VeriFast's solvers.
- :mod:`repro.verif.symbols` / :mod:`repro.verif.context` /
  :mod:`repro.verif.engine` — exhaustive symbolic execution: the *actual*
  stateless NF code runs under a path scheduler that forks at every
  data-dependent branch, with low-level properties (P2) checked on every
  path.
- :mod:`repro.verif.models` — symbolic models of the libVig structures
  and the DPDK layer, each carrying its interface contract.
- :mod:`repro.verif.trace` — symbolic traces and the execution tree.
- :mod:`repro.verif.validator` — the lazy-proofs Validator: validates the
  models against the contracts (P5), the NF's use of the contracts (P4),
  and the RFC 3022 semantics (P1), per trace, a posteriori.
"""

from repro.verif.engine import ExhaustiveSymbolicEngine
from repro.verif.report import ProofReport
from repro.verif.validator import Validator

__all__ = ["ExhaustiveSymbolicEngine", "ProofReport", "Validator"]
