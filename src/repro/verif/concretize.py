"""Concrete replay of symbolic paths: testing the models against reality.

The lazy-proof argument says a valid model over-approximates the real
library, so every *implementation* behaviour is covered by some explored
path. This module closes the loop in the other direction: for each
explored path it synthesizes a concrete scenario — a packet satisfying
the path condition and a flow-table state matching the path's lookup
flags — runs the *real* VigNat on it, and checks the concrete behaviour
(forward vs drop, rewritten fields) matches what the trace promised.

Paths whose flag combinations only a model could exhibit (e.g. an
external-key hit on a packet not addressed to the NAT, which the real
flow table cannot produce) are reported as ``model_only`` — the honest
footprint of over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.nat.config import NatConfig
from repro.nat.vignat import VigNat
from repro.packets.builder import make_tcp_packet, make_udp_packet
from repro.packets.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    EthernetHeader,
    Packet,
)
from repro.verif.expr import eq, IntExpr
from repro.verif.solver import Solver, SolverUnknown
from repro.verif.trace import PathTrace


@dataclass
class ReplayOutcome:
    """Result of concretely replaying one symbolic path."""

    path_id: int
    status: str  # "match", "mismatch", "model_only", "skipped"
    detail: str = ""


def _calls_by_fn(trace: PathTrace) -> Dict[str, object]:
    seen: Dict[str, object] = {}
    for call in trace.calls:
        seen.setdefault(call.fn, call)
    return seen


def _entailed(solver: Solver, trace: PathTrace, goal) -> bool:
    try:
        return solver.entails(trace.pc, goal)
    except SolverUnknown:
        return False


def _extend_witness(
    trace: PathTrace, extra_constraints: List
) -> Optional[Dict[str, int]]:
    """A model of pc + implementation-realism constraints, or None."""
    solver = Solver(trace.widths)
    try:
        return solver.satisfiable(list(trace.pc) + extra_constraints)
    except SolverUnknown:
        return None


def _build_packet(witness: Dict[str, int], config: NatConfig) -> Packet:
    """A concrete packet realizing the witness's header fields."""
    ethertype = witness.get("pkt_ethertype", ETHERTYPE_IPV4)
    if ethertype != ETHERTYPE_IPV4:
        return Packet(
            eth=EthernetHeader(ethertype=ethertype),
            device=witness.get("pkt_device", 0),
        )
    proto = witness.get("pkt_proto", PROTO_TCP)
    maker = make_tcp_packet if proto == PROTO_TCP else make_udp_packet
    if proto not in (6, 17):
        # Non-flow IPv4: build an ICMP-ish packet (no L4 header).
        from repro.packets.headers import Ipv4Header

        return Packet(
            eth=EthernetHeader(),
            ipv4=Ipv4Header(
                protocol=proto,
                src_ip=witness.get("pkt_src_ip", 1),
                dst_ip=witness.get("pkt_dst_ip", 2),
            ),
            device=witness.get("pkt_device", 0),
        )
    return maker(
        witness.get("pkt_src_ip", 1),
        witness.get("pkt_dst_ip", 2),
        witness.get("pkt_src_port", 1),
        witness.get("pkt_dst_port", 1),
        device=witness.get("pkt_device", 0),
    )


def replay_path(trace: PathTrace, config: NatConfig, now: int = 10_000_000) -> ReplayOutcome:
    """Synthesize the path's scenario on a real VigNat and compare."""
    solver = Solver(trace.widths)
    calls = _calls_by_fn(trace)
    recv = calls.get("receive")
    if recv is None or _entailed(solver, trace, eq(recv.rets["received"], IntExpr.const(0))):
        return ReplayOutcome(trace.path_id, "skipped", "no packet received")

    def flag(name: str) -> Optional[int]:
        call = calls.get(name)
        if call is None:
            return None
        found = call.rets["found"]
        if _entailed(solver, trace, eq(found, IntExpr.const(1))):
            return 1
        if _entailed(solver, trace, eq(found, IntExpr.const(0))):
            return 0
        return None

    int_found = flag("dmap_get_by_first_key")
    ext_found = flag("dmap_get_by_second_key")
    alloc = calls.get("dchain_allocate_new_index")
    table_full = alloc is not None and _entailed(
        solver, trace, eq(alloc.rets["success"], IntExpr.const(0))
    )

    # Realism constraints: what the real flow table additionally forces.
    extra = []
    if ext_found == 1:
        # A real external hit requires the packet to address the NAT.
        extra.append(eq(IntExpr.var("pkt_dst_ip", 32), IntExpr.const(config.external_ip)))
        extra.append(
            eq(
                IntExpr.var("pkt_dst_port", 16),
                IntExpr.const(config.start_port),  # first allocated index = 0
            )
        )
    witness = _extend_witness(trace, extra)
    if witness is None:
        return ReplayOutcome(
            trace.path_id,
            "model_only",
            "path condition unsatisfiable under implementation constraints",
        )

    nat = VigNat(config)
    packet = _build_packet(witness, config)

    # Establish the lookup-flag preconditions in the real table.
    earlier = now - 1_000  # within the expiry window
    if int_found == 1 or ext_found == 1:
        seed = packet.clone()
        if ext_found == 1:
            # Create the flow from the inside so its reply tuple equals
            # the arriving packet: internal host sends to the packet's
            # (src_ip, src_port).
            seed = make_udp_packet(
                0x0A00000A, witness.get("pkt_src_ip", 1),
                40_000, witness.get("pkt_src_port", 1),
                device=config.internal_device,
            )
            if witness.get("pkt_proto") == PROTO_TCP:
                seed = make_tcp_packet(
                    0x0A00000A, witness.get("pkt_src_ip", 1),
                    40_000, witness.get("pkt_src_port", 1),
                    device=config.internal_device,
                )
        else:
            seed.device = config.internal_device
        if not nat.process(seed, earlier):
            return ReplayOutcome(trace.path_id, "skipped", "could not seed flow")
    if table_full:
        for i in range(config.max_flows - nat.flow_count()):
            filler = make_udp_packet(0x0B000001 + i, 0x08080808, 1000, 80,
                                     device=config.internal_device)
            nat.process(filler, earlier)

    outputs = nat.process(packet, now)

    expected_sends = len(trace.sends)
    if len(outputs) != expected_sends:
        return ReplayOutcome(
            trace.path_id,
            "mismatch",
            f"trace promises {expected_sends} sends, got {len(outputs)}",
        )
    if outputs:
        out = outputs[0]
        device_expected = trace.sends[0].device
        if device_expected.is_const and out.device != device_expected.offset:
            return ReplayOutcome(
                trace.path_id, "mismatch",
                f"device {out.device} != {device_expected.offset}",
            )
        if packet.device == config.internal_device:
            if out.ipv4 is None or out.ipv4.src_ip != config.external_ip:
                return ReplayOutcome(
                    trace.path_id, "mismatch", "outbound source not rewritten"
                )
    return ReplayOutcome(trace.path_id, "match")


def replay_all(traces: List[PathTrace], config: NatConfig) -> List[ReplayOutcome]:
    """Replay every path; see :class:`ReplayOutcome` for statuses."""
    return [replay_path(trace, config) for trace in traces]
