"""Symbolic expression language for the Vigor toolchain.

Deliberately small: unsigned bounded integers (bit-vectors viewed as
intervals ``[0, 2**width)``), sums with unit coefficients and integer
offsets, comparisons, and boolean structure. This restriction is what
keeps the decision procedure in :mod:`repro.verif.solver` complete for
the formulas NF code generates (difference logic with equalities and
disequalities) — the same pragmatic trade the paper makes by keeping the
stateless code's state simple.

Expressions are immutable and hash-consable; construction does constant
folding so concrete computations stay concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

# Widths used throughout the NF domain.
W1 = 1
W8 = 8
W16 = 16
W32 = 32
W48 = 48
W64 = 64


class ExprError(TypeError):
    """An operation outside the supported expression language."""


@dataclass(frozen=True)
class IntExpr:
    """A linear integer expression: ``sum(vars) + offset``.

    ``terms`` maps variable names to unit coefficients (+1 or -1 — the
    language admits nothing else). ``width`` is the bit-width of the
    value the expression denotes (used for overflow checking); offsets
    may temporarily push values outside, which the engine's low-level
    checks flag.
    """

    terms: Tuple[Tuple[str, int], ...]  # sorted (name, coeff) pairs
    offset: int
    width: int

    # -- construction ------------------------------------------------------
    @staticmethod
    def const(value: int, width: int = W64) -> "IntExpr":
        return IntExpr(terms=(), offset=value, width=width)

    @staticmethod
    def var(name: str, width: int) -> "IntExpr":
        return IntExpr(terms=((name, 1),), offset=0, width=width)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def _combine(self, other: "IntExpr", sign: int) -> "IntExpr":
        coeffs: Dict[str, int] = dict(self.terms)
        for name, coeff in other.terms:
            coeffs[name] = coeffs.get(name, 0) + sign * coeff
            if coeffs[name] == 0:
                del coeffs[name]
            elif coeffs[name] not in (-1, 1):
                raise ExprError(
                    "only unit coefficients are supported "
                    f"(got {coeffs[name]} for {name})"
                )
        terms = tuple(sorted(coeffs.items()))
        return IntExpr(
            terms=terms,
            offset=self.offset + sign * other.offset,
            width=max(self.width, other.width),
        )

    def add(self, other: "IntExpr") -> "IntExpr":
        return self._combine(other, +1)

    def sub(self, other: "IntExpr") -> "IntExpr":
        return self._combine(other, -1)

    # -- inspection ----------------------------------------------------------
    def variables(self) -> Iterator[str]:
        for name, _ in self.terms:
            yield name

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        total = self.offset
        for name, coeff in self.terms:
            total += coeff * assignment[name]
        return total

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms:
            parts.append(f"+{name}" if coeff > 0 else f"-{name}")
        if self.offset or not parts:
            parts.append(f"+{self.offset}" if self.offset >= 0 else str(self.offset))
        text = "".join(parts)
        return text[1:] if text.startswith("+") else text


# -- boolean expressions -----------------------------------------------------

EQ = "=="
NE = "!="
LT = "<"
LE = "<="


@dataclass(frozen=True)
class BoolExpr:
    """Base class for boolean expressions."""

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def variables(self) -> Iterator[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class BoolConst(BoolExpr):
    value: bool

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.value

    def variables(self) -> Iterator[str]:
        return iter(())

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Atom(BoolExpr):
    """``lhs OP rhs`` where OP is one of ==, !=, <, <=."""

    op: str
    lhs: IntExpr
    rhs: IntExpr

    def __post_init__(self) -> None:
        if self.op not in (EQ, NE, LT, LE):
            raise ExprError(f"unsupported comparison {self.op!r}")

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        left = self.lhs.evaluate(assignment)
        right = self.rhs.evaluate(assignment)
        if self.op == EQ:
            return left == right
        if self.op == NE:
            return left != right
        if self.op == LT:
            return left < right
        return left <= right

    def variables(self) -> Iterator[str]:
        yield from self.lhs.variables()
        yield from self.rhs.variables()

    def negated(self) -> "Atom":
        if self.op == EQ:
            return Atom(NE, self.lhs, self.rhs)
        if self.op == NE:
            return Atom(EQ, self.lhs, self.rhs)
        if self.op == LT:  # not (a < b)  ==  b <= a
            return Atom(LE, self.rhs, self.lhs)
        return Atom(LT, self.rhs, self.lhs)  # not (a <= b) == b < a

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> Iterator[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class And(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> Iterator[str]:
        for op in self.operands:
            yield from op.variables()

    def __str__(self) -> str:
        return "(" + " && ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> Iterator[str]:
        for op in self.operands:
            yield from op.variables()

    def __str__(self) -> str:
        return "(" + " || ".join(str(op) for op in self.operands) + ")"


# -- smart constructors -------------------------------------------------------


def conj(*operands: BoolExpr) -> BoolExpr:
    flat = []
    for op in operands:
        if isinstance(op, BoolConst):
            if not op.value:
                return FALSE
            continue
        if isinstance(op, And):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*operands: BoolExpr) -> BoolExpr:
    flat = []
    for op in operands:
        if isinstance(op, BoolConst):
            if op.value:
                return TRUE
            continue
        if isinstance(op, Or):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(operand: BoolExpr) -> BoolExpr:
    """Negation with NNF push-down (the solver expects NNF-friendly input)."""
    if isinstance(operand, BoolConst):
        return BoolConst(not operand.value)
    if isinstance(operand, Atom):
        return operand.negated()
    if isinstance(operand, Not):
        return operand.operand
    if isinstance(operand, And):
        return disj(*(negate(op) for op in operand.operands))
    if isinstance(operand, Or):
        return conj(*(negate(op) for op in operand.operands))
    raise ExprError(f"cannot negate {operand!r}")


def implies(antecedent: BoolExpr, consequent: BoolExpr) -> BoolExpr:
    return disj(negate(antecedent), consequent)


def compare(op: str, lhs: IntExpr, rhs: IntExpr) -> BoolExpr:
    """Build a comparison, folding when both sides are constant."""
    if lhs.is_const and rhs.is_const:
        return BoolConst(Atom(op, lhs, rhs).evaluate({}))
    # Fold identical-expression comparisons (x == x, x <= x, ...);
    # widths are irrelevant to the denoted value.
    if lhs.terms == rhs.terms and lhs.offset == rhs.offset:
        return BoolConst(op in (EQ, LE))
    return Atom(op, lhs, rhs)


def eq(lhs: IntExpr, rhs: IntExpr) -> BoolExpr:
    return compare(EQ, lhs, rhs)


def ne(lhs: IntExpr, rhs: IntExpr) -> BoolExpr:
    return compare(NE, lhs, rhs)


def lt(lhs: IntExpr, rhs: IntExpr) -> BoolExpr:
    return compare(LT, lhs, rhs)


def le(lhs: IntExpr, rhs: IntExpr) -> BoolExpr:
    return compare(LE, lhs, rhs)
