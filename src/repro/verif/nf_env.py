"""Symbolic environments: the NF bodies exhaustive symbolic execution runs.

``vignat_symbolic_body`` binds the *same* stateless function the deployed
NAT runs (:func:`repro.nat.core_logic.nat_loop_iteration`) to the
symbolic models — the Step 2(a) substitution of §3. The discard-protocol
body transcribes Fig. 1 against a chosen ring model.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Type

from repro.nat.config import NatConfig
from repro.nat.core_logic import nat_loop_iteration
from repro.verif.context import ExplorationContext
from repro.verif.models.nat import NatModelState, SymbolicPacket
from repro.verif.models.ring import _RingModelBase
from repro.verif.symbols import SymInt
from repro.verif.trace import SendRecord
from repro.verif.models.base import as_expr


class SymbolicNatEnv:
    """The NatEnv over symbolic models instead of libVig."""

    def __init__(self, ctx: ExplorationContext, config: NatConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.models = NatModelState(
            ctx, capacity=config.max_flows, start_port=config.start_port
        )

    # -- NatEnv interface ----------------------------------------------------
    def current_time(self) -> SymInt:
        self._now = self.models.current_time()
        return self._now

    def expire_flows(self, min_time) -> None:
        self.models.expire_items(min_time)

    def receive(self) -> Optional[SymbolicPacket]:
        return self.models.receive()

    @staticmethod
    def _key_of(packet: SymbolicPacket) -> dict:
        return {
            "src_ip": packet.src_ip,
            "src_port": packet.src_port,
            "dst_ip": packet.dst_ip,
            "dst_port": packet.dst_port,
            "protocol": packet.protocol,
        }

    def flow_table_get_internal(self, packet: SymbolicPacket) -> Optional[SymInt]:
        return self.models.dmap_get_by_first_key(self._key_of(packet))

    def flow_table_get_external(self, packet: SymbolicPacket) -> Optional[SymInt]:
        return self.models.dmap_get_by_second_key(self._key_of(packet))

    def flow_table_create(self, packet: SymbolicPacket, now) -> Optional[SymInt]:
        index = self.models.dchain_allocate_new_index(now)
        if index is None:
            return None
        external_port = index + self.config.start_port
        self.models.dmap_put(index, self._key_of(packet), external_port, now)
        return index

    def flow_table_rejuvenate(self, index: SymInt, now) -> None:
        self.models.dchain_rejuvenate_index(index, now)

    def flow_external_port(self, index: SymInt) -> SymInt:
        _ip, _port, ext_port = self.models.dmap_get_value(index)
        return ext_port

    def flow_internal_endpoint(self, index: SymInt) -> Tuple[SymInt, SymInt]:
        int_ip, int_port, _ext = self.models.dmap_get_value(index)
        return int_ip, int_port

    def emit(self, packet, device, src_ip, src_port, dst_ip, dst_port) -> None:
        self.ctx.record_send(
            SendRecord(
                device=as_expr(device),
                src_ip=as_expr(src_ip),
                src_port=as_expr(src_port),
                dst_ip=as_expr(dst_ip),
                dst_port=as_expr(dst_port),
                protocol=as_expr(packet.protocol),
            )
        )

    def drop(self, packet) -> None:
        self.models.drop()


def vignat_symbolic_body(
    config: NatConfig | None = None,
) -> Callable[[ExplorationContext], None]:
    """The NF body the engine explores: the real stateless NAT logic."""
    cfg = config if config is not None else NatConfig()

    def body(ctx: ExplorationContext) -> None:
        env = SymbolicNatEnv(ctx, cfg)
        nat_loop_iteration(env, cfg)

    return body


def discard_symbolic_body(
    ring_model: Type[_RingModelBase],
    capacity: int = 512,
) -> Callable[[ExplorationContext], None]:
    """The Fig. 1 discard-protocol loop body over a chosen ring model."""

    def body(ctx: ExplorationContext) -> None:
        ring = ring_model(ctx, capacity)
        if not ring.ring_full():
            packet = ring.receive()
            if packet is not None:
                if packet.dst_port != 9:
                    ring.ring_push_back(packet)
        if not ring.ring_empty():
            if ring.can_send():
                packet = ring.ring_pop_front()
                ctx.record_send(
                    SendRecord(
                        device=as_expr(1),
                        src_ip=as_expr(0),
                        src_port=as_expr(0),
                        dst_ip=as_expr(0),
                        dst_port=as_expr(packet.dst_port),
                        protocol=as_expr(0),
                    )
                )

    return body
