"""Symbolic values that ordinary Python NF code can compute with.

``SymInt`` and ``SymBool`` wrap expressions from :mod:`repro.verif.expr`
and overload the operators the stateless NF code uses. The crucial hook
is ``SymBool.__bool__``: when an ``if`` statement forces a symbolic
boolean to a concrete truth value, the exploration context decides the
branch and schedules the alternative — this is how the engine forks the
*actual* NF code without any translation step (the reproduction's
equivalent of KLEE interpreting LLVM bitcode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.verif.expr import (
    BoolExpr,
    IntExpr,
    compare,
    conj,
    disj,
    eq,
    le,
    lt,
    ne,
    negate,
)

if TYPE_CHECKING:
    from repro.verif.context import ExplorationContext

IntLike = Union[int, "SymInt"]


class SymInt:
    """A bounded unsigned integer, possibly symbolic."""

    __slots__ = ("expr", "ctx")

    def __init__(self, expr: IntExpr, ctx: "ExplorationContext") -> None:
        self.expr = expr
        self.ctx = ctx

    def _lift(self, other: IntLike) -> IntExpr:
        if isinstance(other, SymInt):
            return other.expr
        if isinstance(other, int):
            return IntExpr.const(other, self.expr.width)
        raise TypeError(f"cannot mix SymInt with {type(other).__name__}")

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: IntLike) -> "SymInt":
        result = SymInt(self.expr.add(self._lift(other)), self.ctx)
        self.ctx.check_arith(result)
        return result

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "SymInt":
        result = SymInt(self.expr.sub(self._lift(other)), self.ctx)
        self.ctx.check_arith(result)
        return result

    def __rsub__(self, other: IntLike) -> "SymInt":
        lifted = SymInt(self._lift(other), self.ctx)
        return lifted.__sub__(self)

    # -- comparisons ----------------------------------------------------------
    def __eq__(self, other: object) -> "SymBool":  # type: ignore[override]
        return SymBool(eq(self.expr, self._lift(other)), self.ctx)  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "SymBool":  # type: ignore[override]
        return SymBool(ne(self.expr, self._lift(other)), self.ctx)  # type: ignore[arg-type]

    def __lt__(self, other: IntLike) -> "SymBool":
        return SymBool(lt(self.expr, self._lift(other)), self.ctx)

    def __le__(self, other: IntLike) -> "SymBool":
        return SymBool(le(self.expr, self._lift(other)), self.ctx)

    def __gt__(self, other: IntLike) -> "SymBool":
        return SymBool(lt(self._lift(other), self.expr), self.ctx)

    def __ge__(self, other: IntLike) -> "SymBool":
        return SymBool(le(self._lift(other), self.expr), self.ctx)

    def __hash__(self) -> int:
        return hash(self.expr)

    def __repr__(self) -> str:
        return f"SymInt({self.expr})"

    def __bool__(self) -> bool:
        raise TypeError(
            "SymInt has no truth value; compare it explicitly "
            "(e.g. `if x == 0:` instead of `if x:`)"
        )


class SymBool:
    """A possibly-symbolic boolean; ``if`` on it forks the execution."""

    __slots__ = ("expr", "ctx")

    def __init__(self, expr: BoolExpr, ctx: "ExplorationContext") -> None:
        self.expr = expr
        self.ctx = ctx

    def __bool__(self) -> bool:
        return self.ctx.branch(self.expr)

    def __and__(self, other: "SymBool") -> "SymBool":
        return SymBool(conj(self.expr, other.expr), self.ctx)

    def __or__(self, other: "SymBool") -> "SymBool":
        return SymBool(disj(self.expr, other.expr), self.ctx)

    def __invert__(self) -> "SymBool":
        return SymBool(negate(self.expr), self.ctx)

    def __repr__(self) -> str:
        return f"SymBool({self.expr})"


def compare_mixed(
    op: str, lhs: IntLike, rhs: IntLike, ctx: "ExplorationContext"
) -> SymBool:
    """Comparison helper when either side may be a plain int."""

    def lift(value: IntLike) -> IntExpr:
        if isinstance(value, SymInt):
            return value.expr
        return IntExpr.const(value)

    return SymBool(compare(op, lift(lhs), lift(rhs)), ctx)
