"""Exhaustive symbolic execution: the reproduction's KLEE (§5.2.1).

The engine repeatedly runs the NF body under an
:class:`~repro.verif.context.ExplorationContext`, each run following a
*path plan* (a prefix of branch decisions). Whenever a run discovers a
new two-way choice point, the unexplored alternative is scheduled; the
worklist drains when every feasible path has been executed — exhaustive
symbolic execution, with one loop iteration explored under havoced state
exactly as the paper's loop-invariant havocing prescribes.

Any Python exception escaping the NF body is a *crash*: it is recorded
on the trace and fails the crash-freedom property, the most basic of the
P2 low-level properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List

from repro.verif.context import ExplorationContext, PathAbort
from repro.verif.trace import ExecutionTree

NfBody = Callable[[ExplorationContext], None]


@dataclass
class ExplorationStats:
    """Bookkeeping reported alongside the execution tree."""

    paths: int = 0
    aborted: int = 0
    solver_queries: int = 0
    wall_seconds: float = 0.0


@dataclass
class ExplorationResult:
    tree: ExecutionTree
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    #: Branch coverage: source site -> set of outcomes taken ({True, False}).
    coverage: dict = field(default_factory=dict)

    @property
    def crash_free(self) -> bool:
        return not self.tree.crashed_paths()

    @property
    def all_checks_proven(self) -> bool:
        return not self.tree.violations()

    def one_sided_branches(self) -> list:
        """Branch sites where only one outcome was ever feasible.

        Exhaustive exploration covers every *feasible* direction, so a
        one-sided site means the other direction is dead under the
        models — worth a look (dead code, or an over-strong model).
        """
        return sorted(
            site for site, outcomes in self.coverage.items() if len(outcomes) < 2
        )

    def render_coverage(self) -> str:
        lines = ["Branch coverage (exhaustive symbolic execution):"]
        for site in sorted(self.coverage):
            outcomes = self.coverage[site]
            marker = "both" if len(outcomes) == 2 else f"only {outcomes}"
            lines.append(f"  {site}: {marker}")
        return "\n".join(lines)


class ExhaustiveSymbolicEngine:
    """Worklist-driven exhaustive exploration of an NF body."""

    def __init__(self, max_paths: int = 10_000, check_arithmetic: bool = True) -> None:
        self.max_paths = max_paths
        self.check_arithmetic = check_arithmetic

    def explore(self, body: NfBody) -> ExplorationResult:
        """Run ``body`` down every feasible path."""
        started = time.monotonic()
        stats = ExplorationStats()
        tree = ExecutionTree()
        coverage: dict = {}
        worklist: List[List[bool]] = [[]]
        path_id = 0

        while worklist:
            if path_id >= self.max_paths:
                raise RuntimeError(
                    f"path explosion: more than {self.max_paths} paths"
                )
            plan = worklist.pop()
            ctx = ExplorationContext(
                plan=plan, check_arithmetic=self.check_arithmetic
            )
            crashed: str | None = None
            try:
                body(ctx)
            except PathAbort:
                stats.aborted += 1
                stats.solver_queries += ctx.solver_queries
                continue
            except Exception as exc:  # noqa: BLE001 - crash detection is the point
                crashed = f"{type(exc).__name__}: {exc}"
            trace = ctx.finish(path_id, crashed=crashed)
            tree.paths.append(trace)
            path_id += 1
            stats.solver_queries += ctx.solver_queries
            for site, outcome in ctx.covered:
                coverage.setdefault(site, set()).add(outcome)
            # Schedule the flip of every fresh, feasible choice point
            # discovered beyond the replayed plan.
            for position in range(len(plan), len(ctx.decisions)):
                outcome = ctx.decisions[position]
                if outcome.flip_feasible:
                    flipped = [o.value for o in ctx.decisions[:position]]
                    flipped.append(not outcome.value)
                    worklist.append(flipped)

        stats.paths = len(tree.paths)
        stats.wall_seconds = time.monotonic() - started
        return ExplorationResult(tree=tree, stats=stats, coverage=coverage)
