"""An SMT-lite decision procedure for the Vigor expression language.

Decides satisfiability of boolean combinations of atoms over bounded
unsigned integers, where atoms are (dis)equalities and order comparisons
between linear expressions with unit coefficients. The fragment the NF
code and the libVig contracts generate is *difference logic with
equalities and disequalities*, for which the procedure below is a
complete classic:

1. boolean structure is explored DPLL-style over the expression tree;
2. at each leaf, the conjunction of atoms goes to the theory solver:
   - equalities feed a weighted union-find (``x = y + c``),
   - order atoms become difference bounds checked for negative cycles
     with Bellman-Ford (a virtual ZERO node carries the domain bounds),
   - the shortest-path potentials yield a concrete assignment,
   - disequalities are repaired by sliding variables within their slack;
3. every SAT verdict is certified by evaluating all atoms under the
   produced model, so a SAT answer is never wrong; UNSAT verdicts come
   only from sound arguments (negative cycle, equality contradiction, or
   exhausted finite domains).

Anything outside the fragment raises :class:`SolverUnknown`, which
callers must treat conservatively (a failed proof, never a fake one).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.verif.expr import (
    EQ,
    LE,
    LT,
    NE,
    And,
    Atom,
    BoolConst,
    BoolExpr,
    Not,
    Or,
    negate,
)

_ZERO = "$zero"
_ENUM_LIMIT = 200_000


class SolverUnknown(Exception):
    """The formula falls outside the decidable fragment."""


Assignment = Dict[str, int]


class _UnionFind:
    """Weighted union-find: tracks val(x) = val(root) + offset."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._offset: Dict[str, int] = {}

    def add(self, node: str) -> None:
        if node not in self._parent:
            self._parent[node] = node
            self._offset[node] = 0

    def find(self, node: str) -> Tuple[str, int]:
        self.add(node)
        root = node
        offset = 0
        while self._parent[root] != root:
            offset += self._offset[root]
            root = self._parent[root]
        # Path compression with offset adjustment.
        cursor = node
        carried = 0
        while self._parent[cursor] != cursor:
            parent = self._parent[cursor]
            step = self._offset[cursor]
            self._parent[cursor] = root
            self._offset[cursor] = offset - carried
            carried += step
            cursor = parent
        return root, offset

    def union(self, a: str, b: str, delta: int) -> bool:
        """Assert val(a) = val(b) + delta; False on contradiction."""
        root_a, off_a = self.find(a)
        root_b, off_b = self.find(b)
        if root_a == root_b:
            return off_a == off_b + delta
        # val(root_a) = val(a) - off_a = val(b) + delta - off_a
        #             = val(root_b) + off_b + delta - off_a
        self._parent[root_a] = root_b
        self._offset[root_a] = off_b + delta - off_a
        return True


def _flatten(formulas: Iterable[BoolExpr]) -> Optional[List[BoolExpr]]:
    """Decompose conjunctions and constants; None means trivially UNSAT."""
    work: List[BoolExpr] = []
    stack = list(formulas)
    while stack:
        formula = stack.pop()
        if isinstance(formula, BoolConst):
            if not formula.value:
                return None
            continue
        if isinstance(formula, Not):
            stack.append(negate(formula.operand))
            continue
        if isinstance(formula, And):
            stack.extend(formula.operands)
            continue
        work.append(formula)
    return work


class Solver:
    """Decision procedure over variables with known bit-widths."""

    def __init__(self, widths: Mapping[str, int]) -> None:
        self._widths = widths
        self.theory_checks = 0

    def _domain(self, name: str) -> Tuple[int, int]:
        width = self._widths.get(name)
        if width is None:
            raise SolverUnknown(f"unknown variable {name!r}")
        return 0, (1 << width) - 1

    # -- public API ---------------------------------------------------------
    def satisfiable(self, formulas: Sequence[BoolExpr]) -> Optional[Assignment]:
        """A model satisfying every formula, or None when UNSAT.

        The model assigns every variable appearing anywhere in the input
        (variables not constrained on the chosen boolean branch get
        their domain minimum), so callers can evaluate the formulas
        under it directly.
        """
        flat = _flatten(formulas)
        if flat is None:
            return None
        model = self._search(flat, [])
        if model is None:
            return None
        for formula in formulas:
            for name in formula.variables():
                if name not in model:
                    model[name] = self._domain(name)[0]
        return model

    def entails(self, assumptions: Sequence[BoolExpr], goal: BoolExpr) -> bool:
        """True when ``assumptions ⟹ goal`` is valid."""
        return self.satisfiable(list(assumptions) + [negate(goal)]) is None

    def equivalent_under(
        self,
        assumptions: Sequence[BoolExpr],
        left: BoolExpr,
        right: BoolExpr,
    ) -> bool:
        """True when left ⟺ right under the assumptions."""
        return self.entails(list(assumptions) + [left], right) and self.entails(
            list(assumptions) + [right], left
        )

    # -- boolean search -------------------------------------------------------
    def _search(
        self, pending: List[BoolExpr], atoms: List[Atom]
    ) -> Optional[Assignment]:
        pending = list(pending)
        atoms = list(atoms)
        while pending:
            formula = pending.pop()
            if isinstance(formula, BoolConst):
                if not formula.value:
                    return None
                continue
            if isinstance(formula, Not):
                pending.append(negate(formula.operand))
                continue
            if isinstance(formula, And):
                pending.extend(formula.operands)
                continue
            if isinstance(formula, Or):
                for choice in formula.operands:
                    model = self._search(pending + [choice], atoms)
                    if model is not None:
                        return model
                return None
            if isinstance(formula, Atom):
                atoms.append(formula)
                continue
            raise SolverUnknown(f"unsupported formula {formula!r}")
        return self._theory_check(atoms)

    # -- theory: conjunction of atoms ------------------------------------------
    def _theory_check(self, atoms: List[Atom]) -> Optional[Assignment]:
        self.theory_checks += 1
        equalities: List[Tuple[Dict[str, int], int]] = []
        bounds: List[Tuple[Dict[str, int], int]] = []  # sum + c <= 0
        disequalities: List[Tuple[Dict[str, int], int]] = []
        residual: List[Atom] = []
        variables: set[str] = set()

        for atom in atoms:
            delta = atom.lhs.sub(atom.rhs)
            coeffs = dict(delta.terms)
            if not coeffs:
                # The two sides differ by a constant: decide outright.
                value = delta.offset  # lhs - rhs
                holds = {
                    EQ: value == 0,
                    NE: value != 0,
                    LT: value < 0,
                    LE: value <= 0,
                }[atom.op]
                if not holds:
                    return None
                continue
            variables.update(coeffs)
            if atom.op == EQ:
                equalities.append((coeffs, delta.offset))
            elif atom.op == NE:
                disequalities.append((coeffs, delta.offset))
            elif atom.op == LE:
                bounds.append((coeffs, delta.offset))
            elif atom.op == LT:
                bounds.append((coeffs, delta.offset + 1))
            if not self._is_difference(coeffs):
                residual.append(atom)

        # 1. Equalities through weighted union-find.
        uf = _UnionFind()
        uf.add(_ZERO)
        for name in variables:
            uf.add(name)
        for coeffs, offset in equalities:
            if not self._is_difference(coeffs):
                continue  # handled in residual re-verification
            pos = [n for n, c in coeffs.items() if c == 1]
            neg = [n for n, c in coeffs.items() if c == -1]
            # pos - neg + offset == 0
            a = pos[0] if pos else _ZERO
            b = neg[0] if neg else _ZERO
            # val(a) - val(b) + offset == 0  ->  val(a) = val(b) - offset
            if not uf.union(a, b, -offset):
                return None

        # 1b. Disequalities fully determined by the equality classes:
        # if both sides share a representative the disequality is a
        # constant fact — contradiction means UNSAT right here.
        for coeffs, offset in disequalities:
            if not self._is_difference(coeffs) or not coeffs:
                continue
            pos = [n for n, c in coeffs.items() if c == 1]
            neg = [n for n, c in coeffs.items() if c == -1]
            a = pos[0] if pos else _ZERO
            b = neg[0] if neg else _ZERO
            rep_a, off_a = uf.find(a)
            rep_b, off_b = uf.find(b)
            if rep_a == rep_b and off_a - off_b + offset == 0:
                return None

        # 2. Difference bounds on representatives; Bellman-Ford.
        #    Constraint form: val(a) - val(b) <= c  (edge b -> a, weight c).
        edges: List[Tuple[str, str, int]] = []

        def add_bound(a: str, off_a: int, b: str, off_b: int, c: int) -> None:
            # (rep_a + off_a) - (rep_b + off_b) <= c
            edges.append((b, a, c - off_a + off_b))

        for coeffs, offset in bounds:
            if not self._is_difference(coeffs):
                continue
            pos = [n for n, c in coeffs.items() if c == 1]
            neg = [n for n, c in coeffs.items() if c == -1]
            a = pos[0] if pos else _ZERO
            b = neg[0] if neg else _ZERO
            rep_a, off_a = uf.find(a)
            rep_b, off_b = uf.find(b)
            # val(a) - val(b) + offset <= 0 -> val(a) - val(b) <= -offset
            add_bound(rep_a, off_a, rep_b, off_b, -offset)

        # Domain constraints for every variable, relative to ZERO. Note
        # ZERO itself may have been unioned into a class with a non-zero
        # offset (e.g. from "1 == x"), so its own offset matters.
        rep_zero, off_zero = uf.find(_ZERO)
        for name in variables:
            lo, hi = self._domain(name)
            rep, off = uf.find(name)
            add_bound(rep, off, rep_zero, off_zero, hi)  # x - 0 <= hi
            add_bound(rep_zero, off_zero, rep, off, -lo)  # 0 - x <= -lo

        node_set = {rep_zero}
        for name in variables:
            node_set.add(uf.find(name)[0])
        for src, dst, _ in edges:
            node_set.add(src)
            node_set.add(dst)
        nodes = sorted(node_set)
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)

        # Floyd-Warshall closure of the difference-bound matrix:
        # dist[a][b] is the tightest bound on val(b) - val(a).
        inf = float("inf")
        dist = [[inf] * n for _ in range(n)]
        for i in range(n):
            dist[i][i] = 0
        for src, dst, weight in edges:
            i, j = index[src], index[dst]
            if weight < dist[i][j]:
                dist[i][j] = weight
        for k in range(n):
            dk = dist[k]
            for i in range(n):
                dik = dist[i][k]
                if dik == inf:
                    continue
                di = dist[i]
                for j in range(n):
                    alt = dik + dk[j]
                    if alt < di[j]:
                        di[j] = alt
        for i in range(n):
            if dist[i][i] < 0:
                return None  # negative cycle: difference bounds UNSAT

        # Tight intervals per variable relative to the ZERO node; domain
        # edges guarantee every variable's representative is bounded.
        z = index[rep_zero]
        assignment: Assignment = {}
        intervals: Dict[str, Tuple[int, int]] = {}
        for name in variables:
            rep, off = uf.find(name)
            r = index[rep]
            # val(name) = val(rep) + off and val(rep_zero) = -off_zero,
            # so the DBM's rep-to-rep distances shift by off - off_zero.
            lo = int(-dist[r][z]) + off - off_zero
            hi = int(dist[z][r]) + off - off_zero
            if lo > hi:
                return None
            intervals[name] = (lo, hi)
            # val(rep) = -dist[rep][zero] is a canonical DBM solution.
            assignment[name] = lo

        # 3. Decompose into variable-connectivity components and finish
        #    each independently: disequality repair, then (if needed)
        #    bounded enumeration over the DBM-tightened intervals. The
        #    split keeps unrelated unconstrained variables from ruining
        #    the enumeration's completeness.
        comp_uf = _UnionFind()
        for name in variables:
            comp_uf.add(name)
        for atom in atoms:
            names = [n for n, _ in atom.lhs.sub(atom.rhs).terms]
            for other in names[1:]:
                comp_uf.union(names[0], other, 0)
        components: Dict[str, List[str]] = {}
        for name in variables:
            root, _ = comp_uf.find(name)
            components.setdefault(root, []).append(name)
        atom_groups: Dict[str, List[Atom]] = {root: [] for root in components}
        for atom in atoms:
            names = [n for n, _ in atom.lhs.sub(atom.rhs).terms]
            if names:
                atom_groups[comp_uf.find(names[0])[0]].append(atom)

        # Variables that appear syntactically but cancel out (x == x)
        # still deserve a value in the certified model.
        appearing: set[str] = set()
        for atom in atoms:
            appearing.update(atom.lhs.variables())
            appearing.update(atom.rhs.variables())

        model: Assignment = {}
        deferred: Optional[SolverUnknown] = None
        for root, names in components.items():
            group = atom_groups[root]
            seed = {name: assignment[name] for name in names}
            part = self._repair(group, seed, uf, intervals)
            if part is None:
                try:
                    part = self._enumerate(group, seed, intervals)
                except SolverUnknown as unknown:
                    deferred = unknown
                    continue
                if part is None:
                    return None  # this component is genuinely UNSAT
            model.update(part)
        if deferred is not None:
            raise deferred
        for name in appearing:
            if name not in model:
                model[name] = self._domain(name)[0]
        return model

    @staticmethod
    def _is_difference(coeffs: Dict[str, int]) -> bool:
        if len(coeffs) > 2:
            return False
        values = sorted(coeffs.values())
        if len(values) == 2:
            return values == [-1, 1]
        if len(values) == 1:
            return values[0] in (-1, 1)
        return True

    @staticmethod
    def _violated(atoms: Sequence[Atom], assignment: Assignment) -> Optional[Atom]:
        for atom in atoms:
            if not atom.evaluate(assignment):
                return atom
        return None

    def _repair(
        self,
        atoms: Sequence[Atom],
        assignment: Assignment,
        uf: _UnionFind,
        intervals: Dict[str, Tuple[int, int]],
    ) -> Optional[Assignment]:
        """Perturb the DBM solution until disequalities hold (bounded tries)."""
        model = dict(assignment)
        for _attempt in range(8):
            violated = self._violated(atoms, model)
            if violated is None:
                return model
            if violated.op != NE:
                return None  # order/equality violated: leave it to enumeration
            # Try shifting each variable of the atom by small deltas.
            names = list(dict(violated.lhs.sub(violated.rhs).terms))
            repaired = False
            for name in names:
                lo, hi = intervals.get(name, self._domain(name))
                for delta in (1, -1, 2, -2, 3, -3):
                    candidate = dict(model)
                    value = candidate[name] + delta
                    if not lo <= value <= hi:
                        continue
                    candidate[name] = value
                    # Shifting one member of an equality class breaks the
                    # class; shift the whole class together.
                    rep, off = uf.find(name)
                    for other in model:
                        orep, ooff = uf.find(other)
                        if orep == rep and other != name:
                            candidate[other] = value - off + ooff
                    if self._violated(atoms, candidate) is None:
                        model = candidate
                        repaired = True
                        break
                if repaired:
                    break
            if not repaired:
                return None
        return None

    def _enumerate(
        self,
        atoms: Sequence[Atom],
        seed: Assignment,
        intervals: Dict[str, Tuple[int, int]] | None = None,
    ) -> Optional[Assignment]:
        """Candidate-set enumeration; complete when candidates cover domains.

        ``intervals`` are the DBM-tightened per-variable bounds; when the
        tight interval is small enough it is enumerated exhaustively,
        which makes the UNSAT verdict sound for that variable.
        """
        intervals = intervals or {}
        variables = sorted(seed)
        if not variables:
            return dict(seed) if self._violated(atoms, seed) is None else None
        candidates: Dict[str, List[int]] = {}
        complete = True
        for name in variables:
            lo, hi = intervals.get(name, self._domain(name))
            dlo, dhi = self._domain(name)
            lo, hi = max(lo, dlo), min(hi, dhi)
            if lo > hi:
                return None
            interesting = {lo, hi, seed[name]}
            for atom in atoms:
                delta = atom.lhs.sub(atom.rhs)
                coeffs = dict(delta.terms)
                if name in coeffs and len(coeffs) == 1:
                    pivot = -delta.offset * coeffs[name]
                    for value in (pivot - 1, pivot, pivot + 1):
                        if lo <= value <= hi:
                            interesting.add(value)
            if hi - lo + 1 <= 64:
                values = list(range(lo, hi + 1))
            else:
                values = sorted(v for v in interesting if lo <= v <= hi)
                complete = False
            candidates[name] = values
        total = 1
        for values in candidates.values():
            total *= max(1, len(values))
            if total > _ENUM_LIMIT:
                raise SolverUnknown("enumeration space too large")
        for combo in itertools.product(*(candidates[n] for n in variables)):
            model = dict(zip(variables, combo))
            if self._violated(atoms, model) is None:
                return model
        if complete:
            return None
        raise SolverUnknown("incomplete candidate enumeration found no model")
