"""Exposition: render metric snapshots as Prometheus text or JSON.

The Prometheus text format is the lingua franca of NF telemetry (DPDK's
telemetry socket, sonic-mgmt's counter polling, every scrape pipeline);
rendering our snapshots in it means any standard tooling can consume a
sweep's metrics without bespoke parsing. The JSON form is the snapshot
dict itself (schema ``repro-obs/v1``), the same shape embedded in
``BENCH_*.json`` benchmark records.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import COUNTER, GAUGE, HISTOGRAM

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _label_pairs(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", key)}="{_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict) -> str:
    """The snapshot in the Prometheus text exposition format.

    Counters get a ``_total``-preserving name pass-through (our metric
    names already carry their unit/suffix conventions), histograms
    expand to cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``, exactly as a scrape endpoint would serve them.
    """
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = _metric_name(metric["name"])
        kind = metric["kind"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape(metric['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in metric["samples"]:
            labels = sample.get("labels", {})
            if kind == HISTOGRAM:
                lines.extend(_histogram_lines(name, labels, sample["histogram"]))
            else:
                lines.append(
                    f"{name}{_label_pairs(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(name: str, labels: Dict[str, str], data: Dict) -> List[str]:
    hist = LatencyHistogram.from_dict(data)
    lines: List[str] = []
    cumulative = 0
    for index, count in enumerate(hist.counts):
        if not count:
            continue
        cumulative += count
        le = {**labels, "le": str(LatencyHistogram.bucket_upper_bound(index))}
        lines.append(f"{name}_bucket{_label_pairs(le)} {cumulative}")
    inf = {**labels, "le": "+Inf"}
    lines.append(f"{name}_bucket{_label_pairs(inf)} {hist.count}")
    lines.append(f"{name}_sum{_label_pairs(labels)} {hist.total}")
    lines.append(f"{name}_count{_label_pairs(labels)} {hist.count}")
    return lines


def render_json(snapshot: Dict, indent: int = 2) -> str:
    """The snapshot as pretty JSON (the ``repro-obs/v1`` schema)."""
    return json.dumps(snapshot, indent=indent, sort_keys=False) + "\n"


def write_snapshot_files(snapshot: Dict, directory, stem: str) -> Dict[str, str]:
    """Persist a snapshot as ``<stem>.metrics.json`` + ``<stem>.prom``."""
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / f"{stem}.metrics.json"
    prom_path = directory / f"{stem}.prom"
    json_path.write_text(render_json(snapshot))
    prom_path.write_text(render_prometheus(snapshot))
    return {"json": str(json_path), "prom": str(prom_path)}


def sample_value(snapshot: Dict, name: str, labels: Dict[str, str] | None = None):
    """Look one sample's value up in a snapshot (histograms: the dict).

    Returns None when the metric or label set is absent — convenient
    for tests and for the benchmark-regression comparator.
    """
    wanted = dict(labels or {})
    for metric in snapshot.get("metrics", []):
        if metric["name"] != name:
            continue
        for sample in metric["samples"]:
            if sample.get("labels", {}) == wanted:
                if metric["kind"] == HISTOGRAM:
                    return sample["histogram"]
                return sample["value"]
    return None


def total_value(snapshot: Dict, name: str) -> float | None:
    """Sum (or max, per the metric's merge strategy) over all samples."""
    for metric in snapshot.get("metrics", []):
        if metric["name"] != name or metric["kind"] == HISTOGRAM:
            continue
        values = [s["value"] for s in metric["samples"]]
        if not values:
            return None
        if metric["kind"] == GAUGE and metric.get("merge") == "max":
            return max(values)
        return sum(values)
    return None


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "render_json",
    "render_prometheus",
    "sample_value",
    "total_value",
    "write_snapshot_files",
]
