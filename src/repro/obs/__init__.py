"""``repro.obs`` — the unified observability layer.

Three pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.registry` — a typed metrics registry (Counter /
  Gauge / Histogram with label sets). Components expose their existing
  counters through *callback* instruments collected on demand, so the
  wiring costs nothing per packet.
- :mod:`repro.obs.histogram` — log2-bucketed latency histograms with
  exact, associative merging (per-worker → box-wide) and monotone
  percentile extraction (p50/p99/p99.9).
- :mod:`repro.obs.flight` — a bounded flight-recorder ring of
  per-packet trace events (rx/steer/slow-path/fastpath-hit/tx/drop
  with reason codes) that dumps the last N events — offending packets
  as pcap — on anomaly (drop spike, divergence, pool high-water).

**The module-level recorder.** Per-packet *event* observability (trace
events into the flight recorder) routes through one module-level
recorder. By default it is the no-op recorder: ``recorder().active``
is False and data paths skip their trace calls entirely, so a sweep
with observability off is byte-identical to one with the layer never
imported. ``enable_observability()`` (or ``REPRO_OBS=1`` in the
environment) swaps in a live recorder with a flight-recorder ring.

Structural metrics (pool, NIC, runtime, fastpath, flow table) do not
depend on the recorder at all: they are collected by *snapshotting* a
component, which registers callback instruments and reads them once —
enabled or not, the hot path is untouched.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.expo import (
    render_json,
    render_prometheus,
    sample_value,
    total_value,
    write_snapshot_files,
)
from repro.obs.flight import (
    AnomalyMonitor,
    FlightRecorder,
    TraceDiff,
    TraceEvent,
    first_divergence,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import (
    MERGE_MAX,
    MERGE_SUM,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    with_labels,
)


class Recorder:
    """A live event recorder: trace events flow into a flight ring."""

    active = True

    def __init__(self, ring_capacity: int = 1024) -> None:
        self.flight = FlightRecorder(ring_capacity)

    def trace(
        self,
        stage: str,
        t_us: int = 0,
        worker: int = 0,
        reason: str = "",
        detail: str = "",
        wire: Optional[bytes] = None,
    ) -> None:
        self.flight.record(
            stage, t_us=t_us, worker=worker, reason=reason, detail=detail, wire=wire
        )


class _NullRecorder:
    """The default: every observation is a no-op, ``active`` is False.

    Data paths check ``recorder().active`` once per burst and skip all
    trace calls when it is off, so disabled observability costs one
    attribute read per burst — nothing per packet.
    """

    active = False
    flight = None

    def trace(self, *args, **kwargs) -> None:
        pass


NULL_RECORDER = _NullRecorder()
_RECORDER = NULL_RECORDER


def recorder():
    """The module-level recorder (the no-op recorder unless enabled)."""
    return _RECORDER


def observability_enabled() -> bool:
    return _RECORDER.active


def enable_observability(ring_capacity: int = 1024) -> Recorder:
    """Swap in a live recorder; returns it (idempotent per call)."""
    global _RECORDER
    _RECORDER = Recorder(ring_capacity)
    return _RECORDER


def disable_observability() -> None:
    """Restore the no-op recorder."""
    global _RECORDER
    _RECORDER = NULL_RECORDER


if os.environ.get("REPRO_OBS", "0") not in ("", "0", "false", "no"):
    enable_observability()


def snapshot_of_counters(
    counters, *, labels=None, prefix: str = "", help_text: str = ""
):
    """A one-off snapshot from a flat ``{name: value}`` counter dict.

    Convenience for publishing legacy ``op_counters()``-style mappings
    (the sweeps' per-point counters) in the shared snapshot schema.
    """
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.counter_fn(
            f"{prefix}{name}", lambda v=value: v, help_text, labels
        )
    return registry.snapshot()


__all__ = [
    "AnomalyMonitor",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MERGE_MAX",
    "MERGE_SUM",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "Recorder",
    "SNAPSHOT_SCHEMA",
    "TraceDiff",
    "TraceEvent",
    "disable_observability",
    "enable_observability",
    "first_divergence",
    "merge_snapshots",
    "with_labels",
    "observability_enabled",
    "recorder",
    "render_json",
    "render_prometheus",
    "sample_value",
    "snapshot_of_counters",
    "total_value",
    "write_snapshot_files",
]
