"""The flight recorder: a bounded ring of per-packet trace events.

Inspired by hardware flight recorders and OVS's last-N-packets
tracing: the data path appends one compact event per interesting
per-packet step (rx, steer, slow-path, fastpath-hit, tx, drop — with a
reason code), the ring keeps only the last N, and on an anomaly —
drop spike, differential divergence, pool high-water breach — the ring
is dumped: events as JSON lines plus, for every event that captured
frame bytes, the offending packets as a standard pcap openable in
Wireshark.

Recording is append-into-a-preallocated-ring: one index increment and
one tuple store per event. When observability is disabled the data
path never calls in here at all (see :mod:`repro.obs`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# -- stages ------------------------------------------------------------------
RX = "rx"
STEER = "steer"
SLOW_PATH = "slow-path"
FASTPATH_HIT = "fastpath-hit"
TX = "tx"
DROP = "drop"
#: A flow delta shipped (or lost) on the replication channel.
REPLICATE = "replicate"
#: A failover step: worker kill detected, standby promoted, ownership moved.
FAILOVER = "failover"

STAGES = (RX, STEER, SLOW_PATH, FASTPATH_HIT, TX, DROP, REPLICATE, FAILOVER)

# -- drop/anomaly reason codes ----------------------------------------------
REASON_NONE = ""
REASON_NF_DROP = "nf-drop"
REASON_RING_FULL = "rx-ring-full"
REASON_NO_MBUF = "rx-no-mbuf"
REASON_DIVERGENCE = "divergence"
REASON_DROP_SPIKE = "drop-spike"
REASON_POOL_HIGH_WATER = "pool-high-water"
REASON_LINK_FAULT = "link-fault"
REASON_WORKER_KILL = "worker-kill"
REASON_REPLICATION_LOSS = "replication-loss"
#: A chain stage emitted on a device that maps to no neighbor or wire.
REASON_CHAIN_MISROUTE = "chain-misroute"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded per-packet step."""

    seq: int
    t_us: int
    worker: int
    stage: str
    reason: str = REASON_NONE
    detail: str = ""
    #: Raw frame bytes, when the call site chose to capture them.
    wire: Optional[bytes] = None

    def to_dict(self) -> Dict:
        data: Dict = {
            "seq": self.seq,
            "t_us": self.t_us,
            "worker": self.worker,
            "stage": self.stage,
        }
        if self.reason:
            data["reason"] = self.reason
        if self.detail:
            data["detail"] = self.detail
        if self.wire is not None:
            data["wire_len"] = len(self.wire)
        return data


class FlightRecorder:
    """Bounded ring buffer of :class:`TraceEvent` with anomaly dumping."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._next_seq = 0
        self.dumps = 0

    # -- recording ----------------------------------------------------------
    def record(
        self,
        stage: str,
        t_us: int = 0,
        worker: int = 0,
        reason: str = REASON_NONE,
        detail: str = "",
        wire: Optional[bytes] = None,
    ) -> TraceEvent:
        event = TraceEvent(
            seq=self._next_seq,
            t_us=t_us,
            worker=worker,
            stage=stage,
            reason=reason,
            detail=detail,
            wire=wire,
        )
        self._ring[self._next_seq % self.capacity] = event
        self._next_seq += 1
        return event

    @property
    def recorded_total(self) -> int:
        """Events ever recorded (≥ the number still retained)."""
        return self._next_seq

    def __len__(self) -> int:
        return min(self._next_seq, self.capacity)

    def last(self, n: Optional[int] = None) -> List[TraceEvent]:
        """The most recent ``n`` (default: all retained) events, oldest first."""
        retained = len(self)
        if n is None or n > retained:
            n = retained
        start = self._next_seq - n
        return [
            self._ring[seq % self.capacity]  # type: ignore[misc]
            for seq in range(start, self._next_seq)
        ]

    # -- anomaly dumping ----------------------------------------------------
    def dump(self, directory, tag: str, reason: str) -> Dict[str, str]:
        """Write the retained events under ``directory``; returns paths.

        ``<tag>.trace.jsonl`` holds one JSON object per event (newest
        last) with a header line naming the anomaly; every event that
        captured frame bytes also lands in ``<tag>.pcap`` with its
        event time as the capture timestamp.
        """
        import pathlib

        from repro.packets.pcap import write_pcap_file

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        events = self.last()
        trace_path = directory / f"{tag}.trace.jsonl"
        lines = [json.dumps({"anomaly": reason, "events": len(events)})]
        lines.extend(json.dumps(event.to_dict()) for event in events)
        trace_path.write_text("\n".join(lines) + "\n")
        paths = {"trace": str(trace_path)}
        frames = [
            (event.t_us, event.wire) for event in events if event.wire is not None
        ]
        if frames:
            pcap_path = directory / f"{tag}.pcap"
            write_pcap_file(str(pcap_path), frames)
            paths["pcap"] = str(pcap_path)
        self.dumps += 1
        return paths


class AnomalyMonitor:
    """Watches drop counts and pool high-water, dumps the ring on breach.

    The monitor is fed observations (not wired to any component), so
    every layer can share one: the runtime reports drops after each
    main-loop turn, the pool reports its high-water mark, and the
    differential harnesses report divergence directly. Each anomaly
    class dumps at most once per monitor, so a sustained breach cannot
    flood the dump directory.
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        dump_dir,
        *,
        drop_spike_threshold: int = 100,
        pool_high_water_fraction: float = 0.9,
    ) -> None:
        self.recorder = recorder
        self.dump_dir = dump_dir
        self.drop_spike_threshold = drop_spike_threshold
        self.pool_high_water_fraction = pool_high_water_fraction
        self._fired: Dict[str, Dict[str, str]] = {}

    @property
    def anomalies(self) -> Dict[str, Dict[str, str]]:
        """Anomalies seen so far: reason → dump paths."""
        return dict(self._fired)

    def _fire(self, reason: str, detail: str) -> Optional[Dict[str, str]]:
        if reason in self._fired:
            return None
        self.recorder.record(DROP, reason=reason, detail=detail)
        paths = self.recorder.dump(self.dump_dir, reason, detail)
        self._fired[reason] = paths
        return paths

    def observe_drops(self, dropped_in_window: int) -> Optional[Dict[str, str]]:
        if dropped_in_window >= self.drop_spike_threshold:
            return self._fire(
                REASON_DROP_SPIKE,
                f"{dropped_in_window} drops in one window "
                f"(threshold {self.drop_spike_threshold})",
            )
        return None

    def observe_pool(self, high_water: int, capacity: int) -> Optional[Dict[str, str]]:
        if capacity > 0 and high_water >= capacity * self.pool_high_water_fraction:
            return self._fire(
                REASON_POOL_HIGH_WATER,
                f"high water {high_water} of {capacity} buffers",
            )
        return None

    def observe_divergence(self, detail: str) -> Optional[Dict[str, str]]:
        return self._fire(REASON_DIVERGENCE, detail)


# -- differential trace diff -------------------------------------------------
@dataclass(frozen=True, slots=True)
class TraceDiff:
    """Where two differential replays first disagree."""

    index: int
    expected: Tuple[Tuple[bytes, int], ...]
    actual: Tuple[Tuple[bytes, int], ...]

    def render(self) -> str:
        def side(outputs: Tuple[Tuple[bytes, int], ...]) -> str:
            if not outputs:
                return "    (dropped)"
            return "\n".join(
                f"    dev {device}: {wire.hex()}" for wire, device in outputs
            )

        return "\n".join(
            [
                f"first divergence at packet #{self.index}:",
                "  expected (reference path):",
                side(self.expected),
                "  actual (path under test):",
                side(self.actual),
            ]
        )


def first_divergence(
    expected: Sequence[Sequence[Tuple[bytes, int]]],
    actual: Sequence[Sequence[Tuple[bytes, int]]],
) -> Optional[TraceDiff]:
    """The first per-packet output mismatch between two replays, if any.

    Inputs are parallel lists of per-packet outputs as (wire bytes,
    device) pairs — the shape the differential harnesses already
    compare. A length mismatch diverges at the first missing index.
    """
    for index in range(max(len(expected), len(actual))):
        want = tuple(tuple(o) for o in expected[index]) if index < len(expected) else ()
        got = tuple(tuple(o) for o in actual[index]) if index < len(actual) else ()
        if want != got:
            return TraceDiff(index=index, expected=want, actual=got)
    return None


__all__ = [
    "DROP",
    "FAILOVER",
    "FASTPATH_HIT",
    "REPLICATE",
    "RX",
    "SLOW_PATH",
    "STAGES",
    "STEER",
    "TX",
    "REASON_CHAIN_MISROUTE",
    "REASON_DIVERGENCE",
    "REASON_DROP_SPIKE",
    "REASON_LINK_FAULT",
    "REASON_NF_DROP",
    "REASON_NO_MBUF",
    "REASON_NONE",
    "REASON_POOL_HIGH_WATER",
    "REASON_REPLICATION_LOSS",
    "REASON_RING_FULL",
    "REASON_WORKER_KILL",
    "AnomalyMonitor",
    "FlightRecorder",
    "TraceDiff",
    "TraceEvent",
    "first_divergence",
]
