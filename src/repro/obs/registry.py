"""The typed metrics registry: Counter, Gauge, Histogram, label sets.

Design rules, in the spirit of DPDK xstats and the Prometheus client
data model, sized for a simulated data path:

- **Instruments are cheap.** A counter increment is one integer add on
  a slotted object; hot loops may also accumulate locally and ``inc``
  once per burst.
- **Collection pulls, it is never pushed.** Components that already
  keep counters (the mbuf pool, NIC ports, the NFs) register *callback*
  instruments whose value is read at snapshot time — wiring the
  telemetry layer through the stack adds zero work per packet.
- **Merging is explicit.** Counters and histograms merge by addition;
  each gauge declares its merge strategy (``sum`` for occupancy-like
  values, ``max`` for watermark-like values such as the pool
  high-water mark, which is not additive across workers).
- **Disabled means no-op.** :class:`NullRegistry` hands out shared
  do-nothing instruments, so call sites are written once and cost
  nothing when observability is off (see :mod:`repro.obs`).

Snapshots are plain dicts (the JSON schema shared with ``BENCH_*.json``
files); :mod:`repro.obs.expo` renders them as Prometheus text.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.histogram import LatencyHistogram

SNAPSHOT_SCHEMA = "repro-obs/v1"

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Gauge merge strategies.
MERGE_SUM = "sum"
MERGE_MAX = "max"

LabelValues = Tuple[str, ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (occupancy, watermark, ...)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A log2-bucketed distribution instrument."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        self.hist = LatencyHistogram()

    def observe(self, value: int) -> None:
        self.hist.record(value)

    def observe_many(self, values: Sequence[int]) -> None:
        self.hist.record_many(values)

    @property
    def value(self) -> LatencyHistogram:
        return self.hist


class _Callback:
    """A read-on-collect instrument over an existing component counter."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn()


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    @property
    def value(self) -> float:
        return 0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: int) -> None:
        pass

    def observe_many(self, values: Sequence[int]) -> None:
        pass

    @property
    def value(self) -> LatencyHistogram:
        return LatencyHistogram()


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class _Family:
    """One named metric: kind, help text, and one child per label set."""

    __slots__ = ("name", "kind", "help", "merge", "_make", "children")

    def __init__(self, name: str, kind: str, help_text: str, merge: str, make):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.merge = merge
        self._make = make
        self.children: Dict[LabelValues, object] = {}

    def child(self, labels: Optional[Dict[str, str]] = None):
        key = _label_key(labels)
        existing = self.children.get(key)
        if existing is None:
            existing = self.children[key] = self._make()
        return existing


def _label_key(labels: Optional[Dict[str, str]]) -> LabelValues:
    if not labels:
        return ()
    return tuple(f"{k}={labels[k]}" for k in sorted(labels))


def _key_labels(key: LabelValues) -> Dict[str, str]:
    return dict(pair.split("=", 1) for pair in key)


class MetricsRegistry:
    """A namespace of typed metrics, snapshottable and mergeable.

    Labels are passed per call site as plain dicts; children are keyed
    by their sorted label items, so ``{"worker": "0", "port": "1"}`` and
    ``{"port": "1", "worker": "0"}`` address the same child.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- instrument constructors -------------------------------------------
    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        return self._instrument(name, COUNTER, help_text, MERGE_SUM, Counter, labels)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        merge: str = MERGE_SUM,
    ) -> Gauge:
        return self._instrument(name, GAUGE, help_text, merge, Gauge, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        return self._instrument(
            name, HISTOGRAM, help_text, MERGE_SUM, Histogram, labels
        )

    def counter_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """A counter whose value is pulled from ``fn`` at snapshot time."""
        self._callback(name, COUNTER, MERGE_SUM, fn, help_text, labels)

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        merge: str = MERGE_SUM,
    ) -> None:
        """A gauge whose value is pulled from ``fn`` at snapshot time."""
        self._callback(name, GAUGE, merge, fn, help_text, labels)

    def histogram_fn(
        self,
        name: str,
        fn: Callable[[], LatencyHistogram],
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """A histogram pulled from ``fn`` (a LatencyHistogram) on collect."""
        self._callback(name, HISTOGRAM, MERGE_SUM, fn, help_text, labels)

    def _instrument(self, name, kind, help_text, merge, make, labels):
        family = self._family(name, kind, help_text, merge, make)
        return family.child(labels)

    def _callback(self, name, kind, merge, fn, help_text, labels):
        family = self._family(name, kind, help_text, merge, lambda: None)
        key = _label_key(labels)
        if key in family.children:
            raise ValueError(
                f"metric {name!r} already has a child for labels {key}"
            )
        family.children[key] = _Callback(fn)

    def _family(self, name, kind, help_text, merge, make) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(
                name, kind, help_text, merge, make
            )
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    # -- collection ---------------------------------------------------------
    def snapshot(self) -> Dict:
        """The registry's current state as the shared JSON schema."""
        metrics: List[Dict] = []
        for name in sorted(self._families):
            family = self._families[name]
            samples: List[Dict] = []
            for key in sorted(family.children):
                child = family.children[key]
                value = child.value
                sample: Dict = {"labels": _key_labels(key)}
                if family.kind == HISTOGRAM:
                    sample["histogram"] = value.to_dict()
                else:
                    sample["value"] = value
                samples.append(sample)
            metrics.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "merge": family.merge,
                    "samples": samples,
                }
            )
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


class NullRegistry:
    """A registry whose instruments do nothing and record nothing."""

    def counter(self, name, help_text="", labels=None) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name, help_text="", labels=None, merge=MERGE_SUM) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name, help_text="", labels=None) -> _NullHistogram:
        return NULL_HISTOGRAM

    def counter_fn(self, name, fn, help_text="", labels=None) -> None:
        pass

    def gauge_fn(self, name, fn, help_text="", labels=None, merge=MERGE_SUM) -> None:
        pass

    def histogram_fn(self, name, fn, help_text="", labels=None) -> None:
        pass

    def snapshot(self) -> Dict:
        return {"schema": SNAPSHOT_SCHEMA, "metrics": []}


NULL_REGISTRY = NullRegistry()


def with_labels(snapshot: Dict, extra: Dict[str, str]) -> Dict:
    """A copy of ``snapshot`` with ``extra`` labels stamped on every sample.

    This is the cross-process merge guard: :func:`merge_snapshots`
    combines same-name same-label samples, so two workers that each
    collected an *unlabeled* snapshot of their private runtime would
    silently sum (or max) into one sample on merge. Stamping a
    ``worker`` label at the source keeps their samples distinct forever
    after. A sample that already carries one of ``extra``'s keys with a
    *different* value raises — relabeling would silently rewrite
    someone else's identity.
    """
    for key, value in extra.items():
        if not isinstance(value, str):
            raise ValueError(f"label {key!r} must be a string, got {value!r}")
    metrics: List[Dict] = []
    for metric in snapshot.get("metrics", []):
        copied = dict(metric)
        samples: List[Dict] = []
        for sample in metric.get("samples", []):
            labels = dict(sample.get("labels", {}))
            for key, value in extra.items():
                if key in labels and labels[key] != value:
                    raise ValueError(
                        f"sample of {metric['name']!r} already has "
                        f"{key}={labels[key]!r}; refusing to relabel to {value!r}"
                    )
                labels[key] = value
            restamped = dict(sample)
            restamped["labels"] = labels
            samples.append(restamped)
        copied["samples"] = samples
        metrics.append(copied)
    return {"schema": snapshot.get("schema", SNAPSHOT_SCHEMA), "metrics": metrics}


def merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Merge snapshots into one: same-name same-label samples combine.

    Counters and histograms add; gauges follow their declared merge
    strategy (``sum`` by default, ``max`` for watermarks). Samples with
    distinct label sets stay distinct — merging two workers' snapshots
    keeps per-worker samples apart unless they share labels.
    """
    merged: Dict[str, Dict] = {}
    for snapshot in snapshots:
        for metric in snapshot.get("metrics", []):
            name = metric["name"]
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "name": name,
                    "kind": metric["kind"],
                    "help": metric.get("help", ""),
                    "merge": metric.get("merge", MERGE_SUM),
                    "samples": [],
                }
            elif target["kind"] != metric["kind"]:
                raise ValueError(
                    f"metric {name!r} has conflicting kinds: "
                    f"{target['kind']} vs {metric['kind']}"
                )
            by_labels = {
                _label_key(s["labels"]): s for s in target["samples"]
            }
            for sample in metric["samples"]:
                key = _label_key(sample["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    copied = dict(sample)
                    copied["labels"] = dict(sample["labels"])
                    target["samples"].append(copied)
                    by_labels[key] = copied
                    continue
                if target["kind"] == HISTOGRAM:
                    combined = LatencyHistogram.from_dict(
                        existing["histogram"]
                    ).merge(LatencyHistogram.from_dict(sample["histogram"]))
                    existing["histogram"] = combined.to_dict()
                elif (
                    target["kind"] == GAUGE
                    and target["merge"] == MERGE_MAX
                ):
                    existing["value"] = max(existing["value"], sample["value"])
                else:
                    existing["value"] = existing["value"] + sample["value"]
    metrics = [merged[name] for name in sorted(merged)]
    for metric in metrics:
        metric["samples"].sort(key=lambda s: _label_key(s["labels"]))
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "MERGE_MAX",
    "MERGE_SUM",
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "with_labels",
]
