"""Log2-bucketed latency histograms with mergeable state.

The paper's evaluation (Figs. 12-14) is built on per-packet latency
structure: averages hide the DPDK outlier tail, so the telemetry layer
records full distributions. A :class:`LatencyHistogram` keeps one
counter per power-of-two bucket — ``record`` is two integer ops, cheap
enough for per-packet use — and supports exact merging: per-worker
histograms from a :class:`~repro.net.dpdk.ShardedRuntime` sum into the
box-wide distribution without losing information, because bucket counts
are plain integers (merge is associative and commutative by
construction, which the property tests pin down).

Percentiles are extracted from bucket upper bounds, clamped to the
largest observed sample, so ``percentile`` is monotone in the requested
fraction and never extrapolates beyond the data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Bucket ``i`` holds values whose bit length is ``i``: bucket 0 holds
#: exactly 0, bucket 1 holds 1, bucket 2 holds 2-3, bucket i holds
#: [2**(i-1), 2**i). 64 buckets cover every latency a simulation can
#: produce (2**63 ns ≈ 292 years).
BUCKETS = 64


class LatencyHistogram:
    """Fixed-shape log2 histogram of non-negative integer samples."""

    __slots__ = ("counts", "count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * BUCKETS
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    # -- recording ----------------------------------------------------------
    def record(self, value: int) -> None:
        """Add one sample (negative values clamp to 0)."""
        if value < 0:
            value = 0
        index = value.bit_length()
        if index >= BUCKETS:
            index = BUCKETS - 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Sequence[int]) -> None:
        for value in values:
            self.record(value)

    @classmethod
    def of(cls, values: Sequence[int]) -> "LatencyHistogram":
        hist = cls()
        hist.record_many(values)
        return hist

    # -- merging ------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram holding both sample sets (lossless, exact)."""
        merged = LatencyHistogram()
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        mins = [m for m in (self.min_value, other.min_value) if m is not None]
        maxs = [m for m in (self.max_value, other.max_value) if m is not None]
        merged.min_value = min(mins) if mins else None
        merged.max_value = max(maxs) if maxs else None
        return merged

    __add__ = merge

    @classmethod
    def merge_all(
        cls, histograms: Sequence["LatencyHistogram"]
    ) -> "LatencyHistogram":
        merged = cls()
        for histogram in histograms:
            merged = merged.merge(histogram)
        return merged

    # -- extraction ---------------------------------------------------------
    @staticmethod
    def bucket_upper_bound(index: int) -> int:
        """Largest value bucket ``index`` can hold."""
        return 0 if index == 0 else (1 << index) - 1

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile estimate, or NaN when empty.

        Returns the upper bound of the bucket containing the rank,
        clamped to the largest observed sample — monotone in
        ``fraction`` and never larger than any real sample could be.
        """
        if self.count == 0:
            return float("nan")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        # rank = ceil(fraction * count), at least 1
        rank = max(1, int(-(-fraction * self.count // 1)))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                bound = self.bucket_upper_bound(index)
                assert self.max_value is not None
                return float(min(bound, self.max_value))
        return float(self.max_value)  # pragma: no cover — rank <= count

    def p50(self) -> float:
        return self.percentile(0.50)

    def p99(self) -> float:
        return self.percentile(0.99)

    def p999(self) -> float:
        return self.percentile(0.999)

    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict:
        """The JSON-snapshot form shared with ``BENCH_*.json`` files."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.percentile(0.50) if self.count else None,
            "p99": self.percentile(0.99) if self.count else None,
            "p999": self.percentile(0.999) if self.count else None,
            # Sparse bucket encoding: {bucket index: count}, zeros elided.
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LatencyHistogram":
        hist = cls()
        for key, value in data.get("buckets", {}).items():
            hist.counts[int(key)] = int(value)
        hist.count = int(data.get("count", sum(hist.counts)))
        hist.total = int(data.get("sum", 0))
        hist.min_value = data.get("min")
        hist.max_value = data.get("max")
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.count == other.count
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, min={self.min_value}, "
            f"max={self.max_value})"
        )


__all__ = ["BUCKETS", "LatencyHistogram"]
