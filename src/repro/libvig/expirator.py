"""The expirator: evicting stale flows from chain + map together (§5.1.1).

``expire_items`` is the glue the NAT calls at the top of every iteration
(Fig. 6, ``expire_flows``): it pops indexes whose last-touch time predates
the expiration threshold from the :class:`DoubleChain` and erases the
corresponding entries from the :class:`DoubleMap`, keeping the two
structures consistent.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap


def expire_items(
    chain: DoubleChain,
    dmap: DoubleMap,
    min_time: int,
    on_expire: Optional[Callable[[int], None]] = None,
) -> int:
    """Expire every entry last touched strictly before ``min_time``.

    Returns the number of expired entries. The chain's age ordering makes
    this proportional to the number of *expired* entries only, never to
    the table size.

    ``on_expire`` (when given) observes each expired index *before* the
    map entry is erased — the replication delta log uses it to record
    which flow died without re-deriving it from the table.
    """
    count = 0
    while True:
        index = chain.expire_one_index(min_time)
        if index is None:
            return count
        if on_expire is not None:
            on_expire(index)
        dmap.erase(index)
        count += 1
