"""The ring buffer of the §3 worked example.

A bounded FIFO over a preallocated array. Like the paper's ring, it can
carry a *packet constraint*: a predicate the caller promises every pushed
item satisfies. The constraint is part of the ring's contract — the ring
never alters stored items, so a popped item provably still satisfies it
(the semantic property of the discard-protocol proof).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.libvig.abstract import AbstractRing
from repro.libvig.contracts import contract
from repro.libvig.errors import CapacityError


class Ring:
    """Fixed-capacity FIFO with an optional per-item constraint."""

    def __init__(
        self,
        capacity: int,
        constraint: Callable[[Any], bool] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.constraint = constraint
        self._array: list[Any] = [None] * capacity
        self._begin = 0
        self._len = 0

    # -- abstract state ---------------------------------------------------
    def _abstract_state(self) -> AbstractRing:
        items = tuple(
            self._array[(self._begin + i) % self.capacity]
            for i in range(self._len)
        )
        return AbstractRing(items, self.capacity)

    # -- queries ----------------------------------------------------------
    def full(self) -> bool:
        """True when a push would exceed capacity."""
        return self._len >= self.capacity

    def empty(self) -> bool:
        """True when there is nothing to pop."""
        return self._len == 0

    def __len__(self) -> int:
        return self._len

    # -- updates ----------------------------------------------------------
    @contract(
        requires=lambda self, item: not self.full()
        and (self.constraint is None or self.constraint(item)),
        ensures=lambda old, result, self, item: (
            self._abstract_state().items == old.push_back(item).items
        ),
    )
    def push_back(self, item: Any) -> None:
        """Append an item satisfying the ring's constraint."""
        if self._len >= self.capacity:
            raise CapacityError("ring is full")
        if self.constraint is not None and not self.constraint(item):
            raise ValueError("item violates the ring constraint")
        self._array[(self._begin + self._len) % self.capacity] = item
        self._len += 1

    @contract(
        requires=lambda self: not self.empty(),
        ensures=lambda old, result, self: (
            result == old.items[0]
            and self._abstract_state().items == old.pop_front()[1].items
            and (self.constraint is None or self.constraint(result))
        ),
    )
    def pop_front(self) -> Any:
        """Remove and return the oldest item; it satisfies the constraint."""
        if self._len == 0:
            raise IndexError("ring is empty")
        item = self._array[self._begin]
        self._array[self._begin] = None
        self._begin += 1
        self._len -= 1
        if self._begin >= self.capacity:
            self._begin = 0
        return item
