"""Chaining hash table, mirroring the DPDK hash used by the unverified NAT.

The paper's unverified baseline uses DPDK's hash table, which resolves
collisions by separate chaining — "a behavior that is hard to specify in a
formal contract" (§6) — whereas libVig's map uses open addressing. This
module provides the chaining table so the baseline NAT exercises a
genuinely different data structure, with the same operation counters the
cost model consumes.

Chaining needs fewer probes on average than open addressing with chain
counters (especially for missed lookups), which is exactly the ~0.1 µs
per-packet advantage the paper measures for the unverified NAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Tuple


@dataclass
class HashTableStats:
    """Operation counters used by the testbed's cost model."""

    gets: int = 0
    puts: int = 0
    erases: int = 0
    probes: int = 0

    def reset(self) -> None:
        self.gets = self.puts = self.erases = self.probes = 0


class ChainingHashTable:
    """Separate-chaining hash table with a fixed bucket count.

    Unlike libVig's map it has no hard capacity: chains grow without
    bound, which is one of the behaviors the verified NAT's contracts
    rule out (and which the fault-injection tests exploit).
    """

    def __init__(
        self,
        bucket_count: int,
        hash_fn: Callable[[Hashable], int] | None = None,
    ) -> None:
        if bucket_count <= 0:
            raise ValueError("bucket count must be positive")
        self.bucket_count = bucket_count
        self._hash = hash_fn if hash_fn is not None else hash
        self._buckets: list[list[Tuple[Hashable, Any]]] = [
            [] for _ in range(bucket_count)
        ]
        self._size = 0
        self.stats = HashTableStats()

    def _bucket_of(self, key: Hashable) -> list[Tuple[Hashable, Any]]:
        return self._buckets[(self._hash(key) & 0xFFFFFFFF) % self.bucket_count]

    def size(self) -> int:
        """Number of stored entries."""
        return self._size

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default`` when absent."""
        self.stats.gets += 1
        for stored_key, value in self._bucket_of(key):
            self.stats.probes += 1
            if stored_key == key:
                return value
        return default

    def has(self, key: Hashable) -> bool:
        """True when ``key`` is present."""
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self.stats.puts += 1
        bucket = self._bucket_of(key)
        for i, (stored_key, _) in enumerate(bucket):
            self.stats.probes += 1
            if stored_key == key:
                bucket[i] = (key, value)
                return
        bucket.append((key, value))
        self._size += 1

    def erase(self, key: Hashable) -> Any:
        """Remove a present key; returns the stored value."""
        self.stats.erases += 1
        bucket = self._bucket_of(key)
        for i, (stored_key, value) in enumerate(bucket):
            self.stats.probes += 1
            if stored_key == key:
                del bucket[i]
                self._size -= 1
                return value
        raise KeyError(key)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate all (key, value) pairs, bucket order."""
        for bucket in self._buckets:
            yield from bucket

    def longest_chain(self) -> int:
        """Length of the longest collision chain (degradation metric)."""
        return max(len(bucket) for bucket in self._buckets)
