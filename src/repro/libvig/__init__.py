"""libVig: the library of verified NF data structures (Python port).

The paper factors every piece of "difficult" NF state into a library of
data structures with formal interface contracts (§5.1). This package is the
Python port of that library:

- :mod:`repro.libvig.map` — open-addressing hash map with chain counters,
- :mod:`repro.libvig.double_map` — the double-keyed flow table,
- :mod:`repro.libvig.vector` — preallocated value vector,
- :mod:`repro.libvig.static_array` — the classic bounds-checked array,
- :mod:`repro.libvig.ring` — the ring buffer of the §3 worked example,
- :mod:`repro.libvig.double_chain` — LRU index allocator with timestamps,
- :mod:`repro.libvig.expirator` — flow expiration on top of the chain,
- :mod:`repro.libvig.batcher` — fixed-capacity item batcher,
- :mod:`repro.libvig.port_allocator` — external port bookkeeping,
- :mod:`repro.libvig.hash_table` — chaining table (the *unverified*
  baseline's structure, mirroring the DPDK hash),
- :mod:`repro.libvig.nf_time` — the time abstraction,
- :mod:`repro.libvig.contracts` — runtime contract enforcement,
- :mod:`repro.libvig.abstract` — pure functional models used by the
  refinement test-suite (the P3 analogue).

Every structure preallocates at construction time and never allocates on
the data path, matching libVig's design decision (§5.1.1).
"""

from repro.libvig.batcher import Batcher
from repro.libvig.contracts import (
    ContractViolation,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)
from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.errors import CapacityError, LibVigError
from repro.libvig.expirator import expire_items
from repro.libvig.hash_table import ChainingHashTable
from repro.libvig.map import Map
from repro.libvig.nf_time import Clock, MonotonicClock, SimulatedClock
from repro.libvig.port_allocator import PortAllocator
from repro.libvig.ring import Ring
from repro.libvig.static_array import StaticArray
from repro.libvig.vector import Vector

__all__ = [
    "Batcher",
    "CapacityError",
    "ChainingHashTable",
    "Clock",
    "ContractViolation",
    "DoubleChain",
    "DoubleMap",
    "LibVigError",
    "Map",
    "MonotonicClock",
    "PortAllocator",
    "Ring",
    "SimulatedClock",
    "StaticArray",
    "Vector",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
    "expire_items",
]
