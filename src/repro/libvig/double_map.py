"""The double-keyed map — libVig's flow table (§5.1.1, Fig. 8).

A ``DoubleMap`` stores values in a preallocated slab indexed by small
integers; each value is reachable through *two* independent keys. For the
NAT, the value is a flow entry, the first key is the flow ID seen from the
internal network and the second key is the flow ID seen from the external
network, so one lookup structure serves both traffic directions.

Index allocation is external (the :class:`~repro.libvig.double_chain.DoubleChain`
hands out indexes and orders them by age); the double-map just binds keys
to an index the caller chose. This split is exactly libVig's: the chain
knows *when* entries were touched, the map knows *what* they contain.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, Tuple

from repro.libvig.abstract import AbstractDoubleMap
from repro.libvig.contracts import contract
from repro.libvig.errors import CapacityError
from repro.libvig.map import Map

KeyExtractor = Callable[[Any], Hashable]


class DoubleMap:
    """Fixed-capacity value store addressable by either of two keys."""

    #: Extra slots in the key maps beyond the value capacity. Open
    #: addressing degrades sharply as the load factor approaches 1, so
    #: libVig sizes the probe arrays with headroom; 1/8th extra keeps the
    #: worst-case load below 0.89 — the knee the paper's Fig. 12 shows as
    #: a slight upturn when the flow table is almost full.
    KEY_SPACE_HEADROOM = 8

    def __init__(
        self,
        capacity: int,
        key_a_of: KeyExtractor,
        key_b_of: KeyExtractor,
        hash_a: Callable[[Hashable], int] | None = None,
        hash_b: Callable[[Hashable], int] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._key_a_of = key_a_of
        self._key_b_of = key_b_of
        key_slots = capacity + capacity // self.KEY_SPACE_HEADROOM + 1
        self._map_a = Map(key_slots, hash_a)
        self._map_b = Map(key_slots, hash_b)
        self._values: list[Any] = [None] * capacity
        self._occupied = [False] * capacity
        self._size = 0

    # -- abstract state ---------------------------------------------------
    def _abstract_state(self) -> AbstractDoubleMap:
        values = {}
        by_a = {}
        by_b = {}
        for i in range(self.capacity):
            if self._occupied[i]:
                value = self._values[i]
                values[i] = value
                by_a[self._key_a_of(value)] = i
                by_b[self._key_b_of(value)] = i
        return AbstractDoubleMap(values, by_a, by_b, self.capacity)

    # -- queries ----------------------------------------------------------
    def size(self) -> int:
        """Number of stored values."""
        return self._size

    def full(self) -> bool:
        """True when no further value can be inserted."""
        return self._size >= self.capacity

    def get_by_a(self, key: Hashable) -> int | None:
        """Index of the value whose first key is ``key``, or ``None``."""
        return self._map_a.get(key)

    def get_by_b(self, key: Hashable) -> int | None:
        """Index of the value whose second key is ``key``, or ``None``."""
        return self._map_b.get(key)

    def index_occupied(self, index: int) -> bool:
        """True when ``index`` currently holds a value."""
        self._check_index(index)
        return self._occupied[index]

    def get_value(self, index: int) -> Any:
        """The value stored at an occupied ``index``."""
        self._check_index(index)
        if not self._occupied[index]:
            raise KeyError(f"index {index} is vacant")
        return self._values[index]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range [0, {self.capacity})")

    # -- updates ----------------------------------------------------------
    @contract(
        requires=lambda self, index, value: (
            not self._occupied[index]
            and self.get_by_a(self._key_a_of(value)) is None
            and self.get_by_b(self._key_b_of(value)) is None
        ),
        ensures=lambda old, result, self, index, value: (
            self._abstract_state()
            == old.put(
                index, self._key_a_of(value), self._key_b_of(value), value
            )
        ),
    )
    def put(self, index: int, value: Any) -> None:
        """Bind ``value`` (and both its keys) to the vacant ``index``."""
        self._check_index(index)
        if self._occupied[index]:
            raise KeyError(f"index {index} already occupied")
        if self._size >= self.capacity:
            raise CapacityError("double-map is full")
        key_a = self._key_a_of(value)
        key_b = self._key_b_of(value)
        if self._map_a.has(key_a) or self._map_b.has(key_b):
            raise KeyError("key already present")
        self._map_a.put(key_a, index)
        self._map_b.put(key_b, index)
        self._values[index] = value
        self._occupied[index] = True
        self._size += 1

    @contract(
        requires=lambda self, index: self._occupied[index],
        ensures=lambda old, result, self, index: (
            self._abstract_state()
            == old.erase(
                index, self._key_a_of(result), self._key_b_of(result)
            )
        ),
    )
    def erase(self, index: int) -> Any:
        """Remove the value at an occupied ``index``; returns it."""
        self._check_index(index)
        if not self._occupied[index]:
            raise KeyError(f"index {index} is vacant")
        value = self._values[index]
        self._map_a.erase(self._key_a_of(value))
        self._map_b.erase(self._key_b_of(value))
        self._values[index] = None
        self._occupied[index] = False
        self._size -= 1
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate occupied (index, value) pairs in index order."""
        for i in range(self.capacity):
            if self._occupied[i]:
                yield i, self._values[i]

    @property
    def probe_count(self) -> int:
        """Total probe count across both underlying maps (cost model)."""
        return self._map_a.stats.probes + self._map_b.stats.probes
