"""Exception hierarchy for libVig."""

from __future__ import annotations


class LibVigError(Exception):
    """Base class for all libVig errors."""


class CapacityError(LibVigError):
    """A preallocated structure was asked to exceed its fixed capacity.

    libVig structures never grow: capacity is fixed at construction
    (§5.1.1), and callers are expected to check for fullness first — the
    contracts make that obligation explicit.
    """
