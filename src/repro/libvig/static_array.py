"""The classic fixed-size array (§5.1.1 lists it alongside map/vector).

A bounds-checked, preallocated scalar array with contracts — the
simplest libVig type, used where the NF needs plain indexed storage
without the vector's borrow/return ownership protocol (e.g. the rate
limiter's per-slot counters, which are scalars updated in place).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.libvig.contracts import contract


class StaticArray:
    """Fixed-size array of scalars with checked indexing."""

    def __init__(self, capacity: int, init: Callable[[int], Any] | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        factory = init if init is not None else (lambda _i: 0)
        self._cells: list = [factory(i) for i in range(capacity)]

    def _abstract_state(self) -> tuple:
        return tuple(self._cells)

    def _in_bounds(self, index: int) -> bool:
        return 0 <= index < self.capacity

    @contract(
        requires=lambda self, index: self._in_bounds(index),
        ensures=lambda old, result, self, index: result == old[index],
    )
    def get(self, index: int) -> Any:
        """Read cell ``index``; bounds are a contract precondition."""
        if not self._in_bounds(index):
            raise IndexError(f"index {index} out of range [0, {self.capacity})")
        return self._cells[index]

    @contract(
        requires=lambda self, index, value: self._in_bounds(index),
        ensures=lambda old, result, self, index, value: (
            self._cells[index] == value
            and all(
                self._cells[i] == old[i]
                for i in range(self.capacity)
                if i != index
            )
        ),
    )
    def set(self, index: int, value: Any) -> None:
        """Write cell ``index``; all other cells provably untouched."""
        if not self._in_bounds(index):
            raise IndexError(f"index {index} out of range [0, {self.capacity})")
        self._cells[index] = value

    def __len__(self) -> int:
        return self.capacity

    def __iter__(self) -> Iterator[Any]:
        return iter(self._cells)
