"""External-port bookkeeping for the NAT (§5.1.1's "port allocator").

VigNAT maps each active flow to a distinct external port drawn from a
fixed range. The allocator keeps a free list plus an allocation bitmap so
that allocation, release and membership checks are all O(1) with no
allocation on the data path.
"""

from __future__ import annotations

from repro.libvig.errors import LibVigError


class PortExhaustion(LibVigError):
    """All ports in the configured range are allocated."""


class PortAllocator:
    """Allocates 16-bit ports out of ``[start, start + count)``."""

    def __init__(self, start: int, count: int) -> None:
        if not 0 <= start <= 0xFFFF:
            raise ValueError("start port out of range")
        if count <= 0 or start + count - 1 > 0xFFFF:
            raise ValueError("port range out of bounds")
        self.start = start
        self.count = count
        # LIFO free list: reusing recently released ports keeps the hot
        # set small, like libVig's index allocator.
        self._free = list(range(start + count - 1, start - 1, -1))
        self._allocated = [False] * count

    def _abstract_state(self) -> frozenset:
        return frozenset(
            self.start + i for i, taken in enumerate(self._allocated) if taken
        )

    def allocate(self) -> int:
        """Take a free port; raises :class:`PortExhaustion` when none."""
        if not self._free:
            raise PortExhaustion(f"no port free in [{self.start}, {self.start + self.count})")
        port = self._free.pop()
        self._allocated[port - self.start] = True
        return port

    def release(self, port: int) -> None:
        """Return an allocated port to the pool."""
        self._check_port(port)
        if not self._allocated[port - self.start]:
            raise KeyError(f"port {port} is not allocated")
        self._allocated[port - self.start] = False
        self._free.append(port)

    def is_allocated(self, port: int) -> bool:
        """True when ``port`` is currently allocated."""
        self._check_port(port)
        return self._allocated[port - self.start]

    def available(self) -> int:
        """Number of ports still free."""
        return len(self._free)

    def _check_port(self, port: int) -> None:
        if not self.start <= port < self.start + self.count:
            raise ValueError(
                f"port {port} outside range [{self.start}, {self.start + self.count})"
            )
