"""External-port bookkeeping for the NAT (§5.1.1's "port allocator").

VigNAT maps each active flow to a distinct external port drawn from a
fixed range. The allocator keeps a free list plus an allocation bitmap so
that allocation, release and membership checks are all O(1) with no
allocation on the data path.
"""

from __future__ import annotations

from repro.libvig.errors import LibVigError


class PortExhaustion(LibVigError):
    """All ports in the configured range are allocated."""


class PortRestoreError(LibVigError):
    """A checkpointed port set is inconsistent with this allocator.

    Raised when a restore would double-allocate a port or claim a port
    outside the allocator's range (e.g. outside the shard this worker
    owns under :meth:`NatConfig.partition`). Restoring such a set would
    silently corrupt ownership — two flows answering for one external
    port, or a worker squatting on a sibling shard's range — so the
    restore refuses instead.
    """


class PortAllocator:
    """Allocates 16-bit ports out of ``[start, start + count)``."""

    def __init__(self, start: int, count: int) -> None:
        if not 0 <= start <= 0xFFFF:
            raise ValueError("start port out of range")
        if count <= 0 or start + count - 1 > 0xFFFF:
            raise ValueError("port range out of bounds")
        self.start = start
        self.count = count
        # LIFO free list: reusing recently released ports keeps the hot
        # set small, like libVig's index allocator.
        self._free = list(range(start + count - 1, start - 1, -1))
        self._allocated = [False] * count

    def _abstract_state(self) -> frozenset:
        return frozenset(
            self.start + i for i, taken in enumerate(self._allocated) if taken
        )

    def allocate(self) -> int:
        """Take a free port; raises :class:`PortExhaustion` when none."""
        if not self._free:
            raise PortExhaustion(f"no port free in [{self.start}, {self.start + self.count})")
        port = self._free.pop()
        self._allocated[port - self.start] = True
        return port

    def release(self, port: int) -> None:
        """Return an allocated port to the pool."""
        self._check_port(port)
        if not self._allocated[port - self.start]:
            raise KeyError(f"port {port} is not allocated")
        self._allocated[port - self.start] = False
        self._free.append(port)

    def is_allocated(self, port: int) -> bool:
        """True when ``port`` is currently allocated."""
        self._check_port(port)
        return self._allocated[port - self.start]

    def available(self) -> int:
        """Number of ports still free."""
        return len(self._free)

    def _check_port(self, port: int) -> None:
        if not self.start <= port < self.start + self.count:
            raise ValueError(
                f"port {port} outside range [{self.start}, {self.start + self.count})"
            )

    # -- checkpoint/restore -----------------------------------------------
    def allocated_ports(self) -> tuple:
        """The allocated ports, ascending — the checkpoint payload."""
        return tuple(sorted(self._abstract_state()))

    def restore_ports(self, ports) -> None:
        """Mark a checkpointed port set allocated on this (fresh) allocator.

        Validates the whole set before touching any state: every port
        must lie inside ``[start, start + count)`` and appear at most
        once, and none may already be allocated here. Violations raise
        :class:`PortRestoreError`, never partially apply.
        """
        ports = list(ports)
        seen = set()
        for port in ports:
            if not self.start <= port < self.start + self.count:
                raise PortRestoreError(
                    f"port {port} outside this allocator's range "
                    f"[{self.start}, {self.start + self.count}) — "
                    "checkpoint belongs to a different shard"
                )
            if port in seen:
                raise PortRestoreError(f"port {port} double-allocated in checkpoint")
            if self._allocated[port - self.start]:
                raise PortRestoreError(f"port {port} already allocated")
            seen.add(port)
        for port in ports:
            self._allocated[port - self.start] = True
            self._free.remove(port)
