"""Preallocated vector with a borrow/return ownership discipline.

libVig's vector hands out elements under an explicit ownership protocol:
``borrow`` transfers the element to the caller, who must ``give_back``
before borrowing it again (§5.2.4 tracks exactly this kind of transfer).
The runtime version enforces the discipline eagerly so that misuse in the
stateless code shows up as a :class:`OwnershipError` rather than silent
aliasing.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.libvig.errors import LibVigError


class OwnershipError(LibVigError):
    """The borrow/return discipline was violated."""


class Vector:
    """Fixed-size array of slots, each initialized by a factory."""

    def __init__(self, capacity: int, init: Callable[[int], Any] | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        factory = init if init is not None else (lambda _i: None)
        self._slots: list[Any] = [factory(i) for i in range(capacity)]
        self._borrowed = [False] * capacity

    def _abstract_state(self) -> tuple:
        return tuple(self._slots)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range [0, {self.capacity})")

    def borrow(self, index: int) -> Any:
        """Take ownership of slot ``index``'s element."""
        self._check_index(index)
        if self._borrowed[index]:
            raise OwnershipError(f"slot {index} already borrowed")
        self._borrowed[index] = True
        return self._slots[index]

    def give_back(self, index: int, value: Any) -> None:
        """Return (possibly updated) ownership of slot ``index``."""
        self._check_index(index)
        if not self._borrowed[index]:
            raise OwnershipError(f"slot {index} was not borrowed")
        self._slots[index] = value
        self._borrowed[index] = False

    def outstanding_borrows(self) -> int:
        """Number of slots currently borrowed (0 at loop boundaries)."""
        return sum(self._borrowed)

    def get(self, index: int) -> Any:
        """Read a slot without borrowing (callers must not mutate)."""
        self._check_index(index)
        if self._borrowed[index]:
            raise OwnershipError(f"slot {index} is borrowed")
        return self._slots[index]
