"""The batcher: grouping homogeneous items before processing (§5.1.1).

NFs amortize per-call overhead by handling packets in bursts; the batcher
accumulates items up to a fixed batch size and releases them all at once.
"""

from __future__ import annotations

from typing import Any, List

from repro.libvig.errors import CapacityError


class Batcher:
    """Fixed-capacity accumulator released in one take."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[Any] = []

    def _abstract_state(self) -> tuple:
        return tuple(self._items)

    def push(self, item: Any) -> None:
        """Add an item; the batcher must not be full."""
        if self.full():
            raise CapacityError("batcher is full")
        self._items.append(item)

    def full(self) -> bool:
        """True when the batch reached capacity and must be taken."""
        return len(self._items) >= self.capacity

    def empty(self) -> bool:
        """True when there is nothing to take."""
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def take(self) -> List[Any]:
        """Remove and return all accumulated items, oldest first."""
        items, self._items = self._items, []
        return items
