"""Open-addressing hash map with chain counters — libVig's core map.

This is a faithful port of the libVig map: preallocated arrays of busy
bits, keys, cached key hashes, values, and *chain counters*. The chain
counter ``chns[i]`` records how many live keys' probe paths passed
*through* slot ``i`` on their way to their final slot. A lookup can stop
as soon as it reaches a free slot whose chain counter is zero — no key
could possibly live further down that probe sequence. This is the
"auxiliary metadata that speeds up lookup" of §6, and it is also what
makes unsuccessful lookups the expensive case (they may scan every
candidate slot when chains are long), the asymmetry the paper observes
against the DPDK chaining table.

Probing is linear: slot ``(hash + i) % capacity`` for ``i = 0, 1, ...``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Tuple

from repro.libvig.abstract import AbstractMap
from repro.libvig.contracts import contract
from repro.libvig.errors import CapacityError


@dataclass
class MapStats:
    """Operation counters used by the testbed's cost model."""

    gets: int = 0
    puts: int = 0
    erases: int = 0
    probes: int = 0  # total slots inspected across all operations

    def reset(self) -> None:
        self.gets = self.puts = self.erases = self.probes = 0


_MISSING = object()


class Map:
    """Fixed-capacity open-addressing map from hashable keys to values."""

    def __init__(
        self,
        capacity: int,
        hash_fn: Callable[[Hashable], int] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._hash = hash_fn if hash_fn is not None else hash
        self._busy = [False] * capacity
        self._keys: list[Hashable | None] = [None] * capacity
        self._hashes = [0] * capacity
        self._values: list[Any] = [None] * capacity
        self._chains = [0] * capacity
        self._size = 0
        self.stats = MapStats()

    # -- abstract state ---------------------------------------------------
    def _abstract_state(self) -> AbstractMap:
        entries = {
            self._keys[i]: self._values[i]
            for i in range(self.capacity)
            if self._busy[i]
        }
        return AbstractMap(entries, self.capacity)

    # -- queries ----------------------------------------------------------
    def size(self) -> int:
        """Number of live entries."""
        return self._size

    def full(self) -> bool:
        """True when no further key can be inserted."""
        return self._size >= self.capacity

    def _home(self, key: Hashable) -> Tuple[int, int]:
        key_hash = self._hash(key) & 0xFFFFFFFF
        return key_hash, key_hash % self.capacity

    def _find_slot(self, key: Hashable) -> int:
        """Index of ``key``'s slot, or -1 if absent.

        Walks the probe sequence; a free slot with a zero chain counter
        proves the key is absent.
        """
        key_hash, home = self._home(key)
        for i in range(self.capacity):
            slot = (home + i) % self.capacity
            self.stats.probes += 1
            if self._busy[slot]:
                if self._hashes[slot] == key_hash and self._keys[slot] == key:
                    return slot
            elif self._chains[slot] == 0:
                return -1
        return -1

    def has(self, key: Hashable) -> bool:
        """True when ``key`` is present."""
        self.stats.gets += 1
        return self._find_slot(key) != -1

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default`` when absent."""
        self.stats.gets += 1
        slot = self._find_slot(key)
        if slot == -1:
            return default
        return self._values[slot]

    # -- updates ----------------------------------------------------------
    @contract(
        requires=lambda self, key, value: not self.full()
        and self.get(key, _MISSING) is _MISSING,
        ensures=lambda old, result, self, key, value: (
            self._abstract_state().entries == old.put(key, value).entries
        ),
    )
    def put(self, key: Hashable, value: Any) -> None:
        """Insert a key that is not yet present. Requires spare capacity."""
        if self._size >= self.capacity:
            raise CapacityError("map is full")
        key_hash, home = self._home(key)
        self.stats.puts += 1
        for i in range(self.capacity):
            slot = (home + i) % self.capacity
            self.stats.probes += 1
            if not self._busy[slot]:
                self._busy[slot] = True
                self._keys[slot] = key
                self._hashes[slot] = key_hash
                self._values[slot] = value
                self._size += 1
                return
            # Occupied: this key's path passes through, bump the counter.
            self._chains[slot] += 1
        raise CapacityError("map is full")  # unreachable given the size check

    @contract(
        requires=lambda self, key: self.get(key, _MISSING) is not _MISSING,
        ensures=lambda old, result, self, key: (
            self._abstract_state().entries == old.erase(key).entries
        ),
    )
    def erase(self, key: Hashable) -> Any:
        """Remove a present key; returns the stored value."""
        key_hash, home = self._home(key)
        self.stats.erases += 1
        for i in range(self.capacity):
            slot = (home + i) % self.capacity
            self.stats.probes += 1
            if (
                self._busy[slot]
                and self._hashes[slot] == key_hash
                and self._keys[slot] == key
            ):
                value = self._values[slot]
                self._busy[slot] = False
                self._keys[slot] = None
                self._values[slot] = None
                # Unwind the chain counters bumped by put's probe path.
                for j in range(i):
                    passed = (home + j) % self.capacity
                    self._chains[passed] -= 1
                self._size -= 1
                return value
            if not self._busy[slot] and self._chains[slot] == 0:
                break
        raise KeyError(key)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate live (key, value) pairs in slot order."""
        for i in range(self.capacity):
            if self._busy[i]:
                yield self._keys[i], self._values[i]
