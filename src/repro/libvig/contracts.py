"""Runtime contract enforcement for libVig data structures.

The paper specifies each libVig method with a separation-logic contract
(requires/ensures) checked by VeriFast (§5.1.2-§5.1.3). In this
reproduction the same contracts exist in two executable forms:

1. *Runtime checks* (this module): decorators that evaluate the pre- and
   post-condition on every call, against the structure's pure abstract
   state. The refinement test-suite runs with these enabled and hypothesis
   drives the structures through random operation sequences — the P3
   analogue.
2. *Symbolic contracts* (:mod:`repro.verif.models`): the same conditions
   expressed over symbolic trace values, used by the Validator for the
   lazy proofs (P4/P5).

Checking is off by default so the data path pays nothing; tests enable it
globally or per-block via :func:`checked`.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.libvig.errors import LibVigError

_ENABLED = False


class ContractViolation(LibVigError):
    """A requires- or ensures-clause evaluated to False at runtime."""

    def __init__(self, kind: str, function: str, detail: str = "") -> None:
        self.kind = kind
        self.function = function
        self.detail = detail
        message = f"{kind} violated in {function}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def contracts_enabled() -> bool:
    """True when contract checking is globally enabled."""
    return _ENABLED


def enable_contracts() -> None:
    """Globally enable runtime contract checking."""
    global _ENABLED
    _ENABLED = True


def disable_contracts() -> None:
    """Globally disable runtime contract checking."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def checked() -> Iterator[None]:
    """Enable contract checking for the duration of a with-block."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


Predicate = Callable[..., bool]


def contract(
    requires: Predicate | None = None,
    ensures: Callable[..., bool] | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach a requires/ensures pair to a method.

    ``requires`` receives the method's arguments (including ``self``).
    ``ensures`` receives ``old`` (the abstract-state snapshot taken before
    the call via ``self._abstract_state()``), ``result`` (the return
    value), then the original arguments. Either clause may be ``None``.

    The contract callables are stored on the wrapper as
    ``__contract_requires__`` / ``__contract_ensures__`` so tooling (the
    Validator, documentation generators) can introspect them.
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return func(self, *args, **kwargs)
            if requires is not None and not requires(self, *args, **kwargs):
                raise ContractViolation("requires", func.__qualname__)
            old = self._abstract_state()
            result = func(self, *args, **kwargs)
            if ensures is not None and not ensures(
                old, result, self, *args, **kwargs
            ):
                raise ContractViolation("ensures", func.__qualname__)
            return result

        wrapper.__contract_requires__ = requires  # type: ignore[attr-defined]
        wrapper.__contract_ensures__ = ensures  # type: ignore[attr-defined]
        return wrapper

    return decorate
