"""The double-chain index allocator — libVig's flow aging machinery.

A ``DoubleChain`` manages the integer indexes of a preallocated slab (the
double-map's value slots). Internally it keeps two intrusive linked lists
over one preallocated cell array — hence the name: a free list of vacant
indexes, and an *allocated* list kept ordered by last-touch time, oldest
at the front. Every allocation and rejuvenation appends to the back, so
expiration only ever inspects the front — expiring ``k`` flows costs
``O(k)`` regardless of table size, which is what keeps the NAT's
per-packet latency flat as the flow table fills (Fig. 12).

Timestamps are non-decreasing along the allocated list; this invariant is
part of the chain's contract and is checked by the refinement tests.
"""

from __future__ import annotations

from typing import Tuple

from repro.libvig.abstract import AbstractChain
from repro.libvig.contracts import contract
from repro.libvig.errors import LibVigError


class TimeRegression(LibVigError):
    """A timestamp older than the chain's newest was supplied."""


class DoubleChain:
    """LRU-ordered allocator of indexes ``0 .. index_range - 1``."""

    _NIL = -1

    def __init__(self, index_range: int) -> None:
        if index_range <= 0:
            raise ValueError("index range must be positive")
        self.index_range = index_range
        # Intrusive doubly-linked allocated list + singly-linked free list.
        self._next = [self._NIL] * index_range
        self._prev = [self._NIL] * index_range
        self._time = [0] * index_range
        self._allocated = [False] * index_range
        self._al_head = self._NIL  # oldest allocated index
        self._al_tail = self._NIL  # newest allocated index
        self._free_head = 0
        for i in range(index_range - 1):
            self._next[i] = i + 1
        self._next[index_range - 1] = self._NIL
        self._size = 0

    # -- abstract state ---------------------------------------------------
    def _abstract_state(self) -> AbstractChain:
        cells = []
        cursor = self._al_head
        while cursor != self._NIL:
            cells.append((cursor, self._time[cursor]))
            cursor = self._next[cursor]
        return AbstractChain(tuple(cells), self.index_range)

    # -- queries ----------------------------------------------------------
    def size(self) -> int:
        """Number of allocated indexes."""
        return self._size

    def is_index_allocated(self, index: int) -> bool:
        """True when ``index`` is currently allocated."""
        self._check_index(index)
        return self._allocated[index]

    def get_oldest(self) -> Tuple[int, int] | None:
        """The (index, timestamp) at the front, or ``None`` when empty."""
        if self._al_head == self._NIL:
            return None
        return self._al_head, self._time[self._al_head]

    def timestamp_of(self, index: int) -> int:
        """Last-touch time of an allocated index."""
        if not self.is_index_allocated(index):
            raise KeyError(index)
        return self._time[index]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.index_range:
            raise IndexError(f"index {index} out of range [0, {self.index_range})")

    def _newest_time(self) -> int | None:
        if self._al_tail == self._NIL:
            return None
        return self._time[self._al_tail]

    # -- list surgery -----------------------------------------------------
    def _append_allocated(self, index: int, time: int) -> None:
        self._time[index] = time
        self._prev[index] = self._al_tail
        self._next[index] = self._NIL
        if self._al_tail == self._NIL:
            self._al_head = index
        else:
            self._next[self._al_tail] = index
        self._al_tail = index

    def _unlink_allocated(self, index: int) -> None:
        prev, nxt = self._prev[index], self._next[index]
        if prev == self._NIL:
            self._al_head = nxt
        else:
            self._next[prev] = nxt
        if nxt == self._NIL:
            self._al_tail = prev
        else:
            self._prev[nxt] = prev

    # -- updates ----------------------------------------------------------
    @contract(
        requires=lambda self, time: True,
        ensures=lambda old, result, self, time: (
            (result is None and old.size() == old.index_range)
            or self._abstract_state().cells == old.allocate(result, time).cells
        ),
    )
    def allocate_new_index(self, time: int) -> int | None:
        """Take a vacant index, stamp it, append it newest; None when full."""
        self._guard_time(time)
        if self._free_head == self._NIL:
            return None
        index = self._free_head
        self._free_head = self._next[index]
        self._allocated[index] = True
        self._append_allocated(index, time)
        self._size += 1
        return index

    @contract(
        requires=lambda self, index, time: self.is_index_allocated(index),
        ensures=lambda old, result, self, index, time: (
            self._abstract_state().cells == old.rejuvenate(index, time).cells
        ),
    )
    def rejuvenate_index(self, index: int, time: int) -> None:
        """Refresh an allocated index's timestamp and move it newest."""
        self._check_index(index)
        if not self._allocated[index]:
            raise KeyError(index)
        self._guard_time(time)
        self._unlink_allocated(index)
        self._append_allocated(index, time)

    def expire_one_index(self, min_time: int) -> int | None:
        """Free and return the oldest index if its stamp < ``min_time``.

        Returns ``None`` when the chain is empty or the oldest entry is
        still fresh — the expirator loops on this until it gets ``None``.
        """
        if self._al_head == self._NIL:
            return None
        oldest = self._al_head
        if self._time[oldest] >= min_time:
            return None
        self._release(oldest)
        return oldest

    @contract(
        requires=lambda self, index: self.is_index_allocated(index),
        ensures=lambda old, result, self, index: (
            self._abstract_state().cells == old.free(index).cells
        ),
    )
    def free_index(self, index: int) -> None:
        """Explicitly release an allocated index (e.g., TCP RST teardown)."""
        self._check_index(index)
        if not self._allocated[index]:
            raise KeyError(index)
        self._release(index)

    def _release(self, index: int) -> None:
        self._unlink_allocated(index)
        self._allocated[index] = False
        self._next[index] = self._free_head
        self._prev[index] = self._NIL
        self._free_head = index
        self._size -= 1

    def _guard_time(self, time: int) -> None:
        newest = self._newest_time()
        if newest is not None and time < newest:
            raise TimeRegression(
                f"time {time} precedes newest chain timestamp {newest}"
            )

    # -- checkpoint/restore -----------------------------------------------
    def cells(self) -> Tuple[Tuple[int, int], ...]:
        """Allocated (index, timestamp) pairs, oldest first.

        This is exactly the chain's abstract state (the age-ordered
        list the refinement contracts reason about) and the payload the
        ``repro-ckpt/v1`` checkpoint stores.
        """
        return self._abstract_state().cells

    def free_list(self) -> Tuple[int, ...]:
        """Vacant indexes in allocation (pop) order.

        Unlike :meth:`cells` this is *not* abstract state — any free
        order satisfies the chain's contracts — but it is observable
        through subsequent allocations, so checkpoints carry it to make
        a restored chain replay byte-identically.
        """
        out = []
        cursor = self._free_head
        while cursor != self._NIL:
            out.append(cursor)
            cursor = self._next[cursor]
        return tuple(out)

    def restore_cells(self, cells, free_list=None) -> None:
        """Rebuild this (empty) chain from an age-ordered cell list.

        ``cells`` must be (index, timestamp) pairs oldest-first, as
        produced by :meth:`cells`. The chain invariants are enforced up
        front — indexes unique and in range, timestamps non-decreasing
        along the list — so a corrupted checkpoint is rejected before
        any state is mutated, never half-applied.

        ``free_list`` optionally fixes the vacant indexes' allocation
        order (as produced by :meth:`free_list`); it must cover exactly
        the indexes absent from ``cells``. Without it the free list is
        rebuilt ascending, like a fresh chain — allocation order then
        diverges from the checkpointed chain's, which is fine for a
        standby that never saw the original's free order but loses
        byte-identical replay.
        """
        if self._size:
            raise ValueError("restore_cells requires an empty chain")
        seen = set()
        previous_time = None
        for index, time in cells:
            self._check_index(index)
            if index in seen:
                raise ValueError(f"index {index} appears twice in the chain")
            seen.add(index)
            if previous_time is not None and time < previous_time:
                raise TimeRegression(
                    f"chain timestamps regress at index {index}: "
                    f"{time} < {previous_time}"
                )
            previous_time = time
        vacant = [i for i in range(self.index_range) if i not in seen]
        if free_list is not None:
            free_list = [int(i) for i in free_list]
            if sorted(free_list) != vacant:
                raise ValueError(
                    "free list must cover exactly the vacant indexes"
                )
            vacant = free_list
        for index, time in cells:
            self._allocated[index] = True
            self._append_allocated(index, time)
            self._size += 1
        self._free_head = self._NIL
        tail = self._NIL
        for index in vacant:
            if tail == self._NIL:
                self._free_head = index
            else:
                self._next[tail] = index
            self._next[index] = self._NIL
            tail = index
