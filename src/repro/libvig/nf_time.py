"""The ``nf_time`` abstraction: how NFs observe the current time.

libVig exposes time behind an interface so that (a) the verification
toolchain can substitute a symbolic model for it and (b) the testbed can
run NFs against a simulated clock. Times are integers in microseconds,
matching the granularity the paper's latency measurements use.
"""

from __future__ import annotations

import time as _time
from typing import Protocol


class Clock(Protocol):
    """Anything that can report the current time in microseconds."""

    def now(self) -> int:
        """Current time, microseconds, monotone non-decreasing."""
        ...


class MonotonicClock:
    """Wall clock backed by :func:`time.monotonic_ns`."""

    def now(self) -> int:
        return _time.monotonic_ns() // 1000


class SimulatedClock:
    """A manually advanced clock for the discrete-event testbed."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("time must be non-negative")
        self._now = start

    def now(self) -> int:
        return self._now

    def advance(self, delta: int) -> int:
        """Move time forward by ``delta`` microseconds; returns new time."""
        if delta < 0:
            raise ValueError("the clock cannot move backwards")
        self._now += delta
        return self._now

    def set(self, value: int) -> None:
        """Jump to an absolute time, which must not be in the past."""
        if value < self._now:
            raise ValueError("the clock cannot move backwards")
        self._now = value
