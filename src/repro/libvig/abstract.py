"""Pure functional abstract models of the libVig data structures.

The paper specifies each data type "in terms of abstract state that the
data types' methods operate on" (§5.1.2): the concrete map refines a
mathematical partial map, the ring a sequence, the double-chain an
age-ordered list of allocated indexes. These models are the ground truth
the refinement test-suite checks the concrete implementations against —
every concrete operation must commute with its abstract counterpart.

All models are immutable; operations return new model values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Tuple


@dataclass(frozen=True)
class AbstractMap:
    """A mathematical partial map with a fixed capacity."""

    entries: Mapping[Hashable, Any] = field(default_factory=dict)
    capacity: int = 0

    def has(self, key: Hashable) -> bool:
        return key in self.entries

    def get(self, key: Hashable) -> Any:
        return self.entries[key]

    def put(self, key: Hashable, value: Any) -> "AbstractMap":
        if key not in self.entries and len(self.entries) >= self.capacity:
            raise OverflowError("abstract map is full")
        updated = dict(self.entries)
        updated[key] = value
        return AbstractMap(updated, self.capacity)

    def erase(self, key: Hashable) -> "AbstractMap":
        updated = dict(self.entries)
        del updated[key]
        return AbstractMap(updated, self.capacity)

    def size(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class AbstractDoubleMap:
    """Two key spaces mapping into one indexed value store.

    ``values[i]`` is the stored value at index ``i``; ``by_a``/``by_b``
    map each key space to indexes. The flow-table invariant is that the
    three are consistent: ``by_a[ka] == i`` iff ``values[i]`` has first
    key ``ka``, and likewise for ``by_b``.
    """

    values: Mapping[int, Any] = field(default_factory=dict)
    by_a: Mapping[Hashable, int] = field(default_factory=dict)
    by_b: Mapping[Hashable, int] = field(default_factory=dict)
    capacity: int = 0

    def has_a(self, key: Hashable) -> bool:
        return key in self.by_a

    def has_b(self, key: Hashable) -> bool:
        return key in self.by_b

    def index_of_a(self, key: Hashable) -> int:
        return self.by_a[key]

    def index_of_b(self, key: Hashable) -> int:
        return self.by_b[key]

    def value_at(self, index: int) -> Any:
        return self.values[index]

    def put(self, index: int, key_a: Hashable, key_b: Hashable, value: Any) -> "AbstractDoubleMap":
        if index in self.values:
            raise KeyError(f"index {index} already occupied")
        if key_a in self.by_a or key_b in self.by_b:
            raise KeyError("key already present")
        if len(self.values) >= self.capacity:
            raise OverflowError("abstract double-map is full")
        values = dict(self.values)
        by_a = dict(self.by_a)
        by_b = dict(self.by_b)
        values[index] = value
        by_a[key_a] = index
        by_b[key_b] = index
        return AbstractDoubleMap(values, by_a, by_b, self.capacity)

    def erase(self, index: int, key_a: Hashable, key_b: Hashable) -> "AbstractDoubleMap":
        values = dict(self.values)
        by_a = dict(self.by_a)
        by_b = dict(self.by_b)
        del values[index]
        del by_a[key_a]
        del by_b[key_b]
        return AbstractDoubleMap(values, by_a, by_b, self.capacity)

    def size(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class AbstractRing:
    """A bounded FIFO sequence (front is element 0)."""

    items: Tuple[Any, ...] = ()
    capacity: int = 0

    def push_back(self, item: Any) -> "AbstractRing":
        if len(self.items) >= self.capacity:
            raise OverflowError("abstract ring is full")
        return AbstractRing(self.items + (item,), self.capacity)

    def pop_front(self) -> Tuple[Any, "AbstractRing"]:
        if not self.items:
            raise IndexError("abstract ring is empty")
        return self.items[0], AbstractRing(self.items[1:], self.capacity)

    def full(self) -> bool:
        return len(self.items) >= self.capacity

    def empty(self) -> bool:
        return not self.items


@dataclass(frozen=True)
class AbstractChain:
    """Allocated indexes ordered oldest-first with their timestamps.

    Models the double-chain allocator: a list of ``(index, time)`` pairs
    where rejuvenation moves an index to the back (most recent) and
    expiration removes from the front while timestamps are stale. The
    time sequence is non-decreasing from front to back.
    """

    cells: Tuple[Tuple[int, int], ...] = ()
    index_range: int = 0

    def allocated(self) -> Tuple[int, ...]:
        return tuple(index for index, _ in self.cells)

    def is_allocated(self, index: int) -> bool:
        return any(i == index for i, _ in self.cells)

    def timestamp_of(self, index: int) -> int:
        for i, t in self.cells:
            if i == index:
                return t
        raise KeyError(index)

    def allocate(self, index: int, time: int) -> "AbstractChain":
        if self.is_allocated(index):
            raise KeyError(f"index {index} already allocated")
        if not 0 <= index < self.index_range:
            raise IndexError(index)
        if self.cells and self.cells[-1][1] > time:
            raise ValueError("time went backwards")
        return AbstractChain(self.cells + ((index, time),), self.index_range)

    def rejuvenate(self, index: int, time: int) -> "AbstractChain":
        if not self.is_allocated(index):
            raise KeyError(index)
        kept = tuple(cell for cell in self.cells if cell[0] != index)
        if kept and kept[-1][1] > time:
            raise ValueError("time went backwards")
        return AbstractChain(kept + ((index, time),), self.index_range)

    def expire_older_than(self, time: int) -> Tuple[Tuple[int, ...], "AbstractChain"]:
        """Remove all front cells with timestamp < ``time``."""
        expired = []
        cells = list(self.cells)
        while cells and cells[0][1] < time:
            expired.append(cells.pop(0)[0])
        return tuple(expired), AbstractChain(tuple(cells), self.index_range)

    def free(self, index: int) -> "AbstractChain":
        if not self.is_allocated(index):
            raise KeyError(index)
        kept = tuple(cell for cell in self.cells if cell[0] != index)
        return AbstractChain(kept, self.index_range)

    def size(self) -> int:
        return len(self.cells)


def chain_times_nondecreasing(cells: Iterable[Tuple[int, int]]) -> bool:
    """Invariant helper: timestamps are non-decreasing front to back."""
    previous = None
    for _, t in cells:
        if previous is not None and t < previous:
            return False
        previous = t
    return True
