"""RSS-style flow steering for the sharded data path.

Real multi-queue NICs (82599 and up) spread load across cores with
Receive-Side Scaling: a hash of the 5-tuple selects the RX queue, so all
packets of one flow land on one core and per-core NF state needs no
locks. This module provides that hash plus the NAT-specific twist the
return path needs.

**Why plain RSS is not enough for a NAT.** Outbound traffic hashes on
the internal 5-tuple; the reply arrives bearing the *translated* tuple
(remote → EXT_IP:ext_port), which hashes to an unrelated queue — even a
symmetric hash cannot help, because translation rewrote the tuple.
What *does* identify the owning worker is the external port: each worker
allocates from a disjoint slice of the port range
(:meth:`repro.nat.config.NatConfig.partition`), so the translated
destination port names its allocator. :class:`NatSteering` therefore
steers external-side traffic by port ownership and everything else by
the RSS hash.

**Packets without L4 ports** (IP fragments, ICMP messages) must still
hash *consistently*: the fallback is a dst-IP-only hash, so every
fragment of a datagram — first fragment included, even though it carries
ports — lands on the same queue. ICMP *errors* quote the offending
packet's IP header + 8 L4 bytes (RFC 792); for an inbound error about a
translated flow, the quoted source port *is* the external port, so
:class:`NatSteering` recovers the owner from the quote instead of
falling back to the hash.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.nat.config import NatConfig
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_ICMP, Packet
from repro.packets.icmp import IcmpMessage

#: The IPv4 More-Fragments bit within the 3-bit flags field.
MORE_FRAGMENTS = 0x1

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def _fnv1a(data: bytes) -> int:
    """FNV-1a + avalanche: a deterministic stand-in for Toeplitz.

    Plain FNV-1a mixes its *low* bits poorly for near-consecutive keys
    (adjacent flows can collapse onto two of four queues), so the result
    runs through a murmur3-style finalizer — queue selection takes the
    hash modulo the queue count, which uses exactly those bits.
    """
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & 0xFFFFFFFF
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & 0xFFFFFFFF
    value ^= value >> 16
    return value


def is_fragment(packet: Packet) -> bool:
    """True for any fragment of a fragmented datagram (first included)."""
    if packet.ipv4 is None:
        return False
    return packet.ipv4.fragment_offset > 0 or bool(
        packet.ipv4.flags & MORE_FRAGMENTS
    )


def rss_hash_packet(packet: Packet) -> int:
    """The RSS hash of a packet, 32 bits.

    TCP/UDP over IPv4 hashes the full 5-tuple. When L4 ports are absent
    or unreliable — fragments (only the first carries ports), ICMP and
    other protocols (no ports at all) — the hash degrades to dst-IP-only
    so that all packets of one datagram, and a flow's error packets,
    hash identically. Non-IP frames hash to 0 (queue 0), like a NIC's
    default queue for unclassifiable traffic.
    """
    if packet.eth.ethertype != ETHERTYPE_IPV4 or packet.ipv4 is None:
        return 0
    if packet.l4 is not None and not is_fragment(packet):
        return _fnv1a(
            struct.pack(
                ">IIHHB",
                packet.ipv4.src_ip,
                packet.ipv4.dst_ip,
                packet.l4.src_port,
                packet.l4.dst_port,
                packet.ipv4.protocol,
            )
        )
    return _fnv1a(struct.pack(">I", packet.ipv4.dst_ip))


def rss_queue(packet: Packet, queue_count: int) -> int:
    """Map a packet to one of ``queue_count`` RX queues via the RSS hash."""
    if queue_count <= 0:
        raise ValueError("queue count must be positive")
    return rss_hash_packet(packet) % queue_count


class NatSteering:
    """NAT-aware worker selection over a partitioned port range.

    Holds the per-worker :class:`~repro.nat.config.NatConfig` shards
    (disjoint, exhaustive port ranges — see ``NatConfig.partition``).
    Forward-direction traffic is steered by the RSS hash; external-side
    traffic whose destination names a translated external port is
    steered to the worker *owning* that port, which is the worker whose
    allocator produced it — the invariant that keeps all of a flow's
    state on one worker with zero cross-worker lookups.
    """

    def __init__(self, shards: Sequence[NatConfig]) -> None:
        if not shards:
            raise ValueError("need at least one worker shard")
        first = shards[0]
        ranges: List[Tuple[int, int]] = []
        for cfg in shards:
            if (
                cfg.external_ip != first.external_ip
                or cfg.internal_device != first.internal_device
                or cfg.external_device != first.external_device
            ):
                raise ValueError("shards must share IP and device layout")
            ranges.append((cfg.start_port, cfg.end_port))
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            if start_b <= end_a:
                raise ValueError("shard port ranges must be disjoint and ordered")
        self.shards: Tuple[NatConfig, ...] = tuple(shards)
        self._ranges = ranges
        # Shard → serving worker slot. Identity until a failover
        # repartitions ownership (the promoted standby's slot takes
        # over the dead worker's shard); the indirection is what lets
        # the redirection table move without re-partitioning ports.
        self._slot_of_shard: List[int] = list(range(len(shards)))

    @property
    def worker_count(self) -> int:
        return len(self.shards)

    def owner_of_port(self, port: int) -> Optional[int]:
        """The worker whose port slice contains ``port``, if any."""
        shard = self.shard_of_port(port)
        if shard is None:
            return None
        return self._slot_of_shard[shard]

    def shard_of_port(self, port: int) -> Optional[int]:
        """The *shard index* whose port slice contains ``port``, if any."""
        for index, (start, end) in enumerate(self._ranges):
            if start <= port <= end:
                return index
        return None

    def reassign(self, shard_index: int, worker_slot: int) -> None:
        """Repartition: steer ``shard_index``'s traffic to ``worker_slot``.

        The failover controller calls this when a standby is promoted —
        the shard's port range is unchanged (state moved with it), only
        the serving queue in the redirection table moves.
        """
        if not 0 <= shard_index < len(self.shards):
            raise ValueError(f"no shard {shard_index}")
        if not 0 <= worker_slot < len(self.shards):
            raise ValueError(f"no worker slot {worker_slot}")
        self._slot_of_shard[shard_index] = worker_slot

    def _external_port_of(self, packet: Packet) -> Optional[int]:
        """The translated external port an external-side packet names.

        For TCP/UDP that is the destination port. For an ICMP error the
        quoted offending packet was one *we* emitted, so its quoted
        source must be (EXT_IP, ext_port) — the port is recovered from
        the quote. Fragments are excluded: only the first carries ports,
        and steering must treat all fragments of a datagram alike.
        """
        if packet.device != self.shards[0].external_device:
            return None
        if packet.ipv4 is None or is_fragment(packet):
            return None
        if packet.l4 is not None:
            return packet.l4.dst_port
        if packet.ipv4.protocol == PROTO_ICMP:
            try:
                message = IcmpMessage.unpack(packet.payload)
            except Exception:
                return None
            embedded = message.embedded()
            if embedded is None:
                return None
            inner_ip, inner_src_port, _inner_dst_port, _trailing = embedded
            if inner_ip.src_ip == self.shards[0].external_ip:
                return inner_src_port
        return None

    def worker_for(self, packet: Packet) -> int:
        """The worker this packet must be delivered to."""
        port = self._external_port_of(packet)
        if port is not None:
            owner = self.owner_of_port(port)
            if owner is not None:
                return owner
        return rss_queue(packet, len(self.shards))
