"""A finite mbuf pool with ownership/leak accounting.

DPDK applications receive packets in pool-allocated buffers and must
free (or transmit) every one; forgetting to is the leak class Vigor's
ownership tracking caught in VigNAT (§5.2.4). The simulated pool keeps
the same discipline observable: allocation fails when the pool is
exhausted, and ``in_flight`` exposes outstanding buffers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.packets.headers import Packet

#: The on-wire record layout mirroring :class:`Mbuf`'s fields — port,
#: device, receive timestamp (us), wire length — followed by the raw
#: wire bytes. Both process-runtime transports (pipe frames and
#: shared-memory ring slots, :mod:`repro.net.shmring`) carry exactly
#: this shape, so a record round-trips between them byte-identically.
SLOT_HEADER = struct.Struct(">HHqI")


def pack_slot_record(
    port: int, device: int, timestamp: int, wire: bytes
) -> bytes:
    """Frame one packet as a slot record: header + raw wire bytes.

    ``device`` rides the record because :meth:`Packet.wire_bytes` does
    not carry it — it is runtime routing state, not an on-wire field.
    """
    return SLOT_HEADER.pack(port, device, timestamp, len(wire)) + wire


def unpack_slot_records(
    blob: bytes, offset: int = 0
) -> List[Tuple[int, int, int, bytes]]:
    """Parse concatenated slot records: (port, device, timestamp, wire)."""
    records: List[Tuple[int, int, int, bytes]] = []
    end = len(blob)
    while offset < end:
        port, device, timestamp, length = SLOT_HEADER.unpack_from(blob, offset)
        offset += SLOT_HEADER.size
        records.append((port, device, timestamp, bytes(blob[offset : offset + length])))
        offset += length
    return records


class MbufPoolExhausted(RuntimeError):
    """No free buffers remain in the pool."""


@dataclass(slots=True)
class Mbuf:
    """One packet buffer: the payload packet plus receive metadata."""

    packet: Packet
    port: int = 0
    timestamp: int = 0  # hardware receive timestamp, microseconds
    _freed: bool = field(default=False, repr=False)
    #: The pool this buffer belongs to (None for hand-built mbufs).
    #: Under a sharded runtime every worker owns a private pool; the
    #: tag makes a cross-worker free an error at the offending call
    #: site instead of silently corrupting another pool's accounting.
    _owner: Optional["MbufPool"] = field(default=None, repr=False, compare=False)


class MbufPool:
    """Fixed-size buffer pool (like rte_pktmbuf_pool)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._free = capacity
        self.alloc_failures = 0
        #: Most buffers ever simultaneously in flight — the pool's
        #: high-water mark, a sizing signal for burst-mode main loops.
        #: Per-pool (per-worker) by construction: high-water marks are
        #: not additive, so merged snapshots report each worker's mark
        #: under its own label and aggregate by max, never by sum.
        self.high_water = 0

    @property
    def in_flight(self) -> int:
        """Buffers currently owned by the application."""
        return self.capacity - self._free

    @property
    def free_count(self) -> int:
        """Buffers currently available for allocation."""
        return self._free

    def alloc(self, packet: Packet, port: int = 0, timestamp: int = 0) -> Optional[Mbuf]:
        """Wrap a packet in a buffer; None when the pool is exhausted."""
        if self._free == 0:
            self.alloc_failures += 1
            return None
        self._free -= 1
        if self.in_flight > self.high_water:
            self.high_water = self.in_flight
        return Mbuf(packet=packet, port=port, timestamp=timestamp, _owner=self)

    def free(self, mbuf: Mbuf) -> None:
        """Return a buffer to the pool; double-free and over-credit are errors.

        A buffer allocated by another pool is rejected outright (the
        sharded runtime gives every worker a private pool, and crediting
        worker B's pool for worker A's buffer would corrupt both sides'
        ``in_flight`` accounting whether or not B's pool is full). For
        hand-built mbufs with no owner the capacity check is the only
        available defense, as before.
        """
        if mbuf._freed:
            raise RuntimeError("double free of mbuf")
        if mbuf._owner is not None and mbuf._owner is not self:
            raise RuntimeError(
                "over-credit: freeing another pool's mbuf (cross-worker free)"
            )
        if self._free >= self.capacity:
            # Every buffer is already home: this mbuf cannot be ours.
            # Crediting the pool anyway would let in_flight go negative
            # and mask real leaks elsewhere.
            raise RuntimeError(
                "over-credit: freeing a foreign mbuf into a full pool"
            )
        mbuf._freed = True
        self._free += 1

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry, labels=None) -> None:
        """Expose pool state as callback instruments (collect-on-demand).

        ``pool_high_water`` merges by max across label sets: each
        worker's pool is a separate resource, and summing watermarks
        would report a capacity pressure no single pool ever saw.
        """
        registry.gauge_fn(
            "pool_capacity", lambda: self.capacity, "total buffers in the pool", labels
        )
        registry.gauge_fn(
            "pool_in_flight",
            lambda: self.in_flight,
            "buffers currently owned by the application",
            labels,
        )
        registry.gauge_fn(
            "pool_high_water",
            lambda: self.high_water,
            "most buffers ever simultaneously in flight",
            labels,
            merge="max",
        )
        registry.counter_fn(
            "pool_alloc_failures_total",
            lambda: self.alloc_failures,
            "allocations refused because the pool was exhausted",
            labels,
        )
