"""A finite mbuf pool with ownership/leak accounting.

DPDK applications receive packets in pool-allocated buffers and must
free (or transmit) every one; forgetting to is the leak class Vigor's
ownership tracking caught in VigNAT (§5.2.4). The simulated pool keeps
the same discipline observable: allocation fails when the pool is
exhausted, and ``in_flight`` exposes outstanding buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.packets.headers import Packet


class MbufPoolExhausted(RuntimeError):
    """No free buffers remain in the pool."""


@dataclass(slots=True)
class Mbuf:
    """One packet buffer: the payload packet plus receive metadata."""

    packet: Packet
    port: int = 0
    timestamp: int = 0  # hardware receive timestamp, microseconds
    _freed: bool = field(default=False, repr=False)


class MbufPool:
    """Fixed-size buffer pool (like rte_pktmbuf_pool)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._free = capacity
        self.alloc_failures = 0
        #: Most buffers ever simultaneously in flight — the pool's
        #: high-water mark, a sizing signal for burst-mode main loops.
        self.high_water = 0

    @property
    def in_flight(self) -> int:
        """Buffers currently owned by the application."""
        return self.capacity - self._free

    @property
    def free_count(self) -> int:
        """Buffers currently available for allocation."""
        return self._free

    def alloc(self, packet: Packet, port: int = 0, timestamp: int = 0) -> Optional[Mbuf]:
        """Wrap a packet in a buffer; None when the pool is exhausted."""
        if self._free == 0:
            self.alloc_failures += 1
            return None
        self._free -= 1
        if self.in_flight > self.high_water:
            self.high_water = self.in_flight
        return Mbuf(packet=packet, port=port, timestamp=timestamp)

    def free(self, mbuf: Mbuf) -> None:
        """Return a buffer to the pool; double-free and over-credit are errors."""
        if mbuf._freed:
            raise RuntimeError("double free of mbuf")
        if self._free >= self.capacity:
            # Every buffer is already home: this mbuf cannot be ours.
            # Crediting the pool anyway would let in_flight go negative
            # and mask real leaks elsewhere.
            raise RuntimeError(
                "over-credit: freeing a foreign mbuf into a full pool"
            )
        mbuf._freed = True
        self._free += 1
