"""A DPDK-like runtime: burst receive/transmit over simulated ports.

The NFs in this reproduction consume single packets (they model a
single-core, one-packet-at-a-time data path, which is how the paper runs
its NFs), but the runtime exposes the familiar burst API so examples and
tests can drive NFs the way a DPDK main loop would.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.mbuf import Mbuf, MbufPool
from repro.net.nic import Port
from repro.packets.headers import Packet


class DpdkRuntime:
    """Ports plus an mbuf pool: the NF's execution environment."""

    def __init__(self, port_count: int = 2, rx_capacity: int = 512, pool_size: int = 4096) -> None:
        if port_count <= 0:
            raise ValueError("need at least one port")
        self.ports: Dict[int, Port] = {
            i: Port(port_id=i, rx_capacity=rx_capacity) for i in range(port_count)
        }
        self.pool = MbufPool(pool_size)

    def port(self, port_id: int) -> Port:
        return self.ports[port_id]

    # -- the burst API ----------------------------------------------------------
    def rx_burst(self, port_id: int, max_packets: int) -> List[Mbuf]:
        """rte_eth_rx_burst: up to ``max_packets`` buffers from the ring."""
        port = self.ports[port_id]
        burst: List[Mbuf] = []
        while len(burst) < max_packets:
            item = port.rx_pop()
            if item is None:
                break
            timestamp, packet = item
            mbuf = self.pool.alloc(packet, port=port_id, timestamp=timestamp)
            if mbuf is None:
                # Pool exhaustion behaves like an RX drop.
                port.counters.rx_dropped += 1
                break
            burst.append(mbuf)
        return burst

    def tx_burst(self, port_id: int, mbufs: List[Mbuf], timestamp: int) -> int:
        """rte_eth_tx_burst: transmit buffers, returning them to the pool."""
        port = self.ports[port_id]
        for mbuf in mbufs:
            port.transmit(mbuf.packet, timestamp)
            self.pool.free(mbuf)
        return len(mbufs)

    def free(self, mbuf: Mbuf) -> None:
        """rte_pktmbuf_free: drop a packet, returning its buffer."""
        self.pool.free(mbuf)

    # -- wire side -----------------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Deliver a packet to a port as if from the wire."""
        return self.ports[port_id].deliver(packet, timestamp)

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """All transmissions since last collect: (port, timestamp, packet)."""
        out: List[Tuple[int, int, Packet]] = []
        for port_id, port in sorted(self.ports.items()):
            for timestamp, packet in port.drain_tx():
                out.append((port_id, timestamp, packet))
        return out
