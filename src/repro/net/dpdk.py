"""A DPDK-like runtime: burst receive/transmit over simulated ports.

DPDK's native unit of work is the burst: ``rte_eth_rx_burst`` hands the
main loop up to N packets at once, the NF processes them, and one
``rte_eth_tx_burst`` per output port ships the survivors. The runtime
exposes that API plus :meth:`DpdkRuntime.main_loop_burst`, a complete
main-loop turn that drives any :class:`~repro.nat.base.NetworkFunction`
through its burst entry point with the no-leak discipline Vigor's
ownership tracking enforces (§5.2.4).

:class:`ShardedRuntime` scales that out: N workers, each a private
``DpdkRuntime`` plus an NF built from one shard of a partitioned
:class:`~repro.nat.config.NatConfig`, behind the NAT-aware RSS steering
of :mod:`repro.net.rss`. See ``docs/SCALING.md``.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, normalize_fastpath
from repro.net.mbuf import Mbuf, MbufPool
from repro.net.nic import Port, RssNic
from repro.net.rss import NatSteering
from repro.obs import flight
from repro.obs.registry import MetricsRegistry
from repro.packets.headers import Packet


class DpdkRuntime:
    """Ports plus an mbuf pool: the NF's execution environment."""

    def __init__(self, port_count: int = 2, rx_capacity: int = 512, pool_size: int = 4096) -> None:
        if port_count <= 0:
            raise ValueError("need at least one port")
        self.ports: Dict[int, Port] = {
            i: Port(port_id=i, rx_capacity=rx_capacity) for i in range(port_count)
        }
        self.pool = MbufPool(pool_size)
        #: Packets the NF itself decided to drop (its buffers were freed).
        self.nf_dropped = 0
        #: Which worker this runtime serves in a sharded deployment
        #: (0 standalone); labels trace events and metric samples.
        self.worker_id = 0

    def port(self, port_id: int) -> Port:
        return self.ports[port_id]

    # -- the burst API ----------------------------------------------------------
    def rx_burst(self, port_id: int, max_packets: int) -> List[Mbuf]:
        """rte_eth_rx_burst: up to ``max_packets`` buffers from the ring.

        A packet is only popped from the ring once a buffer is secured
        for it; on pool exhaustion it stays queued (counted as
        ``rx_nombuf``, like the hardware counter) rather than being lost.
        """
        port = self.ports[port_id]
        burst: List[Mbuf] = []
        while len(burst) < max_packets:
            if self.pool.free_count == 0:
                if port.rx_pending():
                    port.counters.rx_nombuf += 1
                break
            item = port.rx_pop()
            if item is None:
                break
            timestamp, packet = item
            # Cannot fail: a free buffer was checked for before the pop.
            mbuf = self.pool.alloc(packet, port=port_id, timestamp=timestamp)
            assert mbuf is not None
            burst.append(mbuf)
        return burst

    def tx_burst(self, port_id: int, mbufs: List[Mbuf], timestamp: int) -> int:
        """rte_eth_tx_burst: transmit buffers, returning them to the pool."""
        port = self.ports[port_id]
        for mbuf in mbufs:
            port.transmit(mbuf.packet, timestamp)
            self.pool.free(mbuf)
        return len(mbufs)

    def free(self, mbuf: Mbuf) -> None:
        """rte_pktmbuf_free: drop a packet, returning its buffer."""
        self.pool.free(mbuf)

    # -- the burst main loop ----------------------------------------------------
    def main_loop_burst(
        self, nf: NetworkFunction, now_us: int, burst_size: int = 32
    ) -> int:
        """One main-loop turn: rx_burst → ``nf.process_burst`` → tx_burst.

        Drains every port's RX ring in bursts of ``burst_size``, batches
        transmissions per output port, and frees the buffer of every
        dropped packet. Returns the number of packets processed.
        """
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        processed = 0
        # One recorder fetch per main-loop turn: with observability off
        # (the default no-op recorder) the per-packet trace calls below
        # are skipped entirely.
        recorder = obs.recorder()
        tracing = recorder.active
        for port_id in sorted(self.ports):
            while True:
                burst = self.rx_burst(port_id, burst_size)
                if not burst:
                    break
                if tracing:
                    for mbuf in burst:
                        recorder.trace(
                            flight.RX,
                            t_us=mbuf.timestamp,
                            worker=self.worker_id,
                            detail=f"port {port_id}",
                        )
                results = nf.process_burst([m.packet for m in burst], now_us)
                staged: Dict[int, List[Mbuf]] = {}
                for mbuf, outputs in zip(burst, results):
                    if not outputs:
                        if tracing:
                            recorder.trace(
                                flight.DROP,
                                t_us=now_us,
                                worker=self.worker_id,
                                reason=flight.REASON_NF_DROP,
                                wire=mbuf.packet.wire_bytes(),
                            )
                        self.free(mbuf)
                        self.nf_dropped += 1
                        continue
                    first = outputs[0]
                    mbuf.packet = first
                    staged.setdefault(first.device, []).append(mbuf)
                    for extra in outputs[1:]:  # multicast/flood NFs
                        clone = self.pool.alloc(extra, extra.device, now_us)
                        if clone is not None:
                            staged.setdefault(extra.device, []).append(clone)
                for out_port, mbufs in sorted(staged.items()):
                    if tracing:
                        for mbuf in mbufs:
                            recorder.trace(
                                flight.TX,
                                t_us=now_us,
                                worker=self.worker_id,
                                detail=f"port {out_port}",
                            )
                    self.tx_burst(out_port, mbufs, now_us)
                processed += len(burst)
        return processed

    def drop_causes(self) -> Dict[str, int]:
        """Drops (and near-drops) by cause, aggregated over all ports."""
        return {
            "rx_ring_full": sum(p.counters.rx_dropped for p in self.ports.values()),
            "rx_no_mbuf": sum(p.counters.rx_nombuf for p in self.ports.values()),
            "nf_drop": self.nf_dropped,
            "pool_high_water": self.pool.high_water,
        }

    # -- observability -----------------------------------------------------------
    def register_metrics(self, registry, labels=None) -> None:
        """Register this runtime's pool, ports and drop counters."""
        self.pool.register_metrics(registry, labels)
        for port in self.ports.values():
            port.register_metrics(registry, labels)
        registry.counter_fn(
            "runtime_nf_dropped_total",
            lambda: self.nf_dropped,
            "packets the NF decided to drop",
            labels,
        )

    def metrics_snapshot(self, nf: Optional[NetworkFunction] = None) -> Dict:
        """One collected snapshot of this runtime (plus its NF, if given)."""
        registry = MetricsRegistry()
        self.register_metrics(registry)
        if nf is not None:
            nf.register_metrics(registry)
        return registry.snapshot()

    # -- wire side -----------------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Deliver a packet to a port as if from the wire."""
        return self.ports[port_id].deliver(packet, timestamp)

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """All transmissions since last collect: (port, timestamp, packet)."""
        out: List[Tuple[int, int, Packet]] = []
        for port_id, port in sorted(self.ports.items()):
            for timestamp, packet in port.drain_tx():
                out.append((port_id, timestamp, packet))
        return out


class ShardedRuntime:
    """N independent workers behind one RSS-steered NIC.

    Each worker is a complete single-core data path — its own
    :class:`DpdkRuntime` (ports, mbuf pool) plus its own NF instance
    built from one shard of the partitioned configuration
    (:meth:`repro.nat.config.NatConfig.partition`), so no state, buffer
    or counter is ever shared between workers. Arriving packets pass the
    NAT-aware steering of :class:`repro.net.rss.NatSteering` (forward
    traffic by 5-tuple hash, return traffic by external-port ownership),
    which guarantees every packet of a flow — replies and ICMP errors
    included — reaches the worker holding that flow's state.

    :meth:`main_loop_burst` runs one burst-mode main-loop turn on every
    worker in a deterministic round-robin (worker 0 first), which keeps
    simulated runs reproducible; on hardware the workers would spin on
    their own cores concurrently. The verified per-packet core is
    untouched: sharding lives entirely in this (modelled) I/O layer.

    An optional ``fault_plan`` (:class:`repro.resil.faults.FaultPlan`)
    injects faults at the runtime's choke points: link drop/corrupt/
    delay and partitions at :meth:`inject` (the wire → NIC boundary),
    worker kill/hang, clock skew and mbuf-pool seizure at
    :meth:`main_loop_burst`. With no plan (the default) every code path
    is exactly as before — fault injection costs nothing when off.
    """

    def __init__(
        self,
        nf_factory: Callable[[NatConfig], NetworkFunction],
        config: Optional[NatConfig] = None,
        workers: int = 1,
        *,
        steering: Optional[NatSteering] = None,
        port_count: int = 2,
        rx_capacity: int = 512,
        pool_size: int = 4096,
        fastpath="off",
        fault_plan=None,
        _from_spec: bool = False,
    ) -> None:
        if not _from_spec:
            warnings.warn(
                "constructing ShardedRuntime directly is deprecated; "
                "describe the deployment as a repro.net.RuntimeSpec("
                "execution='threaded-deterministic') and launch() it",
                DeprecationWarning,
                stacklevel=2,
            )
        if workers <= 0:
            raise ValueError("need at least one worker")
        config = config if config is not None else NatConfig()
        self.config = config
        self.shards: Tuple[NatConfig, ...] = config.partition(workers)
        self.steering = steering if steering is not None else NatSteering(self.shards)
        self.nfs: List[NetworkFunction] = [nf_factory(cfg) for cfg in self.shards]
        fastpath = normalize_fastpath(fastpath)
        if fastpath != "off":
            # Per-worker microflow caches: each worker caches only the
            # flows steered to it, so caches stay private like all other
            # worker state.
            self.nfs = [FastPathNat(nf, mode=fastpath) for nf in self.nfs]
        self.runtimes: List[DpdkRuntime] = [
            DpdkRuntime(port_count, rx_capacity, pool_size) for _ in range(workers)
        ]
        for worker_id, runtime in enumerate(self.runtimes):
            runtime.worker_id = worker_id
        self.nic = RssNic(workers, steer=self.steering.worker_for)
        #: Duck-typed FaultPlan (kept untyped to avoid a net → resil
        #: import cycle); None means no fault machinery runs at all.
        self.fault_plan = fault_plan
        #: Packets the fault plan destroyed on the wire / corrupted.
        self.fault_wire_dropped = 0
        self.fault_wire_corrupted = 0
        #: Queued packets lost when a killed worker's rings were flushed.
        self.fault_kill_lost = 0
        # Buffers currently held hostage per worker by pool-exhaust faults.
        self._seized: List[List[Mbuf]] = [[] for _ in range(workers)]

    @property
    def workers(self) -> int:
        return len(self.nfs)

    @property
    def steered(self) -> List[int]:
        """Packets steered to each worker so far."""
        return list(self.nic.queue_packets)

    # -- wire side -----------------------------------------------------------
    def worker_for(self, packet: Packet) -> int:
        """The worker the steering stage would select (without counting)."""
        return self.steering.worker_for(packet)

    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Deliver a packet from the wire: RSS-steer, then enqueue.

        An active fault plan is consulted first, with the packet's
        steering target as the fault scope: a drop/partition verdict
        destroys the packet before the NIC ever sees it, corruption
        damages it in flight, and link delay slips its arrival stamp.
        """
        plan = self.fault_plan
        if plan is not None and not plan.empty:
            target = self.steering.worker_for(packet)
            verdict, delay_us = plan.link_verdict(timestamp, target)
            if verdict == "drop":
                self.fault_wire_dropped += 1
                recorder = obs.recorder()
                if recorder.active:
                    recorder.trace(
                        flight.DROP,
                        t_us=timestamp,
                        worker=target,
                        reason=flight.REASON_LINK_FAULT,
                    )
                return False
            if verdict == "corrupt":
                packet = plan.corrupt_packet(packet)
                self.fault_wire_corrupted += 1
            if delay_us:
                timestamp += delay_us
        worker = self.nic.select(packet)
        recorder = obs.recorder()
        if recorder.active:
            recorder.trace(
                flight.STEER,
                t_us=timestamp,
                worker=worker,
                detail=f"port {port_id}",
            )
        # The reorder draw happens for every delivered-verdict packet
        # (not only when a swap is possible) so the seeded RNG sequence
        # is identical across runtimes consulting the same plan.
        reorder = (
            plan is not None
            and not plan.empty
            and plan.reorder_fires(timestamp, worker)
        )
        accepted = self.runtimes[worker].inject(port_id, packet, timestamp)
        if reorder and accepted:
            self.runtimes[worker].ports[port_id].swap_tail()
        return accepted

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """All workers' transmissions, merged: (port, timestamp, packet)."""
        merged: List[Tuple[int, int, Packet]] = []
        for runtime in self.runtimes:
            merged.extend(runtime.collect())
        merged.sort(key=lambda item: item[1])  # stable: worker order on ties
        return merged

    def collect_by_worker(self) -> List[List[Tuple[int, int, Packet]]]:
        """Per-worker transmissions since the last collect."""
        return [runtime.collect() for runtime in self.runtimes]

    # -- the sharded main loop ------------------------------------------------
    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int:
        """One main-loop turn on every worker, round-robin, worker 0 first.

        Returns the total number of packets processed across workers.
        With a fault plan active, a killed worker's turn is skipped and
        its queued packets flushed (they are lost with the worker), a
        hung worker's turn is skipped with its queues intact, clock skew
        biases the ``now`` that worker's NF observes (a negative skew
        exercises the NATs' monotonic clamp), and pool-exhaust faults
        hold buffers hostage for the window's duration.
        """
        processed = 0
        plan = self.fault_plan
        faults_on = plan is not None and not plan.empty
        for worker_id, (runtime, nf) in enumerate(zip(self.runtimes, self.nfs)):
            worker_now = now_us
            if faults_on:
                if plan.worker_killed(now_us, worker_id):
                    self.fault_kill_lost += self._flush_rx(runtime, now_us)
                    continue
                if plan.worker_hung(now_us, worker_id):
                    continue
                self._apply_pool_seizure(
                    worker_id, runtime, plan.pool_seizure(now_us, worker_id)
                )
                skew = plan.clock_skew_us(now_us, worker_id)
                if skew:
                    worker_now = max(0, now_us + skew)
            processed += runtime.main_loop_burst(nf, worker_now, burst_size)
        return processed

    def flush_worker(self, worker_id: int, now_us: int) -> int:
        """Tear down one worker's queued packets (they die with it).

        The failover controller calls this at promotion time — the dead
        worker's RX rings are gone, so whatever they held is attributed
        to the kill. Returns the number of packets lost.
        """
        lost = self._flush_rx(self.runtimes[worker_id], now_us)
        self.fault_kill_lost += lost
        return lost

    def _flush_rx(self, runtime: DpdkRuntime, now_us: int) -> int:
        """Discard a dead worker's queued packets, returning the count."""
        lost = 0
        recorder = obs.recorder()
        tracing = recorder.active
        for port in runtime.ports.values():
            while True:
                item = port.rx_pop()
                if item is None:
                    break
                lost += 1
                if tracing:
                    recorder.trace(
                        flight.DROP,
                        t_us=now_us,
                        worker=runtime.worker_id,
                        reason=flight.REASON_WORKER_KILL,
                    )
        return lost

    def _apply_pool_seizure(
        self, worker_id: int, runtime: DpdkRuntime, target: int
    ) -> None:
        """Hold exactly ``target`` of this worker's buffers hostage.

        Seizure goes through the pool's public alloc/free so ownership
        accounting (in_flight, high_water, alloc_failures) tells the
        truth about the induced pressure.
        """
        held = self._seized[worker_id]
        while len(held) < target:
            mbuf = runtime.pool.alloc(None, port=0, timestamp=0)
            if mbuf is None:
                break  # pool already drier than the fault demands
            held.append(mbuf)
        while len(held) > target:
            runtime.pool.free(held.pop())

    # -- introspection ----------------------------------------------------------
    def flow_count(self) -> int:
        """Live translation entries across all workers."""
        return sum(
            nf.flow_count() for nf in self.nfs if hasattr(nf, "flow_count")
        )

    def per_worker_counters(self) -> List[Dict[str, int]]:
        """Each worker's NF operation counters, in worker order."""
        return [dict(nf.op_counters()) for nf in self.nfs]

    def op_counters(self) -> Dict[str, int]:
        """NF operation counters aggregated (summed) across workers."""
        aggregate: Dict[str, int] = {}
        for counters in self.per_worker_counters():
            for key, value in counters.items():
                aggregate[key] = aggregate.get(key, 0) + value
        return aggregate

    def drop_causes(self) -> Dict[str, int]:
        """Drop/near-drop causes aggregated across all workers.

        Drop counts sum; ``pool_high_water`` aggregates by max — every
        worker owns a private pool (sized ``pool_size`` each), so the
        merged watermark is the worst any single pool saw, not the sum
        of marks no pool ever reached together.
        """
        aggregate: Dict[str, int] = {}
        for runtime in self.runtimes:
            for key, value in runtime.drop_causes().items():
                if key == "pool_high_water":
                    aggregate[key] = max(aggregate.get(key, 0), value)
                else:
                    aggregate[key] = aggregate.get(key, 0) + value
        # Fault-attributed losses appear only when a plan is attached, so
        # fault-free reports stay byte-identical to the pre-fault layer.
        if self.fault_plan is not None:
            aggregate["fault_wire_dropped"] = self.fault_wire_dropped
            aggregate["fault_wire_corrupted"] = self.fault_wire_corrupted
            aggregate["fault_kill_lost"] = self.fault_kill_lost
        return aggregate

    # -- observability -----------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Register every worker's runtime + NF under a ``worker`` label.

        Each worker's pool reports into the merged snapshot as its own
        labeled sample (merge strategies do the aggregation at read
        time) — there is no shared mutable counter between workers,
        matching the no-shared-state discipline of the data path.
        """
        self.nic.register_metrics(registry)
        for worker_id, (runtime, nf) in enumerate(zip(self.runtimes, self.nfs)):
            labels = {"worker": str(worker_id)}
            runtime.register_metrics(registry, labels)
            nf.register_metrics(registry, labels)

    def metrics_snapshot(self) -> Dict:
        """One merged snapshot: NIC steering, all workers' runtimes + NFs."""
        registry = MetricsRegistry()
        self.register_metrics(registry)
        return registry.snapshot()

    def snapshot_metrics(self) -> Dict:
        """Protocol alias (see :class:`repro.net.app.Runtime`)."""
        return self.metrics_snapshot()

    # -- control plane -----------------------------------------------------------
    def checkpoint(self, now_us: int = 0):
        """A coordinated checkpoint of every shard, as one manifest.

        Single-threaded execution makes the fence trivial: between
        main-loop turns nothing is in flight and every RX ring has been
        drained, so the shard frames always form a consistent cut.
        """
        from repro.resil.checkpoint import snapshot_all

        return snapshot_all(self.nfs, now_us)

    def restore(self, checkpoint_set) -> None:
        """Adopt a coordinated checkpoint, one frame per worker, in order."""
        from repro.resil.checkpoint import restore_all

        restore_all(self.nfs, checkpoint_set)

    def stop(self) -> None:
        """Nothing to tear down — workers are plain objects in-thread."""
