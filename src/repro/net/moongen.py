"""MoonGen-style workload generation (§6's traffic mixes).

Sources yield time-ordered :class:`PacketEvent` streams. The two
workloads the paper's latency experiments use:

- *background flows*: N long-lived flows producing a fixed aggregate
  packet rate, keeping the flow table at a chosen occupancy;
- *probe flows*: 1,000 flows at 0.47 pps each, whose entries expire
  between packets (with the 2 s timeout), so every probe packet takes
  the NAT's worst-case path: lookup miss, then flow creation. Latency
  is measured on probe packets only.

Packets are prototyped once per flow (with valid checksums) and cloned
per transmission, like a generator replaying a pcap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Protocol

from repro.packets.builder import make_udp_packet
from repro.packets.headers import Packet

US = 1_000  # nanoseconds per microsecond
S = 1_000_000_000  # nanoseconds per second


@dataclass(frozen=True)
class PacketEvent:
    """One packet hitting the middlebox's wire at an absolute time."""

    time_ns: int
    packet: Packet
    probe: bool = False  # latency is measured on probe packets only


class PacketSource(Protocol):
    """Anything producing a time-ordered stream of packet events."""

    def events(self) -> Iterator[PacketEvent]: ...


def _flow_prototype(index: int, *, ip_base: int, dst_ip: str, dst_port: int, src_port_base: int, device: int) -> Packet:
    src_ip = ip_base + index
    src_port = src_port_base + (index % 40_000)
    return make_udp_packet(
        src_ip, dst_ip, src_port, dst_port, payload=b"\x00" * 18, device=device
    )


class BackgroundFlows:
    """N flows, aggregate ``total_pps``, round-robin, never expiring.

    ``burst`` > 1 emits packets back-to-back in wire bursts of that size
    (sharing one arrival timestamp) while preserving the aggregate rate —
    how MoonGen actually transmits when its TX queue batches.
    """

    def __init__(
        self,
        flow_count: int,
        total_pps: float,
        duration_ns: int,
        device: int = 0,
        start_ns: int = 0,
        ip_base: int = 0x0A000001,  # 10.0.0.1
        burst: int = 1,
    ) -> None:
        if flow_count <= 0 or total_pps <= 0:
            raise ValueError("flow_count and total_pps must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.flow_count = flow_count
        self.total_pps = total_pps
        self.duration_ns = duration_ns
        self.device = device
        self.start_ns = start_ns
        self.burst = burst
        self._prototypes: List[Packet] = [
            _flow_prototype(
                i,
                ip_base=ip_base,
                dst_ip="198.18.0.1",
                dst_port=80,
                src_port_base=10_000,
                device=device,
            )
            for i in range(flow_count)
        ]

    def events(self) -> Iterator[PacketEvent]:
        interval_ns = S / self.total_pps
        count = int(self.duration_ns / interval_ns)
        for i in range(count):
            # Packets of one wire burst share the burst's start time.
            time_ns = self.start_ns + int(
                (i // self.burst) * self.burst * interval_ns
            )
            prototype = self._prototypes[i % self.flow_count]
            yield PacketEvent(time_ns=time_ns, packet=prototype.clone())

    def prefill_events(self, spacing_ns: int = 2 * US) -> Iterator[PacketEvent]:
        """One packet per flow before the run starts, to fill the table."""
        base = self.start_ns - self.flow_count * spacing_ns
        for i, prototype in enumerate(self._prototypes):
            yield PacketEvent(time_ns=base + i * spacing_ns, packet=prototype.clone())


class ProbeFlows:
    """1,000 flows at 0.47 pps each (the paper's probe mix), staggered."""

    def __init__(
        self,
        flow_count: int = 1_000,
        per_flow_pps: float = 0.47,
        duration_ns: int = S,
        device: int = 0,
        start_ns: int = 0,
        ip_base: int = 0xAC100001,  # 172.16.0.1
    ) -> None:
        self.flow_count = flow_count
        self.per_flow_pps = per_flow_pps
        self.duration_ns = duration_ns
        self.device = device
        self.start_ns = start_ns
        self._prototypes: List[Packet] = [
            _flow_prototype(
                i,
                ip_base=ip_base,
                dst_ip="198.18.0.2",
                dst_port=53,
                src_port_base=20_000,
                device=device,
            )
            for i in range(flow_count)
        ]

    def events(self) -> Iterator[PacketEvent]:
        interval_ns = int(S / self.per_flow_pps)
        # Stagger flow phases uniformly so the probe load is smooth, and
        # add a prime sub-interval phase so probe arrivals never
        # phase-lock with the background generator's round intervals
        # (phase-locked arrivals would bill background service time to
        # every probe's latency).
        stagger_ns = interval_ns // max(1, self.flow_count)
        phase_ns = 7_919
        events: List[PacketEvent] = []
        for i, prototype in enumerate(self._prototypes):
            t = self.start_ns + i * stagger_ns + phase_ns
            while t < self.start_ns + self.duration_ns:
                events.append(
                    PacketEvent(time_ns=t, packet=prototype.clone(), probe=True)
                )
                t += interval_ns
        events.sort(key=lambda e: e.time_ns)
        return iter(events)


class ConstantRateFlows:
    """Fixed-rate round-robin traffic for the RFC 2544 throughput search.

    ``burst`` > 1 groups packets into wire bursts at the same aggregate
    rate, matching a burst-mode middlebox's receive pattern.
    """

    def __init__(
        self,
        flow_count: int,
        rate_pps: float,
        packet_count: int,
        device: int = 0,
        start_ns: int = 0,
        burst: int = 1,
        ip_base: int = 0x0A000001,  # 10.0.0.1
        dst_ip: str = "198.18.0.1",
    ) -> None:
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.flow_count = flow_count
        self.rate_pps = rate_pps
        self.packet_count = packet_count
        self.device = device
        self.start_ns = start_ns
        self.burst = burst
        self._prototypes: List[Packet] = [
            _flow_prototype(
                i,
                ip_base=ip_base,
                dst_ip=dst_ip,
                dst_port=80,
                src_port_base=10_000,
                device=device,
            )
            for i in range(flow_count)
        ]

    def events(self) -> Iterator[PacketEvent]:
        interval_ns = S / self.rate_pps
        for i in range(self.packet_count):
            yield PacketEvent(
                time_ns=self.start_ns
                + int((i // self.burst) * self.burst * interval_ns),
                packet=self._prototypes[i % self.flow_count].clone(),
            )


def merge_sources(*sources: Iterable[PacketEvent]) -> Iterator[PacketEvent]:
    """Merge several time-ordered event streams into one."""
    return heapq.merge(*sources, key=lambda event: event.time_ns)
