"""Optional link impairment: deterministic jitter and wire loss.

The paper's testbed is two machines on clean 10 GbE links, so the main
experiments run with a perfect wire. For robustness studies (and for
demonstrating that the NATs' *relative* results survive imperfect
links), the testbed accepts a :class:`LinkModel` that adds seeded,
reproducible per-packet jitter and random wire loss on the path into
the middlebox.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class LinkModel:
    """Seeded per-packet impairment: (extra latency, wire drop)."""

    #: Uniform jitter added to each packet's path latency, nanoseconds.
    jitter_ns: int = 0
    #: Probability a packet is lost on the wire before the RX ring.
    loss_probability: float = 0.0
    seed: int = 4242
    #: Optional :class:`repro.resil.faults.FaultPlan` (duck-typed to
    #: avoid a net → resil import cycle). When set, windowed link
    #: faults — drop, partition, delay — stack on top of the
    #: probabilistic impairment; None leaves the original path intact.
    fault_plan: Optional[object] = None

    def __post_init__(self) -> None:
        if self.jitter_ns < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def transit(self, t_us: Optional[int] = None) -> Tuple[int, bool]:
        """Impairment for one packet: (extra_latency_ns, dropped).

        ``t_us`` (the packet's wire time, µs) scopes windowed faults
        from an attached fault plan; callers that never pass it get
        exactly the historical seeded behavior.
        """
        dropped = (
            self.loss_probability > 0.0
            and self._rng.random() < self.loss_probability
        )
        extra = self._rng.randrange(self.jitter_ns + 1) if self.jitter_ns else 0
        plan = self.fault_plan
        if plan is not None and t_us is not None and not plan.empty:
            verdict, delay_us = plan.link_verdict(t_us)
            if verdict == "drop":
                dropped = True
            extra += delay_us * 1_000  # fault delays are µs; latency is ns
        return extra, dropped
