"""Lock-free SPSC rings over POSIX shared memory: the zero-copy transport.

The pipe transport of :mod:`repro.net.procrun` moves every packet
through four copies (frame, join, kernel write, kernel read) and two
syscalls per turn per worker — measured at roughly 8x the cost of a
shared-memory transfer for a 32-packet burst on this machine. This
module replaces the payload path with one :class:`ShmRing` per
direction per worker, backed by :class:`multiprocessing.shared_memory`:
the producer writes a burst straight into the mapped segment, the
consumer reads it out, and the only per-burst costs are one or two
``memcpy``-sized slice operations on each side.

Layout (one segment per ring)::

    [0:8)            head — slots produced, free-running uint64
    [64:72)          tail — slots consumed, free-running uint64
    [128:128+N*S)    N fixed-size slots of S bytes

``head`` is written only by the producer, ``tail`` only by the
consumer — the single-producer/single-consumer discipline that makes
the ring correct without locks. The indexes live on separate cache
lines so the two sides never write the same line. Capacity is
``head - tail`` (free-running counters never wrap in practice:
2^64 slots outlives the process).

Slots carry mbuf-shaped records — ``port, device, timestamp, len,
wire[]`` (:data:`repro.net.mbuf.SLOT_HEADER`), exactly the fields a
:class:`~repro.net.mbuf.Mbuf` holds — and a whole burst of them
occupies a *contiguous run of slots* behind one small span header.
One packet per slot would force a Python-level loop per record on both
sides, which micro-benchmarks put at 5-10x the cost of the pipe it is
meant to replace; spanning lets a turn's enqueue be a single slice
assignment (two when the span wraps) while keeping slot-granular
accounting for backpressure.

Synchronization contract: the process runtime's control pipe provides
the ordering fence. A producer finishes its span writes *before* the
pipe message that makes the consumer look (a pipe write is a syscall —
a full barrier — and shared memory is coherent), so the consumer
always observes complete spans. Within a turn the two sides never
touch the same slot range: the head/tail protocol itself keeps the
regions disjoint.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

from repro.net.mbuf import SLOT_HEADER, unpack_slot_records

#: Free-running produced/consumed slot counters (uint64, little-endian).
_INDEX = struct.Struct("<Q")
_HEAD_OFFSET = 0
_TAIL_OFFSET = 64
#: First slot starts here; head and tail each own a cache line.
DATA_OFFSET = 128

#: One span of records: total record bytes following the header.
_SPAN = struct.Struct("<I")

#: Default geometry: 4096 slots x 256 bytes = 1 MiB of payload ring.
#: Small slots keep internal fragmentation low (a span pads only to
#: its last slot boundary); plenty of slots keep backpressure rare.
DEFAULT_SLOTS = 4096
DEFAULT_SLOT_BYTES = 256


class RingClosed(RuntimeError):
    """The ring's shared memory segment is gone (peer unlinked it)."""


class ShmRing:
    """One single-producer/single-consumer ring over a shm segment.

    Exactly one process may push and exactly one may pop; the runtime
    creates two per worker (parent→worker inject, worker→parent TX).
    ``push_burst``/``pop_burst`` move whole bursts of mbuf-shaped
    records; ``free_slots``/``used_slots`` expose occupancy for
    backpressure decisions. The creator owns the segment's lifetime:
    call :meth:`unlink` exactly once (idempotent) when the fleet is
    torn down — :mod:`repro.net.procrun` guarantees this on every
    exit path via a ``weakref.finalize`` hook.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        create: bool = True,
    ) -> None:
        if slots <= 0:
            raise ValueError("ring needs at least one slot")
        if slot_bytes < SLOT_HEADER.size + _SPAN.size:
            raise ValueError(
                f"slot_bytes must hold at least a span and record header "
                f"({SLOT_HEADER.size + _SPAN.size} bytes)"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.capacity_bytes = slots * slot_bytes
        size = DATA_OFFSET + self.capacity_bytes
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=size
        )
        self._created = create
        if create:
            _INDEX.pack_into(self._shm.buf, _HEAD_OFFSET, 0)
            _INDEX.pack_into(self._shm.buf, _TAIL_OFFSET, 0)

    # -- index protocol ------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def head(self) -> int:
        return _INDEX.unpack_from(self._buf(), _HEAD_OFFSET)[0]

    @property
    def tail(self) -> int:
        return _INDEX.unpack_from(self._buf(), _TAIL_OFFSET)[0]

    def _publish_head(self, value: int) -> None:
        _INDEX.pack_into(self._buf(), _HEAD_OFFSET, value)

    def _publish_tail(self, value: int) -> None:
        _INDEX.pack_into(self._buf(), _TAIL_OFFSET, value)

    @property
    def used_slots(self) -> int:
        return self.head - self.tail

    @property
    def free_slots(self) -> int:
        return self.slots - self.used_slots

    def span_slots(self, record_bytes: int) -> int:
        """Slots one burst of ``record_bytes`` of records occupies."""
        return -(-(_SPAN.size + record_bytes) // self.slot_bytes)

    # -- producer side -------------------------------------------------------
    def try_push_burst(self, records: bytes) -> bool:
        """Enqueue one burst of concatenated records; False when full.

        ``records`` is the same concatenation of mbuf-shaped frames the
        pipe transport ships (``pack_record`` output) — the span header
        plus the bytes land in ``span_slots`` consecutive slots with
        one slice assignment (two on wraparound). An empty burst is a
        no-op (the consumer would have nothing to see).
        """
        if not records:
            return True
        need = self.span_slots(len(records))
        if need > self.slots:
            raise ValueError(
                f"burst of {len(records)} bytes needs {need} slots; "
                f"ring only has {self.slots} — raise ring_slots or "
                f"ring_slot_bytes"
            )
        head = self.head
        if need > self.slots - (head - self.tail):
            return False
        payload = _SPAN.pack(len(records)) + records
        start = (head % self.slots) * self.slot_bytes
        buf = self._buf()
        first = min(len(payload), self.capacity_bytes - start)
        buf[DATA_OFFSET + start : DATA_OFFSET + start + first] = payload[:first]
        if first < len(payload):  # span wraps: remainder starts at slot 0
            rest = len(payload) - first
            buf[DATA_OFFSET : DATA_OFFSET + rest] = payload[first:]
        self._publish_head(head + need)
        return True

    # -- consumer side -------------------------------------------------------
    def pop_burst_bytes(self) -> Optional[bytes]:
        """Dequeue one burst's raw record bytes, or None when empty."""
        tail = self.tail
        if self.head == tail:
            return None
        buf = self._buf()
        start = (tail % self.slots) * self.slot_bytes
        header_first = min(_SPAN.size, self.capacity_bytes - start)
        if header_first == _SPAN.size:
            (nbytes,) = _SPAN.unpack_from(buf, DATA_OFFSET + start)
        else:  # the 4-byte span header itself wraps
            raw = bytes(buf[DATA_OFFSET + start : DATA_OFFSET + start + header_first])
            raw += bytes(buf[DATA_OFFSET : DATA_OFFSET + _SPAN.size - header_first])
            (nbytes,) = _SPAN.unpack(raw)
        begin = (start + _SPAN.size) % self.capacity_bytes
        first = min(nbytes, self.capacity_bytes - begin)
        records = bytes(buf[DATA_OFFSET + begin : DATA_OFFSET + begin + first])
        if first < nbytes:
            records += bytes(buf[DATA_OFFSET : DATA_OFFSET + nbytes - first])
        self._publish_tail(tail + self.span_slots(nbytes))
        return records

    def pop_burst(self) -> Optional[List[Tuple[int, int, int, bytes]]]:
        """Dequeue one burst as (port, device, timestamp, wire) records."""
        records = self.pop_burst_bytes()
        if records is None:
            return None
        return unpack_slot_records(records)

    def drain(self) -> List[Tuple[int, int, int, bytes]]:
        """Pop every burst currently visible, preserving order."""
        out: List[Tuple[int, int, int, bytes]] = []
        while True:
            burst = self.pop_burst()
            if burst is None:
                return out
            out.extend(burst)

    # -- lifecycle -----------------------------------------------------------
    def _buf(self):
        buf = self._shm.buf
        if buf is None:
            raise RingClosed(f"ring {self._shm.name} is closed")
        return buf

    def close(self) -> None:
        """Detach this process's mapping (does not destroy the segment)."""
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Destroy the segment. Idempotent; only the creator should call."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def unlink_rings(rings) -> None:
    """Best-effort unlink of a batch of rings (every exit path funnels
    here: ``stop()``, crash handling, and the ``weakref.finalize``
    registered at fleet construction, which also covers parent
    exceptions and interpreter exit)."""
    for ring in rings:
        try:
            ring.unlink()
        except Exception:  # noqa: BLE001 — cleanup must never mask the exit
            pass


__all__ = [
    "DEFAULT_SLOTS",
    "DEFAULT_SLOT_BYTES",
    "RingClosed",
    "ShmRing",
    "unlink_rings",
]
