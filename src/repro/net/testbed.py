"""The RFC 2544 testbed: tester + middlebox, discrete-event simulated.

Mirrors Fig. 11: the Tester replays a workload into the Middlebox's
port, the Middlebox runs one NF on one core processing one packet at a
time, and the Tester timestamps what comes back. The middlebox's RX
descriptor ring is bounded, so offered load beyond the service rate
produces RFC 2544 loss — the knee the throughput search finds.

Latency for a forwarded packet is::

    queueing delay + NF processing (cost model) + fixed path overhead
    (+ rare DPDK outlier stall)

measured with "hardware timestamps" (exact simulation times), like the
paper's use of NIC timestamping [49].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.nat.base import NetworkFunction
from repro.net.costmodel import CostModel
from repro.net.link import LinkModel
from repro.net.moongen import ConstantRateFlows, PacketEvent

US = 1_000
S = 1_000_000_000


@dataclass
class LatencyStats:
    """Summary of per-packet latencies, nanoseconds."""

    samples: List[int] = field(default_factory=list)

    def add(self, value: int) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def average_us(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples) / US

    def confidence_interval_us(self) -> float:
        """Half-width of the 95% CI of the mean, microseconds.

        The paper reports ≈20 ns confidence intervals for Fig. 12; this
        is the corresponding statistic for our samples (normal
        approximation, 1.96 σ/√n).
        """
        n = len(self.samples)
        if n < 2:
            return math.nan
        mean = sum(self.samples) / n
        variance = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        return 1.96 * math.sqrt(variance / n) / US

    def percentile_us(self, fraction: float) -> float:
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank] / US

    def ccdf(self) -> List[tuple[float, float]]:
        """(latency_us, P[latency > x]) points, one per distinct sample."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        total = len(ordered)
        points: List[tuple[float, float]] = []
        for i, value in enumerate(ordered):
            if i + 1 < total and ordered[i + 1] == value:
                continue
            points.append((value / US, (total - (i + 1)) / total))
        return points


@dataclass
class RunResult:
    """Outcome of one workload replay through the middlebox."""

    offered: int = 0
    forwarded: int = 0
    nf_dropped: int = 0
    queue_dropped: int = 0
    wire_dropped: int = 0
    #: Core busy time and how the work arrived, for burst-mode analysis.
    busy_ns: int = 0
    bursts: int = 0
    burst_packets: int = 0
    probe_latency: LatencyStats = field(default_factory=LatencyStats)
    all_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.queue_dropped / self.offered

    @property
    def per_packet_busy_ns(self) -> float:
        """Average core occupancy per processed packet (service cost)."""
        if self.burst_packets == 0:
            return math.nan
        return self.busy_ns / self.burst_packets

    @property
    def avg_burst_fill(self) -> float:
        """Average packets per service burst (1.0 in single-packet mode)."""
        if self.bursts == 0:
            return math.nan
        return self.burst_packets / self.bursts


@dataclass
class ThroughputResult:
    """RFC 2544 binary-search outcome for one configuration."""

    flow_count: int
    max_mpps: float
    loss_fraction: float


@dataclass
class _Job:
    arrival_ns: int
    event: PacketEvent
    jitter_ns: int = 0


class Rfc2544Testbed:
    """Single-server FIFO middlebox fed by a time-ordered workload.

    With ``burst_size == 1`` (the default) the middlebox serves one
    packet per NF invocation — the paper's configuration. A larger
    ``burst_size`` models a DPDK main loop: each service turn picks up
    every packet already queued when service starts (up to the burst
    size), hands them to ``nf.process_burst`` in one call, and charges
    the cost model's per-burst fixed cost once — so bursts grow, and
    per-packet cost falls, exactly when the box is under pressure.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        rx_capacity: int = 512,
        measure_from_ns: int = 0,
        link: Optional[LinkModel] = None,
        burst_size: int = 1,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.rx_capacity = rx_capacity
        #: Events before this time are warm-up: processed but unmeasured.
        self.measure_from_ns = measure_from_ns
        #: Optional wire impairment (jitter + loss); None = clean links.
        self.link = link
        self.burst_size = burst_size

    # -- workload replay ---------------------------------------------------------
    def run(self, nf: NetworkFunction, events: Iterable[PacketEvent]) -> RunResult:
        result = RunResult()
        queue: List[_Job] = []
        head = 0  # queue is consumed front-to-back without reallocating
        free_at = 0

        def serve_one() -> None:
            nonlocal free_at, head
            job = queue[head]
            head += 1
            start = max(free_at, job.arrival_ns)
            now_us = start // US
            outputs = nf.process(job.event.packet, now_us)
            latency_ns, service_ns = self.cost_model.packet_costs(nf)
            free_at = start + service_ns
            result.busy_ns += service_ns
            result.bursts += 1
            result.burst_packets += 1
            measured = job.arrival_ns >= self.measure_from_ns
            if not outputs:
                result.nf_dropped += 1
                return
            if measured:
                total = (
                    (start - job.arrival_ns)
                    + latency_ns
                    + job.jitter_ns
                    + self.cost_model.path_overhead_ns(nf)
                    + self.cost_model.sample_outlier_ns()
                )
                result.all_latency.add(total)
                if job.event.probe:
                    result.probe_latency.add(total)

        def serve_burst() -> None:
            # rx_burst semantics: service starts on the head job, and
            # every job already queued by then rides the same burst.
            nonlocal free_at, head
            first = queue[head]
            start = max(free_at, first.arrival_ns)
            batch = [first]
            scan = head + 1
            while (
                scan < len(queue)
                and len(batch) < self.burst_size
                and queue[scan].arrival_ns <= start
            ):
                batch.append(queue[scan])
                scan += 1
            head = scan
            now_us = start // US
            outputs = nf.process_burst([j.event.packet for j in batch], now_us)
            latency_ns, service_ns = self.cost_model.burst_costs(nf, len(batch))
            free_at = start + service_ns
            result.busy_ns += service_ns
            result.bursts += 1
            result.burst_packets += len(batch)
            for job, out in zip(batch, outputs):
                if not out:
                    result.nf_dropped += 1
                    continue
                if job.arrival_ns >= self.measure_from_ns:
                    total = (
                        (start - job.arrival_ns)
                        + latency_ns
                        + job.jitter_ns
                        + self.cost_model.path_overhead_ns(nf)
                        + self.cost_model.sample_outlier_ns()
                    )
                    result.all_latency.add(total)
                    if job.event.probe:
                        result.probe_latency.add(total)

        serve = serve_one if self.burst_size == 1 else serve_burst

        for event in events:
            if event.time_ns >= self.measure_from_ns:
                result.offered += 1
            jitter_ns = 0
            if self.link is not None:
                jitter_ns, wire_dropped = self.link.transit()
                if wire_dropped:
                    if event.time_ns >= self.measure_from_ns:
                        result.wire_dropped += 1
                    continue
            # Drain every job whose service can start before this arrival.
            while head < len(queue):
                start = max(free_at, queue[head].arrival_ns)
                if start >= event.time_ns:
                    break
                serve()
            if len(queue) - head >= self.rx_capacity:
                if event.time_ns >= self.measure_from_ns:
                    result.queue_dropped += 1
                continue
            queue.append(_Job(arrival_ns=event.time_ns, event=event, jitter_ns=jitter_ns))
        while head < len(queue):
            serve()

        result.forwarded = result.all_latency.count
        return result

    # -- RFC 2544 throughput search -------------------------------------------------
    def max_throughput(
        self,
        nf_factory: Callable[[], NetworkFunction],
        flow_count: int,
        *,
        max_loss: float = 0.001,
        packet_count: int = 30_000,
        iterations: int = 8,
        rate_hint_pps: Optional[float] = None,
    ) -> ThroughputResult:
        """Binary-search the highest rate with loss below ``max_loss``."""
        # Seed the search window from the NF's steady-state service time:
        # replay a small flow set until lookups are hits, then average.
        if rate_hint_pps is None:
            sample_flows = min(flow_count, 2_000)
            warm = sample_flows
            count = 2_000
            nf = nf_factory()
            model = CostModel()
            total_service_ns = 0
            measured = 0
            events = list(ConstantRateFlows(sample_flows, 1e5, warm + count).events())
            step = self.burst_size
            for i in range(0, len(events), step):
                chunk = events[i : i + step]
                now_us = chunk[0].time_ns // US
                if step == 1:
                    nf.process(chunk[0].packet, now_us)
                    _lat, svc = model.packet_costs(nf)
                else:
                    # Estimate steady state at full burst fill, the
                    # regime the search's saturating rates operate in.
                    nf.process_burst([e.packet for e in chunk], now_us)
                    _lat, svc = model.burst_costs(nf, len(chunk))
                if i >= warm:
                    total_service_ns += svc
                    measured += len(chunk)
            rate_hint_pps = S / (total_service_ns / max(1, measured))

        low = rate_hint_pps * 0.7
        high = rate_hint_pps * 1.4
        best = low
        best_loss = 0.0
        for _ in range(iterations):
            rate = (low + high) / 2
            nf = nf_factory()
            workload = ConstantRateFlows(flow_count, rate, packet_count)
            outcome = self.run(nf, workload.events())
            if outcome.loss_fraction <= max_loss:
                best = rate
                best_loss = outcome.loss_fraction
                low = rate
            else:
                high = rate
        return ThroughputResult(
            flow_count=flow_count,
            max_mpps=best / 1e6,
            loss_fraction=best_loss,
        )
