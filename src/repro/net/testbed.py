"""The RFC 2544 testbed: tester + middlebox, discrete-event simulated.

Mirrors Fig. 11: the Tester replays a workload into the Middlebox's
port, the Middlebox runs one NF on one core processing one packet at a
time, and the Tester timestamps what comes back. The middlebox's RX
descriptor ring is bounded, so offered load beyond the service rate
produces RFC 2544 loss — the knee the throughput search finds.

Latency for a forwarded packet is::

    queueing delay + NF processing (cost model) + fixed path overhead
    (+ rare DPDK outlier stall)

measured with "hardware timestamps" (exact simulation times), like the
paper's use of NIC timestamping [49].
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.nat.base import NetworkFunction
from repro.net.costmodel import CostModel
from repro.net.link import LinkModel
from repro.net.moongen import ConstantRateFlows, PacketEvent
from repro.obs.histogram import LatencyHistogram
from repro.obs.registry import MetricsRegistry

US = 1_000
S = 1_000_000_000


@dataclass
class LatencyStats:
    """Summary of per-packet latencies, nanoseconds."""

    samples: List[int] = field(default_factory=list)

    def add(self, value: int) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def average_us(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples) / US

    def confidence_interval_us(self) -> float:
        """Half-width of the 95% CI of the mean, microseconds.

        The paper reports ≈20 ns confidence intervals for Fig. 12; this
        is the corresponding statistic for our samples (normal
        approximation, 1.96 σ/√n).
        """
        n = len(self.samples)
        if n < 2:
            return math.nan
        mean = sum(self.samples) / n
        variance = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        return 1.96 * math.sqrt(variance / n) / US

    def percentile_us(self, fraction: float) -> float:
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank] / US

    def to_histogram(self) -> LatencyHistogram:
        """The samples as a log2-bucketed, mergeable histogram.

        Built on demand from the exact sample list (the measurement path
        itself stays untouched); per-worker histograms merge exactly, so
        sharded runs aggregate without re-touching raw samples.
        """
        return LatencyHistogram.of(self.samples)

    def ccdf(self) -> List[tuple[float, float]]:
        """(latency_us, P[latency > x]) points, one per distinct sample."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        total = len(ordered)
        points: List[tuple[float, float]] = []
        for i, value in enumerate(ordered):
            if i + 1 < total and ordered[i + 1] == value:
                continue
            points.append((value / US, (total - (i + 1)) / total))
        return points


@dataclass
class RunResult:
    """Outcome of one workload replay through the middlebox."""

    offered: int = 0
    forwarded: int = 0
    nf_dropped: int = 0
    queue_dropped: int = 0
    wire_dropped: int = 0
    #: Core busy time and how the work arrived, for burst-mode analysis.
    busy_ns: int = 0
    bursts: int = 0
    burst_packets: int = 0
    probe_latency: LatencyStats = field(default_factory=LatencyStats)
    all_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.queue_dropped / self.offered

    @property
    def per_packet_busy_ns(self) -> float:
        """Average core occupancy per processed packet (service cost)."""
        if self.burst_packets == 0:
            return math.nan
        return self.busy_ns / self.burst_packets

    @property
    def avg_burst_fill(self) -> float:
        """Average packets per service burst (1.0 in single-packet mode)."""
        if self.bursts == 0:
            return math.nan
        return self.burst_packets / self.bursts

    def register_metrics(self, registry, labels=None) -> None:
        """Publish this run's counters and latency distributions."""
        for name, fn, help_text in (
            ("testbed_offered_total", lambda: self.offered, "measured packets offered"),
            ("testbed_forwarded_total", lambda: self.forwarded, "measured packets forwarded"),
            ("testbed_nf_dropped_total", lambda: self.nf_dropped, "packets the NF dropped"),
            (
                "testbed_queue_dropped_total",
                lambda: self.queue_dropped,
                "packets lost to a full RX ring",
            ),
            (
                "testbed_wire_dropped_total",
                lambda: self.wire_dropped,
                "packets lost on the wire",
            ),
            ("testbed_busy_ns_total", lambda: self.busy_ns, "core busy time, ns"),
        ):
            registry.counter_fn(name, fn, help_text, labels)
        registry.histogram_fn(
            "testbed_latency_ns",
            self.all_latency.to_histogram,
            "per-packet latency, ns (all forwarded packets)",
            labels,
        )
        registry.histogram_fn(
            "testbed_probe_latency_ns",
            self.probe_latency.to_histogram,
            "per-packet latency, ns (probe packets)",
            labels,
        )

    def metrics_snapshot(self, nf: Optional[NetworkFunction] = None) -> dict:
        """One collected snapshot of this run (plus its NF, if given)."""
        registry = MetricsRegistry()
        self.register_metrics(registry)
        if nf is not None:
            nf.register_metrics(registry)
        return registry.snapshot()


@dataclass
class ThroughputResult:
    """RFC 2544 binary-search outcome for one configuration."""

    flow_count: int
    max_mpps: float
    loss_fraction: float


@dataclass
class ShardedRunResult:
    """Outcome of one workload replay through N parallel workers.

    Each worker is an independent single-core middlebox with its own
    queue; this holds one :class:`RunResult` per worker plus the
    steering spread. Aggregates are sums — the workers run on separate
    cores, so their busy times overlap in wall-clock terms and the
    aggregate service capacity is the *sum* of per-worker rates
    (:meth:`aggregate_mpps`), not the rate implied by summed busy time.
    """

    per_worker: List[RunResult] = field(default_factory=list)
    #: All packets steered to each worker (warm-up included).
    steered: List[int] = field(default_factory=list)
    #: The shard NFs the run drove, in worker order — populated by
    #: :meth:`Rfc2544Testbed.run_spec` (which owns their construction)
    #: so callers can read counters without rebuilding the shards.
    nfs: Optional[List[NetworkFunction]] = None

    @property
    def workers(self) -> int:
        return len(self.per_worker)

    def op_counters(self) -> dict:
        """NF operation counters summed across shards (run_spec runs)."""
        aggregate: dict = {}
        for nf in self.nfs or []:
            for key, value in nf.op_counters().items():
                aggregate[key] = aggregate.get(key, 0) + value
        return aggregate

    @property
    def offered(self) -> int:
        return sum(r.offered for r in self.per_worker)

    @property
    def forwarded(self) -> int:
        return sum(r.forwarded for r in self.per_worker)

    @property
    def nf_dropped(self) -> int:
        return sum(r.nf_dropped for r in self.per_worker)

    @property
    def queue_dropped(self) -> int:
        return sum(r.queue_dropped for r in self.per_worker)

    @property
    def loss_fraction(self) -> float:
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.queue_dropped / offered

    @property
    def burst_packets(self) -> int:
        return sum(r.burst_packets for r in self.per_worker)

    @property
    def per_packet_busy_ns(self) -> float:
        """Mean core occupancy per packet across workers (per-core cost)."""
        packets = self.burst_packets
        if packets == 0:
            return math.nan
        return sum(r.busy_ns for r in self.per_worker) / packets

    def per_worker_mpps(self) -> List[float]:
        """Each worker's service-limited forwarding rate, Mpps."""
        rates: List[float] = []
        for result in self.per_worker:
            busy = result.per_packet_busy_ns
            rates.append(1_000.0 / busy if result.burst_packets and busy > 0 else 0.0)
        return rates

    def aggregate_mpps(self) -> float:
        """Service-limited rate of the whole sharded box: sum of workers."""
        return sum(self.per_worker_mpps())

    def merged_latency(self) -> LatencyHistogram:
        """All workers' latency samples as one merged histogram.

        Per-worker histograms merge associatively (bucket-count adds),
        so the box-wide p50/p99/p99.9 is exact, not an average of
        per-worker percentiles.
        """
        return LatencyHistogram.merge_all(
            r.all_latency.to_histogram() for r in self.per_worker
        )

    def metrics_snapshot(
        self, nfs: Optional[Sequence[NetworkFunction]] = None
    ) -> dict:
        """One merged snapshot: per-worker labeled runs (plus their NFs)."""
        registry = MetricsRegistry()
        for worker_id, result in enumerate(self.per_worker):
            labels = {"worker": str(worker_id)}
            result.register_metrics(registry, labels)
            if nfs is not None:
                nfs[worker_id].register_metrics(registry, labels)
        return registry.snapshot()


@dataclass
class _Job:
    arrival_ns: int
    event: PacketEvent
    jitter_ns: int = 0


class Rfc2544Testbed:
    """Single-server FIFO middlebox fed by a time-ordered workload.

    With ``burst_size == 1`` (the default) the middlebox serves one
    packet per NF invocation — the paper's configuration. A larger
    ``burst_size`` models a DPDK main loop: each service turn picks up
    every packet already queued when service starts (up to the burst
    size), hands them to ``nf.process_burst`` in one call, and charges
    the cost model's per-burst fixed cost once — so bursts grow, and
    per-packet cost falls, exactly when the box is under pressure.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        rx_capacity: int = 512,
        measure_from_ns: int = 0,
        link: Optional[LinkModel] = None,
        burst_size: int = 1,
        workers: int = 1,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        if workers <= 0:
            raise ValueError("worker count must be positive")
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.rx_capacity = rx_capacity
        #: Events before this time are warm-up: processed but unmeasured.
        self.measure_from_ns = measure_from_ns
        #: Optional wire impairment (jitter + loss); None = clean links.
        self.link = link
        self.burst_size = burst_size
        #: Parallel worker cores (:meth:`run_sharded`); :meth:`run` is the
        #: single-core path regardless, so ``workers == 1`` stays
        #: byte-identical to the pre-sharding testbed.
        self.workers = workers

    # -- workload replay ---------------------------------------------------------
    def run(self, nf: NetworkFunction, events: Iterable[PacketEvent]) -> RunResult:
        result = RunResult()
        queue: List[_Job] = []
        head = 0  # queue is consumed front-to-back without reallocating
        free_at = 0

        def serve_one() -> None:
            nonlocal free_at, head
            job = queue[head]
            head += 1
            start = max(free_at, job.arrival_ns)
            now_us = start // US
            outputs = nf.process(job.event.packet, now_us)
            latency_ns, service_ns = self.cost_model.packet_costs(nf)
            free_at = start + service_ns
            result.busy_ns += service_ns
            result.bursts += 1
            result.burst_packets += 1
            measured = job.arrival_ns >= self.measure_from_ns
            if not outputs:
                result.nf_dropped += 1
                return
            if measured:
                total = (
                    (start - job.arrival_ns)
                    + latency_ns
                    + job.jitter_ns
                    + self.cost_model.path_overhead_ns(nf)
                    + self.cost_model.sample_outlier_ns()
                )
                result.all_latency.add(total)
                if job.event.probe:
                    result.probe_latency.add(total)

        def serve_burst() -> None:
            # rx_burst semantics: service starts on the head job, and
            # every job already queued by then rides the same burst.
            nonlocal free_at, head
            first = queue[head]
            start = max(free_at, first.arrival_ns)
            batch = [first]
            scan = head + 1
            while (
                scan < len(queue)
                and len(batch) < self.burst_size
                and queue[scan].arrival_ns <= start
            ):
                batch.append(queue[scan])
                scan += 1
            head = scan
            now_us = start // US
            outputs = nf.process_burst([j.event.packet for j in batch], now_us)
            latency_ns, service_ns = self.cost_model.burst_costs(nf, len(batch))
            free_at = start + service_ns
            result.busy_ns += service_ns
            result.bursts += 1
            result.burst_packets += len(batch)
            for job, out in zip(batch, outputs):
                if not out:
                    result.nf_dropped += 1
                    continue
                if job.arrival_ns >= self.measure_from_ns:
                    total = (
                        (start - job.arrival_ns)
                        + latency_ns
                        + job.jitter_ns
                        + self.cost_model.path_overhead_ns(nf)
                        + self.cost_model.sample_outlier_ns()
                    )
                    result.all_latency.add(total)
                    if job.event.probe:
                        result.probe_latency.add(total)

        serve = serve_one if self.burst_size == 1 else serve_burst

        for event in events:
            if event.time_ns >= self.measure_from_ns:
                result.offered += 1
            jitter_ns = 0
            if self.link is not None:
                jitter_ns, wire_dropped = self.link.transit(event.time_ns // US)
                if wire_dropped:
                    if event.time_ns >= self.measure_from_ns:
                        result.wire_dropped += 1
                    continue
            # Drain every job whose service can start before this arrival.
            while head < len(queue):
                start = max(free_at, queue[head].arrival_ns)
                if start >= event.time_ns:
                    break
                serve()
            if len(queue) - head >= self.rx_capacity:
                if event.time_ns >= self.measure_from_ns:
                    result.queue_dropped += 1
                continue
            queue.append(_Job(arrival_ns=event.time_ns, event=event, jitter_ns=jitter_ns))
        while head < len(queue):
            serve()

        result.forwarded = result.all_latency.count
        return result

    # -- sharded replay: N parallel worker cores ---------------------------------
    def run_sharded(
        self,
        nfs: Sequence[NetworkFunction],
        steer: Callable[..., int],
        events: Iterable[PacketEvent],
    ) -> ShardedRunResult:
        """Deprecated: build a :class:`~repro.net.app.RuntimeSpec` and
        call :meth:`run_spec` instead — it owns shard construction and
        steering, so callers can no longer pair mismatched NFs/steering.
        """
        warnings.warn(
            "Rfc2544Testbed.run_sharded(nfs, steer, events) is deprecated; "
            "describe the deployment as a repro.net.RuntimeSpec and call "
            "run_spec(spec, events)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_sharded(nfs, steer, events)

    def run_spec(
        self, spec, events: Iterable[PacketEvent]
    ) -> ShardedRunResult:
        """Replay a workload through the deployment a spec describes.

        The analytic counterpart of :func:`repro.net.app.launch`: builds
        the spec's shard NFs (partitioned config, optional fastpath
        wrappers) and NAT-aware steering, then runs the discrete-event
        model. ``spec.execution`` does not change the outcome here — the
        model always assumes one real core per worker, which is exactly
        what the ``process`` mode provides and the deterministic mode
        simulates. Replication specs are refused: the analytic model has
        no failover controller.
        """
        if spec.replication_lag is not None:
            raise ValueError(
                "run_spec models plain data paths; failover runs need "
                "launch() with a replicated deterministic runtime"
            )
        if spec.workers != self.workers:
            raise ValueError(
                f"testbed configured for {self.workers} worker(s), "
                f"spec wants {spec.workers}"
            )
        from repro.nat.fastpath import FastPathNat
        from repro.net.rss import NatSteering

        config = spec.resolved_config()
        shards = config.partition(spec.workers)
        nfs: List[NetworkFunction] = [spec.nf_factory(cfg) for cfg in shards]
        if spec.fastpath != "off":
            nfs = [FastPathNat(nf, mode=spec.fastpath) for nf in nfs]
        steering = NatSteering(shards)
        outcome = self._run_sharded(nfs, steering.worker_for, events)
        outcome.nfs = nfs
        return outcome

    def _run_sharded(
        self,
        nfs: Sequence[NetworkFunction],
        steer: Callable[..., int],
        events: Iterable[PacketEvent],
    ) -> ShardedRunResult:
        """Replay a workload through N workers selected by ``steer``.

        Models the sharded data path: every worker is an independent
        single-server FIFO (its own RX ring of ``rx_capacity``, its own
        burst service loop, its own NF), and an RSS-style steering
        function maps each arriving packet to its worker — pass
        :meth:`repro.net.rss.NatSteering.worker_for` for NAT-correct
        return-traffic steering. Workers run on separate cores: each has
        its own ``free_at`` clock, so their service times overlap.
        The cost model additionally charges
        :meth:`~repro.net.costmodel.CostModel.steering_overhead_ns`
        per packet when more than one worker is configured.
        """
        n = len(nfs)
        if n == 0:
            raise ValueError("need at least one worker NF")
        if n != self.workers:
            raise ValueError(
                f"testbed configured for {self.workers} worker(s), got {n} NFs"
            )
        results = [RunResult() for _ in range(n)]
        steered = [0] * n
        queues: List[List[_Job]] = [[] for _ in range(n)]
        heads = [0] * n
        free_at = [0] * n
        steer_ns = self.cost_model.steering_overhead_ns(n)

        def serve(w: int) -> None:
            result = results[w]
            queue = queues[w]
            first = queue[heads[w]]
            start = max(free_at[w], first.arrival_ns)
            batch = [first]
            scan = heads[w] + 1
            while (
                scan < len(queue)
                and len(batch) < self.burst_size
                and queue[scan].arrival_ns <= start
            ):
                batch.append(queue[scan])
                scan += 1
            heads[w] = scan
            now_us = start // US
            outputs = nfs[w].process_burst([j.event.packet for j in batch], now_us)
            latency_ns, service_ns = self.cost_model.burst_costs(nfs[w], len(batch))
            latency_ns += steer_ns
            service_ns += steer_ns * len(batch)
            free_at[w] = start + service_ns
            result.busy_ns += service_ns
            result.bursts += 1
            result.burst_packets += len(batch)
            for job, out in zip(batch, outputs):
                if not out:
                    result.nf_dropped += 1
                    continue
                if job.arrival_ns >= self.measure_from_ns:
                    total = (
                        (start - job.arrival_ns)
                        + latency_ns
                        + job.jitter_ns
                        + self.cost_model.path_overhead_ns(nfs[w])
                        + self.cost_model.sample_outlier_ns()
                    )
                    result.all_latency.add(total)
                    if job.event.probe:
                        result.probe_latency.add(total)

        for event in events:
            target = steer(event.packet)
            measured = event.time_ns >= self.measure_from_ns
            if measured:
                results[target].offered += 1
            steered[target] += 1
            jitter_ns = 0
            if self.link is not None:
                jitter_ns, wire_dropped = self.link.transit(event.time_ns // US)
                if wire_dropped:
                    if measured:
                        results[target].wire_dropped += 1
                    continue
            # Every worker core drains its own queue up to this arrival.
            for w in range(n):
                while heads[w] < len(queues[w]):
                    start = max(free_at[w], queues[w][heads[w]].arrival_ns)
                    if start >= event.time_ns:
                        break
                    serve(w)
            if len(queues[target]) - heads[target] >= self.rx_capacity:
                if measured:
                    results[target].queue_dropped += 1
                continue
            queues[target].append(
                _Job(arrival_ns=event.time_ns, event=event, jitter_ns=jitter_ns)
            )
        for w in range(n):
            while heads[w] < len(queues[w]):
                serve(w)

        for result in results:
            result.forwarded = result.all_latency.count
        return ShardedRunResult(per_worker=results, steered=steered)

    # -- RFC 2544 throughput search -------------------------------------------------
    def max_throughput(
        self,
        nf_factory: Callable[[], NetworkFunction],
        flow_count: int,
        *,
        max_loss: float = 0.001,
        packet_count: int = 30_000,
        iterations: int = 8,
        rate_hint_pps: Optional[float] = None,
    ) -> ThroughputResult:
        """Binary-search the highest rate with loss below ``max_loss``."""
        # Seed the search window from the NF's steady-state service time:
        # replay a small flow set until lookups are hits, then average.
        if rate_hint_pps is None:
            sample_flows = min(flow_count, 2_000)
            warm = sample_flows
            count = 2_000
            nf = nf_factory()
            model = CostModel()
            total_service_ns = 0
            measured = 0
            events = list(ConstantRateFlows(sample_flows, 1e5, warm + count).events())
            step = self.burst_size
            for i in range(0, len(events), step):
                chunk = events[i : i + step]
                now_us = chunk[0].time_ns // US
                if step == 1:
                    nf.process(chunk[0].packet, now_us)
                    _lat, svc = model.packet_costs(nf)
                else:
                    # Estimate steady state at full burst fill, the
                    # regime the search's saturating rates operate in.
                    nf.process_burst([e.packet for e in chunk], now_us)
                    _lat, svc = model.burst_costs(nf, len(chunk))
                if i >= warm:
                    total_service_ns += svc
                    measured += len(chunk)
            rate_hint_pps = S / (total_service_ns / max(1, measured))

        low = rate_hint_pps * 0.7
        high = rate_hint_pps * 1.4
        best = low
        best_loss = 0.0
        for _ in range(iterations):
            rate = (low + high) / 2
            nf = nf_factory()
            workload = ConstantRateFlows(flow_count, rate, packet_count)
            outcome = self.run(nf, workload.events())
            if outcome.loss_fraction <= max_loss:
                best = rate
                best_loss = outcome.loss_fraction
                low = rate
            else:
                high = rate
        return ThroughputResult(
            flow_count=flow_count,
            max_mpps=best / 1e6,
            loss_fraction=best_loss,
        )
