"""The calibrated per-packet cost model.

The simulation cannot measure real CPU time, so packet costs are derived
from the NF's *observable abstract work* — hash-table probes, netfilter
hook traversals, checksum bytes — scaled by constants calibrated so that
the baseline numbers land near the paper's §6 headline figures:

==================  ================  =================
NF                  latency (paper)   throughput (paper)
==================  ================  =================
No-op forwarding    4.75 µs           (above 3 Mpps)
Unverified NAT      5.03 µs           2.0 Mpps
Verified NAT        5.13 µs           1.8 Mpps
Linux NAT           ≈20 µs            0.6 Mpps
==================  ================  =================

Two cost figures exist per packet, as on real hardware:

- *latency cost*: what a packet experiences end to end — NIC/DMA/wire
  path overhead plus the processing time;
- *service cost*: how long the single core is busy per packet, which
  bounds throughput. It is smaller than the latency-visible processing
  (instruction-level parallelism and DPDK's amortized batching), which
  is why the paper can see a 0.10 µs latency gap and a 10% throughput
  gap at the same time.

Because the probe term comes from the *actual* data structures, the
occupancy effects of Fig. 12 emerge rather than being scripted: the
verified NAT's open-addressing map probes longer runs as the table fills
(the upturn at 64 k flows), while the chaining tables stay flat.

The model also reproduces the latency *outliers* of Fig. 13 ("two orders
of magnitude above the average ... due to DPDK, not NAT-specific
processing"): a small deterministic fraction of packets picks up a
~300 µs stall regardless of NF.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import dataclass, field
from typing import Dict

from repro.nat.base import NetworkFunction

#: Fixed receive+transmit path overhead (NIC, DMA, PCIe), nanoseconds.
PATH_OVERHEAD_NS: Dict[str, int] = {
    "dpdk": 4_430,
    "linux": 14_500,  # interrupt path, skb allocation, softirq scheduling
}

#: Latency-visible processing baseline per NF, nanoseconds.
LATENCY_BASE_NS: Dict[str, int] = {
    "noop": 320,
    "unverified-nat": 585,
    "verified-nat": 672,
    "linux-nat": 3_800,
    "discard": 340,
}

#: Core-occupancy (service) baseline per NF, nanoseconds. The netfilter
#: NAT's dynamic work (hooks, software checksums) adds ~1.1 µs on top of
#: its base, which is why its base looks small next to its latency.
SERVICE_BASE_NS: Dict[str, int] = {
    "noop": 320,
    "unverified-nat": 490,
    "verified-nat": 545,
    "linux-nat": 480,
    "discard": 330,
}

#: Per-burst fixed (amortizable) share of each NF's base cost: the flow
#: expiry scan, loop/env setup, RX descriptor refill. At burst size 1 the
#: whole base is paid per packet (the tables above are unchanged); at
#: burst size n the amortizable share is paid once per burst, so the
#: per-packet cost falls toward ``base - amortizable`` — DPDK's batching
#: lever. The verified NAT amortizes the most (its per-iteration expiry
#: scan is the paper's fixed overhead); the kernel path amortizes some
#: GC but keeps its dominant per-packet hook/checksum work.
BURST_AMORTIZABLE_NS: Dict[str, int] = {
    "noop": 60,
    "unverified-nat": 140,
    "verified-nat": 185,
    "linux-nat": 150,
    "discard": 60,
}

#: Cost per hash-table slot probed (linear scans prefetch well).
PROBE_NS = 3
#: Cost per netfilter hook traversed.
HOOK_NS = 240
#: Cost per byte checksummed in software (kernel path).
CSUM_NS_PER_BYTE = 2

#: DPDK latency outliers (Fig. 13 tail): probability and magnitude.
OUTLIER_PROBABILITY = 1.0 / 20_000
OUTLIER_NS = 295_000

#: Service time saved per microflow-cache hit (see
#: :mod:`repro.nat.fastpath`): a hit skips the flow-table lookup, the
#: full header parse/repack and the per-iteration dispatch, replaying a
#: precomputed rewrite instead. The saving is per NF because the work
#: skipped differs — the verified NAT skips the most (its contracted
#: flow-table path is the costliest), the no-op forwarder the least
#: (there was little to skip). The constants are chosen so the paper's
#: no-op < unverified < verified ordering holds at every hit rate: at a
#: 100% hit rate and burst 32 the per-packet service costs are ~191,
#: ~204 and ~210 ns respectively.
FASTPATH_HIT_SAVED_NS: Dict[str, int] = {
    "noop": 70,
    "unverified-nat": 150,
    "verified-nat": 155,
}

#: Per-packet cost of the multi-queue path when RSS sharding is active:
#: the RX-queue indirection, per-queue doorbells and the cache traffic
#: of N cores sharing one NIC. Charged per packet on every worker when
#: ``workers > 1``; a single-worker run is byte-identical to the
#: unsharded path. Small next to any NF's base cost, so the paper's
#: ordering no-op < unverified < verified ≪ NetFilter is preserved at
#: every worker count.
RSS_STEER_NS = 45


def _work_ns(delta: Dict[str, int], nf_name: str = "") -> int:
    """Dynamic work: counter deltas times their per-unit costs.

    Microflow-cache hits *reduce* the dynamic work: each hit replaces
    the NF's full slow path with a cached-action replay, a per-NF
    saving. (Hits also produce no probe counters, so the probe term
    shrinks on its own.)
    """
    work = 0
    work += PROBE_NS * (delta.get("map_probes", 0) + delta.get("table_probes", 0))
    work += HOOK_NS * delta.get("hook_traversals", 0)
    work += CSUM_NS_PER_BYTE * delta.get("checksum_bytes", 0)
    work -= FASTPATH_HIT_SAVED_NS.get(nf_name, 0) * delta.get("fastpath_hits", 0)
    return work


@dataclass
class CostModel:
    """Stateful cost model: tracks counter deltas per NF instance.

    Snapshots are held in a WeakKeyDictionary: keying by the NF object
    (not ``id(nf)``) means a freed NF's slot disappears with it, so a
    new NF allocated at a recycled address can never inherit a stale
    snapshot and produce a bogus (even negative) first-packet delta.
    """

    outlier_seed: int = 2544
    _last_counters: "weakref.WeakKeyDictionary" = field(
        default_factory=weakref.WeakKeyDictionary
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.outlier_seed)

    @staticmethod
    def _family(nf: NetworkFunction) -> str:
        return "linux" if nf.name == "linux-nat" else "dpdk"

    def path_overhead_ns(self, nf: NetworkFunction) -> int:
        """Fixed wire/NIC path cost for one forwarded packet."""
        return PATH_OVERHEAD_NS[self._family(nf)]

    @staticmethod
    def steering_overhead_ns(workers: int) -> int:
        """Per-packet RSS steering cost for a ``workers``-wide data path.

        Zero for a single worker — the multi-queue machinery is off and
        single-worker runs reproduce the unsharded numbers exactly.
        """
        if workers <= 1:
            return 0
        return RSS_STEER_NS

    def _delta(self, nf: NetworkFunction) -> Dict[str, int]:
        current = nf.op_counters()
        previous = self._last_counters.get(nf, {})
        self._last_counters[nf] = current
        return {k: v - previous.get(k, 0) for k, v in current.items()}

    def packet_costs(self, nf: NetworkFunction) -> tuple[int, int]:
        """(latency_ns, service_ns) for the packet just processed.

        Call exactly once per ``nf.process`` invocation: the dynamic
        component is the NF's counter delta since the previous call.
        """
        delta = self._delta(nf)
        work = _work_ns(delta, nf.name)
        latency = LATENCY_BASE_NS.get(nf.name, 500) + work
        service = SERVICE_BASE_NS.get(nf.name, 500) + work
        return latency, service

    def burst_costs(self, nf: NetworkFunction, batch_size: int) -> tuple[int, int]:
        """(per_packet_latency_ns, burst_service_ns) for a burst just processed.

        Call exactly once per ``nf.process_burst`` invocation: the
        counter delta covers the whole burst, so dynamic work is split
        evenly across its packets. The amortizable share of the base
        cost is charged once per burst; everything else is per packet.
        ``batch_size == 1`` reproduces :meth:`packet_costs` exactly.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        delta = self._delta(nf)
        work = _work_ns(delta, nf.name)
        work_per_packet = work // batch_size
        amortizable = BURST_AMORTIZABLE_NS.get(nf.name, 80)
        latency_base = LATENCY_BASE_NS.get(nf.name, 500)
        service_base = SERVICE_BASE_NS.get(nf.name, 500)
        latency = (
            (latency_base - amortizable)
            + amortizable // batch_size
            + work_per_packet
        )
        service_total = (
            (service_base - amortizable) * batch_size + amortizable + work
        )
        return latency, service_total

    def sample_outlier_ns(self) -> int:
        """Occasional DPDK stall added to a packet's latency (Fig. 13)."""
        if self._rng.random() < OUTLIER_PROBABILITY:
            return int(OUTLIER_NS * (0.8 + 0.4 * self._rng.random()))
        return 0
