"""The network substrate: a discrete-event stand-in for the paper's testbed.

The paper evaluates on two Xeon machines with 10 GbE NICs, MoonGen as
the tester and DPDK under the NFs (Fig. 11). This package simulates that
setup closely enough to reproduce the evaluation's *relative* results:

- :mod:`repro.net.mbuf` — a finite packet-buffer pool with leak tracking,
- :mod:`repro.net.nic` — ports with bounded RX descriptor rings,
- :mod:`repro.net.dpdk` — a DPDK-like burst API over the ports,
- :mod:`repro.net.costmodel` — per-packet latency/service costs derived
  from the NF's *actual* abstract work (probe counts, hook traversals,
  checksum bytes) plus calibrated constants,
- :mod:`repro.net.testbed` — the RFC 2544 tester/middlebox pair,
- :mod:`repro.net.moongen` — workload generation and measurement.
"""

from repro.net.costmodel import CostModel
from repro.net.dpdk import DpdkRuntime
from repro.net.mbuf import MbufPool
from repro.net.nic import Port
from repro.net.moongen import (
    BackgroundFlows,
    PacketSource,
    ProbeFlows,
    merge_sources,
)
from repro.net.testbed import LatencyStats, Rfc2544Testbed, ThroughputResult

__all__ = [
    "BackgroundFlows",
    "CostModel",
    "DpdkRuntime",
    "LatencyStats",
    "MbufPool",
    "PacketSource",
    "Port",
    "ProbeFlows",
    "Rfc2544Testbed",
    "ThroughputResult",
    "merge_sources",
]
