"""The network substrate: a discrete-event stand-in for the paper's testbed.

The paper evaluates on two Xeon machines with 10 GbE NICs, MoonGen as
the tester and DPDK under the NFs (Fig. 11). This package simulates that
setup closely enough to reproduce the evaluation's *relative* results:

- :mod:`repro.net.mbuf` — a finite packet-buffer pool with leak tracking,
- :mod:`repro.net.nic` — ports with bounded RX descriptor rings, plus
  the :class:`RssNic` multi-queue steering stage,
- :mod:`repro.net.rss` — RSS 5-tuple hashing and the NAT-aware
  :class:`NatSteering` (return traffic routed by external-port
  ownership — see ``docs/SCALING.md``),
- :mod:`repro.net.dpdk` — a DPDK-like burst API over the ports
  (:class:`DpdkRuntime`), sharded across N workers by
  :class:`ShardedRuntime` (the deterministic verification oracle),
- :mod:`repro.net.procrun` — the same sharded shape with one OS
  process per shard (:class:`ProcessShardedRuntime`): real wall-clock
  scale-out, byte-identical to the oracle,
- :mod:`repro.net.app` — the deployment facade: describe a deployment
  as a frozen :class:`RuntimeSpec` and :func:`launch` it into a
  :class:`Runtime` (the one construction path; the raw constructors
  are deprecated),
- :mod:`repro.net.costmodel` — per-packet latency/service costs derived
  from the NF's *actual* abstract work (probe counts, hook traversals,
  checksum bytes) plus calibrated constants,
- :mod:`repro.net.testbed` — the RFC 2544 tester/middlebox pair, single
  core or sharded,
- :mod:`repro.net.moongen` — workload generation and measurement.

The names exported here are the package's stable public surface; code
outside the repository should import from ``repro.net`` directly.
"""

from repro.net.app import (
    EXECUTION_MODES,
    InlineRuntime,
    NfApp,
    Runtime,
    RuntimeSpec,
    launch,
)
from repro.net.costmodel import CostModel
from repro.net.dpdk import DpdkRuntime, ShardedRuntime
from repro.net.mbuf import MbufPool
from repro.net.procrun import (
    TRANSPORT_PIPE,
    TRANSPORT_SHM,
    TRANSPORTS,
    ProcessShardedRuntime,
    WorkerCrashed,
)
from repro.net.shmring import RingClosed, ShmRing
from repro.net.moongen import (
    BackgroundFlows,
    ConstantRateFlows,
    PacketSource,
    ProbeFlows,
    merge_sources,
)
from repro.net.nic import Port, RssNic
from repro.net.rss import NatSteering, rss_hash_packet, rss_queue
from repro.net.testbed import (
    LatencyStats,
    Rfc2544Testbed,
    ShardedRunResult,
    ThroughputResult,
)

__all__ = [
    "BackgroundFlows",
    "ConstantRateFlows",
    "CostModel",
    "DpdkRuntime",
    "EXECUTION_MODES",
    "InlineRuntime",
    "LatencyStats",
    "MbufPool",
    "NatSteering",
    "NfApp",
    "PacketSource",
    "Port",
    "ProbeFlows",
    "ProcessShardedRuntime",
    "Rfc2544Testbed",
    "RingClosed",
    "RssNic",
    "Runtime",
    "RuntimeSpec",
    "ShardedRunResult",
    "ShardedRuntime",
    "ShmRing",
    "TRANSPORTS",
    "TRANSPORT_PIPE",
    "TRANSPORT_SHM",
    "ThroughputResult",
    "WorkerCrashed",
    "launch",
    "merge_sources",
    "rss_hash_packet",
    "rss_queue",
]
