"""Simulated NIC ports with bounded RX descriptor rings.

A port's RX ring holds a fixed number of descriptors (512 by default,
like the 82599's common configuration); packets arriving while the ring
is full are dropped and counted — this is where RFC 2544 throughput
loss comes from when the CPU cannot keep up.

:class:`RssNic` models the multi-queue front-end of such a NIC: a
steering function (Receive-Side Scaling) assigns every arriving packet
to one of N RX queues, each typically served by its own core — the
hardware half of the sharded data path (see :mod:`repro.net.rss`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.packets.headers import Packet


@dataclass
class PortCounters:
    """Receive/transmit statistics, mirroring NIC hardware counters."""

    rx_packets: int = 0
    rx_dropped: int = 0
    #: RX attempts stalled by mbuf-pool exhaustion (rte_eth_stats.rx_nombuf).
    #: Unlike ``rx_dropped``, the packet stays on the ring — nothing is lost.
    rx_nombuf: int = 0
    tx_packets: int = 0


@dataclass
class Port:
    """One NIC port: a bounded RX ring plus TX capture."""

    port_id: int
    rx_capacity: int = 512
    counters: PortCounters = field(default_factory=PortCounters)

    def __post_init__(self) -> None:
        self._rx: Deque[Tuple[int, Packet]] = deque()
        self._tx: List[Tuple[int, Packet]] = []

    # -- receive side ----------------------------------------------------------
    def deliver(self, packet: Packet, timestamp: int) -> bool:
        """Wire-side packet arrival; False (and a drop) when the ring is full."""
        if len(self._rx) >= self.rx_capacity:
            self.counters.rx_dropped += 1
            return False
        self._rx.append((timestamp, packet))
        self.counters.rx_packets += 1
        return True

    def rx_pending(self) -> int:
        return len(self._rx)

    def rx_pop(self) -> Optional[Tuple[int, Packet]]:
        """Host-side descriptor fetch: (arrival_timestamp, packet)."""
        if not self._rx:
            return None
        return self._rx.popleft()

    def swap_tail(self) -> bool:
        """Swap the two newest RX descriptors (a reordering link).

        Timestamps stay with their descriptor slots so arrival times
        remain monotonic on the ring; only the payload order changes —
        exactly what a reordering wire does. Returns False (no-op) with
        fewer than two pending descriptors.
        """
        if len(self._rx) < 2:
            return False
        (ts_a, pkt_a), (ts_b, pkt_b) = self._rx[-2], self._rx[-1]
        self._rx[-2] = (ts_a, pkt_b)
        self._rx[-1] = (ts_b, pkt_a)
        return True

    # -- transmit side --------------------------------------------------------------
    def transmit(self, packet: Packet, timestamp: int) -> None:
        self._tx.append((timestamp, packet))
        self.counters.tx_packets += 1

    def drain_tx(self) -> List[Tuple[int, Packet]]:
        """Collect everything transmitted since the last drain."""
        out, self._tx = self._tx, []
        return out

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry, labels=None) -> None:
        """Expose the hardware-style port counters as callback metrics."""
        port_labels = dict(labels or {})
        port_labels["port"] = str(self.port_id)
        counters = self.counters
        registry.counter_fn(
            "nic_rx_packets_total",
            lambda: counters.rx_packets,
            "packets accepted onto the RX ring",
            port_labels,
        )
        registry.counter_fn(
            "nic_rx_dropped_total",
            lambda: counters.rx_dropped,
            "packets dropped because the RX ring was full",
            port_labels,
        )
        registry.counter_fn(
            "nic_rx_nombuf_total",
            lambda: counters.rx_nombuf,
            "RX attempts stalled by mbuf-pool exhaustion (nothing lost)",
            port_labels,
        )
        registry.counter_fn(
            "nic_tx_packets_total",
            lambda: counters.tx_packets,
            "packets transmitted",
            port_labels,
        )


class RssNic:
    """The RSS stage of a multi-queue NIC: packet → RX queue selection.

    Holds the steering function (by default the plain RSS 5-tuple hash
    of :func:`repro.net.rss.rss_queue`; the sharded NAT passes
    :meth:`repro.net.rss.NatSteering.worker_for` instead) plus the
    per-queue counters real NICs expose per RX queue. The queues
    themselves are the ports of whatever runtime sits behind each
    worker — this class only decides and counts, like the hardware
    redirection table.
    """

    def __init__(
        self,
        queue_count: int,
        steer: Optional[Callable[[Packet], int]] = None,
    ) -> None:
        if queue_count <= 0:
            raise ValueError("need at least one RX queue")
        if steer is None:
            from repro.net.rss import rss_queue

            steer = lambda packet: rss_queue(packet, queue_count)  # noqa: E731
        self.queue_count = queue_count
        self._steer = steer
        #: Packets steered to each queue so far.
        self.queue_packets: List[int] = [0] * queue_count

    def select(self, packet: Packet) -> int:
        """Steer one packet: returns its RX queue index and counts it."""
        queue = self._steer(packet)
        if not 0 <= queue < self.queue_count:
            raise ValueError(
                f"steering function returned queue {queue} "
                f"(have {self.queue_count})"
            )
        self.queue_packets[queue] += 1
        return queue

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry, labels=None) -> None:
        """Per-RX-queue steering counters, like hardware per-queue stats."""
        for queue in range(self.queue_count):
            queue_labels = dict(labels or {})
            queue_labels["queue"] = str(queue)
            registry.counter_fn(
                "rss_steered_total",
                lambda q=queue: self.queue_packets[q],
                "packets steered to this RX queue",
                queue_labels,
            )
