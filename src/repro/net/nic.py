"""Simulated NIC ports with bounded RX descriptor rings.

A port's RX ring holds a fixed number of descriptors (512 by default,
like the 82599's common configuration); packets arriving while the ring
is full are dropped and counted — this is where RFC 2544 throughput
loss comes from when the CPU cannot keep up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.packets.headers import Packet


@dataclass
class PortCounters:
    """Receive/transmit statistics, mirroring NIC hardware counters."""

    rx_packets: int = 0
    rx_dropped: int = 0
    #: RX attempts stalled by mbuf-pool exhaustion (rte_eth_stats.rx_nombuf).
    #: Unlike ``rx_dropped``, the packet stays on the ring — nothing is lost.
    rx_nombuf: int = 0
    tx_packets: int = 0


@dataclass
class Port:
    """One NIC port: a bounded RX ring plus TX capture."""

    port_id: int
    rx_capacity: int = 512
    counters: PortCounters = field(default_factory=PortCounters)

    def __post_init__(self) -> None:
        self._rx: Deque[Tuple[int, Packet]] = deque()
        self._tx: List[Tuple[int, Packet]] = []

    # -- receive side ----------------------------------------------------------
    def deliver(self, packet: Packet, timestamp: int) -> bool:
        """Wire-side packet arrival; False (and a drop) when the ring is full."""
        if len(self._rx) >= self.rx_capacity:
            self.counters.rx_dropped += 1
            return False
        self._rx.append((timestamp, packet))
        self.counters.rx_packets += 1
        return True

    def rx_pending(self) -> int:
        return len(self._rx)

    def rx_pop(self) -> Optional[Tuple[int, Packet]]:
        """Host-side descriptor fetch: (arrival_timestamp, packet)."""
        if not self._rx:
            return None
        return self._rx.popleft()

    # -- transmit side --------------------------------------------------------------
    def transmit(self, packet: Packet, timestamp: int) -> None:
        self._tx.append((timestamp, packet))
        self.counters.tx_packets += 1

    def drain_tx(self) -> List[Tuple[int, Packet]]:
        """Collect everything transmitted since the last drain."""
        out, self._tx = self._tx, []
        return out
