"""The NF application shell: a DPDK-style main loop around any NF.

``NfApp`` is what the paper's ``main()`` is to VigNAT: receive a burst,
run the NF per packet, transmit or free each buffer — with the
no-leak discipline Vigor's ownership tracking enforces (§5.2.4). It
drives any :class:`~repro.nat.base.NetworkFunction` over a
:class:`~repro.net.dpdk.DpdkRuntime`, and can replay pcap files end to
end.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.libvig.batcher import Batcher
from repro.nat.base import NetworkFunction
from repro.net.dpdk import DpdkRuntime
from repro.packets.headers import Packet
from repro.packets.pcap import PcapRecord, read_pcap_file, write_pcap_file


class NfApp:
    """Burst-receive / process / burst-transmit loop for one NF.

    Transmissions are grouped per output port in libVig
    :class:`~repro.libvig.batcher.Batcher` instances and flushed with
    one ``tx_burst`` per port per turn — the amortization DPDK main
    loops rely on (and the reason libVig ships a batcher, §5.1.1).
    """

    def __init__(
        self,
        nf: NetworkFunction,
        runtime: Optional[DpdkRuntime] = None,
        burst_size: int = 32,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self.nf = nf
        self.runtime = runtime if runtime is not None else DpdkRuntime()
        self.burst_size = burst_size
        self.processed_total = 0
        self.tx_bursts_total = 0
        self._tx_batchers = {
            port_id: Batcher(burst_size) for port_id in self.runtime.ports
        }

    def _flush_tx(self, now_us: int) -> None:
        for port_id, batcher in self._tx_batchers.items():
            if not batcher.empty():
                self.runtime.tx_burst(port_id, batcher.take(), now_us)
                self.tx_bursts_total += 1

    def _stage_tx(self, mbuf, port_id: int, now_us: int) -> None:
        batcher = self._tx_batchers[port_id]
        if batcher.full():
            self.runtime.tx_burst(port_id, batcher.take(), now_us)
            self.tx_bursts_total += 1
        batcher.push(mbuf)

    def poll(self, now_us: int) -> int:
        """One main-loop turn: drain every port's RX ring, then flush
        the TX batches. Returns the number of packets processed.

        Each RX burst goes through the NF's burst entry point
        (:meth:`~repro.nat.base.NetworkFunction.process_burst`), so
        burst-aware NFs amortize their per-iteration work here too."""
        processed = 0
        for port_id in sorted(self.runtime.ports):
            while True:
                burst = self.runtime.rx_burst(port_id, self.burst_size)
                if not burst:
                    break
                results = self.nf.process_burst(
                    [mbuf.packet for mbuf in burst], now_us
                )
                for mbuf, outputs in zip(burst, results):
                    if outputs:
                        out = outputs[0]
                        mbuf.packet = out
                        self._stage_tx(mbuf, out.device, now_us)
                        for extra in outputs[1:]:  # multicast/flood NFs
                            clone = self.runtime.pool.alloc(extra, extra.device, now_us)
                            if clone is not None:
                                self._stage_tx(clone, extra.device, now_us)
                    else:
                        self.runtime.free(mbuf)  # drop without leaking
                    processed += 1
        self._flush_tx(now_us)
        self.processed_total += processed
        return processed

    # -- trace replay -----------------------------------------------------------
    def replay(
        self, arrivals: Iterable[Tuple[int, int, Packet]]
    ) -> List[Tuple[int, int, Packet]]:
        """Feed (time_us, port, packet) arrivals; returns transmissions.

        Polls after every arrival so RX rings never overflow — this is
        functional replay (what comes out), not the timing simulation
        (use :class:`~repro.net.testbed.Rfc2544Testbed` for that).
        """
        for time_us, port, packet in arrivals:
            self.runtime.inject(port, packet, time_us)
            self.poll(time_us)
        return self.runtime.collect()

    def replay_pcap(
        self, in_path: str, out_path: Optional[str] = None, port: int = 0
    ) -> List[PcapRecord]:
        """Replay a pcap file through the NF; optionally write the output.

        Every input frame arrives on ``port`` at its recorded timestamp;
        the NF's transmissions are returned (and written as a pcap when
        ``out_path`` is given).
        """
        arrivals = []
        for record in read_pcap_file(in_path):
            packet = record.packet(device=port)
            arrivals.append((record.timestamp_us, port, packet))
        transmitted = self.replay(arrivals)
        out_records = [
            PcapRecord(timestamp_us=ts, data=pkt.to_bytes())
            for _port, ts, pkt in transmitted
        ]
        if out_path is not None:
            write_pcap_file(out_path, [(r.timestamp_us, r.data) for r in out_records])
        return out_records
