"""The NF application layer: one spec, one launcher, one runtime protocol.

Two things live here:

- :class:`NfApp` — the paper's ``main()``: receive a burst, run the NF
  per packet, transmit or free each buffer — with the no-leak
  discipline Vigor's ownership tracking enforces (§5.2.4).
- The **deployment facade**: a frozen :class:`RuntimeSpec` describing a
  whole deployment (NF factory, config, workers, execution mode,
  fastpath, faults, replication) and :func:`launch`, which turns the
  spec into a running :class:`Runtime`. This replaces the scattered
  constructor zoo (`DpdkRuntime(...)`, ``ShardedRuntime(workers=,
  fastpath=)``, ``ReplicatedRuntime(...)``, ad-hoc testbed kwargs);
  the legacy constructors keep working behind deprecation shims, like
  the PR 2 ``NatConfig`` migration.

Execution modes and what they are for:

- ``inline`` — one NF, one :class:`~repro.net.dpdk.DpdkRuntime`, no
  steering stage. The minimal single-core deployment.
- ``threaded-deterministic`` — :class:`~repro.net.dpdk.ShardedRuntime`:
  N shards round-robined in one thread. Fully deterministic; this is
  the *verification oracle* the process mode is differentially tested
  against, and the only mode that supports replication/failover.
- ``process`` — :class:`~repro.net.procrun.ProcessShardedRuntime`: one
  OS process per shard, real wall-clock scale-out, byte-identical to
  the oracle on the same schedule. See ``docs/SCALING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.libvig.batcher import Batcher
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, normalize_fastpath
from repro.net.dpdk import DpdkRuntime, ShardedRuntime
from repro.obs.registry import MetricsRegistry
from repro.packets.headers import Packet
from repro.packets.pcap import PcapRecord, read_pcap_file, write_pcap_file

#: The three ways a spec can execute (see the module docstring).
INLINE = "inline"
THREADED_DETERMINISTIC = "threaded-deterministic"
PROCESS = "process"
EXECUTION_MODES = (INLINE, THREADED_DETERMINISTIC, PROCESS)


@dataclass(frozen=True)
class RuntimeSpec:
    """Everything needed to stand up a NAT deployment, in one value.

    Frozen like :class:`~repro.nat.config.NatConfig`: a spec can be
    hashed, compared, logged in a benchmark record, and varied with
    :meth:`with_` — and two runs launched from equal specs are
    comparable runs. ``nf_factory`` is called once per shard with that
    shard's partitioned config.
    """

    nf_factory: Callable[[NatConfig], NetworkFunction]
    config: Optional[NatConfig] = None
    workers: int = 1
    execution: str = THREADED_DETERMINISTIC
    #: The microflow fast path: ``"off"``, ``"cache"`` (the replay
    #: action cache) or ``"compiled"`` (batch-applied compiled
    #: closures; NFs without raw-path support degrade to replay).
    #: Booleans are accepted and normalized — ``True`` → ``"cache"``,
    #: ``False`` → ``"off"`` — so existing call sites keep working.
    fastpath: object = False
    burst_size: int = 32
    port_count: int = 2
    rx_capacity: int = 512
    pool_size: int = 4096
    fault_plan: Optional[object] = None
    #: Replication lag for active/standby failover; ``None`` disables
    #: replication entirely. Only the deterministic mode supports it.
    replication_lag: Optional[int] = None
    #: Process mode only: how long the parent waits on a worker reply
    #: before declaring it crashed. Also bounds every shm ring-full
    #: backpressure wait.
    turn_timeout_s: float = 30.0
    #: Process mode only: how packets cross the parent/worker boundary.
    #: ``"shm"`` (default) moves bursts through per-worker shared-memory
    #: rings with the pipe as control plane; ``"pipe"`` serializes them
    #: over the pipe itself. Both are differentially proven
    #: byte-identical to the deterministic oracle.
    transport: str = "shm"
    #: Process mode only: respawn crashed shards and restore the last
    #: coordinated checkpoint instead of raising ``WorkerCrashed``.
    supervise: bool = False
    #: Process mode, shm transport only: ring geometry per direction
    #: per worker (slots × slot_bytes of payload capacity).
    ring_slots: int = 4096
    ring_slot_bytes: int = 256

    def __post_init__(self) -> None:
        # Normalize the fastpath tri-state in place (frozen dataclass,
        # hence object.__setattr__) so equal deployments stay equal
        # specs: with_(fastpath=True) and with_(fastpath="cache")
        # describe — and hash as — the same thing.
        object.__setattr__(self, "fastpath", normalize_fastpath(self.fastpath))
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution!r}; "
                f"choose one of {EXECUTION_MODES}"
            )
        if self.workers <= 0:
            raise ValueError("need at least one worker")
        if self.execution == INLINE and self.workers != 1:
            raise ValueError(
                "inline execution is single-worker; use "
                "threaded-deterministic or process to shard"
            )
        if self.replication_lag is not None:
            if self.replication_lag < 0:
                raise ValueError("replication lag cannot be negative")
            if self.execution != THREADED_DETERMINISTIC:
                raise ValueError(
                    "replication/failover requires the deterministic "
                    "execution mode (the failover controller replays "
                    "worker turns; a real dead process has no turn to replay)"
                )
        if self.burst_size <= 0:
            raise ValueError("burst size must be positive")
        if self.turn_timeout_s <= 0:
            raise ValueError("turn timeout must be positive")
        from repro.net.procrun import TRANSPORTS

        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"choose one of {TRANSPORTS}"
            )
        if self.supervise and self.execution != PROCESS:
            raise ValueError(
                "supervise=True only applies to process execution — the "
                "other modes have no worker process to respawn"
            )
        if self.ring_slots <= 0 or self.ring_slot_bytes <= 0:
            raise ValueError("ring geometry must be positive")

    def resolved_config(self) -> NatConfig:
        return self.config if self.config is not None else NatConfig()

    def with_(self, **overrides) -> "RuntimeSpec":
        """A varied copy — ``spec.with_(workers=4, execution=PROCESS)``."""
        return replace(self, **overrides)


@runtime_checkable
class Runtime(Protocol):
    """What every launched runtime can do, regardless of execution mode.

    The wire side (:meth:`inject`/:meth:`collect`), the main loop, the
    merged observability surface, the coordinated checkpoint, and a
    shutdown hook (a no-op everywhere but process mode, where workers
    are real OS processes).
    """

    @property
    def workers(self) -> int: ...

    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool: ...

    def collect(self) -> List[Tuple[int, int, Packet]]: ...

    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int: ...

    def op_counters(self) -> Dict[str, int]: ...

    def drop_causes(self) -> Dict[str, int]: ...

    def flow_count(self) -> int: ...

    def snapshot_metrics(self) -> Dict: ...

    def checkpoint(self, now_us: int = 0): ...

    def stop(self) -> None: ...


class InlineRuntime:
    """The single-worker deployment: one NF over one ``DpdkRuntime``.

    No steering stage, no partitioning — the spec's config is the NF's
    whole config. Satisfies the :class:`Runtime` protocol so sweeps can
    treat it interchangeably with the sharded modes.
    """

    def __init__(self, spec: RuntimeSpec) -> None:
        self.spec = spec
        self.config = spec.resolved_config()
        nf = spec.nf_factory(self.config)
        self.nf: NetworkFunction = (
            FastPathNat(nf, mode=spec.fastpath)
            if spec.fastpath != "off"
            else nf
        )
        self.runtime = DpdkRuntime(
            spec.port_count, spec.rx_capacity, spec.pool_size
        )

    @property
    def workers(self) -> int:
        return 1

    # -- wire side -----------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        return self.runtime.inject(port_id, packet, timestamp)

    def collect(self) -> List[Tuple[int, int, Packet]]:
        return self.runtime.collect()

    def collect_by_worker(self) -> List[List[Tuple[int, int, Packet]]]:
        return [self.runtime.collect()]

    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int:
        return self.runtime.main_loop_burst(self.nf, now_us, burst_size)

    # -- introspection -------------------------------------------------------
    def op_counters(self) -> Dict[str, int]:
        return dict(self.nf.op_counters())

    def per_worker_counters(self) -> List[Dict[str, int]]:
        return [self.op_counters()]

    def drop_causes(self) -> Dict[str, int]:
        return self.runtime.drop_causes()

    def flow_count(self) -> int:
        return self.nf.flow_count() if hasattr(self.nf, "flow_count") else 0

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry) -> None:
        labels = {"worker": "0"}
        self.runtime.register_metrics(registry, labels)
        self.nf.register_metrics(registry, labels)

    def snapshot_metrics(self) -> Dict:
        registry = MetricsRegistry()
        self.register_metrics(registry)
        return registry.snapshot()

    def metrics_snapshot(self) -> Dict:
        return self.snapshot_metrics()

    # -- control plane -------------------------------------------------------
    def checkpoint(self, now_us: int = 0):
        from repro.resil.checkpoint import snapshot_all

        return snapshot_all([self.nf], now_us)

    def restore(self, checkpoint_set) -> None:
        from repro.resil.checkpoint import restore_all

        restore_all([self.nf], checkpoint_set)

    def stop(self) -> None:
        """Nothing to tear down — inline state dies with the object."""


def launch(spec: RuntimeSpec) -> Runtime:
    """Stand up the deployment a spec describes and return its runtime.

    The one construction path: picks the backend from
    ``spec.execution`` (plus :class:`~repro.resil.failover.ReplicatedRuntime`
    when ``replication_lag`` is set), forwards the spec's knobs, and
    tags the result with ``.spec`` so drivers can read back the burst
    size and mode they should drive with. Callers owning a ``process``
    runtime must :meth:`~Runtime.stop` it; calling ``stop()`` on the
    other modes is a harmless no-op, so generic drivers can always use
    ``try/finally: runtime.stop()``.
    """
    if spec.replication_lag is not None:
        from repro.resil.failover import ReplicatedRuntime

        runtime: Runtime = ReplicatedRuntime(
            spec.nf_factory,
            spec.config,
            spec.workers,
            lag=spec.replication_lag,
            fastpath=spec.fastpath,
            fault_plan=spec.fault_plan,
            port_count=spec.port_count,
            rx_capacity=spec.rx_capacity,
            pool_size=spec.pool_size,
        )
    elif spec.execution == INLINE:
        runtime = InlineRuntime(spec)
    elif spec.execution == PROCESS:
        from repro.net.procrun import ProcessShardedRuntime

        runtime = ProcessShardedRuntime(
            spec.nf_factory,
            spec.config,
            spec.workers,
            port_count=spec.port_count,
            rx_capacity=spec.rx_capacity,
            pool_size=spec.pool_size,
            fastpath=spec.fastpath,
            fault_plan=spec.fault_plan,
            turn_timeout_s=spec.turn_timeout_s,
            transport=spec.transport,
            supervise=spec.supervise,
            ring_slots=spec.ring_slots,
            ring_slot_bytes=spec.ring_slot_bytes,
        )
    else:
        runtime = ShardedRuntime(
            spec.nf_factory,
            spec.config,
            spec.workers,
            port_count=spec.port_count,
            rx_capacity=spec.rx_capacity,
            pool_size=spec.pool_size,
            fastpath=spec.fastpath,
            fault_plan=spec.fault_plan,
            _from_spec=True,
        )
    runtime.spec = spec  # type: ignore[attr-defined]
    return runtime


class NfApp:
    """Burst-receive / process / burst-transmit loop for one NF.

    Transmissions are grouped per output port in libVig
    :class:`~repro.libvig.batcher.Batcher` instances and flushed with
    one ``tx_burst`` per port per turn — the amortization DPDK main
    loops rely on (and the reason libVig ships a batcher, §5.1.1).
    """

    def __init__(
        self,
        nf: NetworkFunction,
        runtime: Optional[DpdkRuntime] = None,
        burst_size: int = 32,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self.nf = nf
        self.runtime = runtime if runtime is not None else DpdkRuntime()
        self.burst_size = burst_size
        self.processed_total = 0
        self.tx_bursts_total = 0
        self._tx_batchers = {
            port_id: Batcher(burst_size) for port_id in self.runtime.ports
        }

    def _flush_tx(self, now_us: int) -> None:
        for port_id, batcher in self._tx_batchers.items():
            if not batcher.empty():
                self.runtime.tx_burst(port_id, batcher.take(), now_us)
                self.tx_bursts_total += 1

    def _stage_tx(self, mbuf, port_id: int, now_us: int) -> None:
        batcher = self._tx_batchers[port_id]
        if batcher.full():
            self.runtime.tx_burst(port_id, batcher.take(), now_us)
            self.tx_bursts_total += 1
        batcher.push(mbuf)

    def poll(self, now_us: int) -> int:
        """One main-loop turn: drain every port's RX ring, then flush
        the TX batches. Returns the number of packets processed.

        Each RX burst goes through the NF's burst entry point
        (:meth:`~repro.nat.base.NetworkFunction.process_burst`), so
        burst-aware NFs amortize their per-iteration work here too."""
        processed = 0
        for port_id in sorted(self.runtime.ports):
            while True:
                burst = self.runtime.rx_burst(port_id, self.burst_size)
                if not burst:
                    break
                results = self.nf.process_burst(
                    [mbuf.packet for mbuf in burst], now_us
                )
                for mbuf, outputs in zip(burst, results):
                    if outputs:
                        out = outputs[0]
                        mbuf.packet = out
                        self._stage_tx(mbuf, out.device, now_us)
                        for extra in outputs[1:]:  # multicast/flood NFs
                            clone = self.runtime.pool.alloc(extra, extra.device, now_us)
                            if clone is not None:
                                self._stage_tx(clone, extra.device, now_us)
                    else:
                        self.runtime.free(mbuf)  # drop without leaking
                    processed += 1
        self._flush_tx(now_us)
        self.processed_total += processed
        return processed

    # -- trace replay -----------------------------------------------------------
    def replay(
        self, arrivals: Iterable[Tuple[int, int, Packet]]
    ) -> List[Tuple[int, int, Packet]]:
        """Feed (time_us, port, packet) arrivals; returns transmissions.

        Polls after every arrival so RX rings never overflow — this is
        functional replay (what comes out), not the timing simulation
        (use :class:`~repro.net.testbed.Rfc2544Testbed` for that).
        """
        for time_us, port, packet in arrivals:
            self.runtime.inject(port, packet, time_us)
            self.poll(time_us)
        return self.runtime.collect()

    def replay_pcap(
        self, in_path: str, out_path: Optional[str] = None, port: int = 0
    ) -> List[PcapRecord]:
        """Replay a pcap file through the NF; optionally write the output.

        Every input frame arrives on ``port`` at its recorded timestamp;
        the NF's transmissions are returned (and written as a pcap when
        ``out_path`` is given).
        """
        arrivals = []
        for record in read_pcap_file(in_path):
            packet = record.packet(device=port)
            arrivals.append((record.timestamp_us, port, packet))
        transmitted = self.replay(arrivals)
        out_records = [
            PcapRecord(timestamp_us=ts, data=pkt.to_bytes())
            for _port, ts, pkt in transmitted
        ]
        if out_path is not None:
            write_pcap_file(out_path, [(r.timestamp_us, r.data) for r in out_records])
        return out_records
