"""Process-per-shard runtime: real multi-core scale-out for the NAT.

:class:`~repro.net.dpdk.ShardedRuntime` round-robins its workers inside
one Python thread — deterministic, but "4 workers" never buys wall-clock
time. :class:`ProcessShardedRuntime` keeps the exact same shape (one
shard of a partitioned :class:`~repro.nat.config.NatConfig`, one NF, one
:class:`~repro.net.dpdk.DpdkRuntime`, one private fastpath cache and
:class:`~repro.obs.registry.MetricsRegistry` per worker) but runs every
worker in its own OS process, so shards execute concurrently on real
cores. Nothing is shared: the parent owns the RSS steering stage
(:class:`~repro.net.rss.NatSteering` behind an
:class:`~repro.net.nic.RssNic`) and talks to each worker over one
``multiprocessing`` pipe carrying length-prefixed raw wire bytes,
batched per burst.

The deterministic runtime stays the *verification oracle*: because a
worker process runs the identical per-shard data path on the identical
steered sub-schedule, its TX stream is byte-for-byte what the oracle's
same-numbered worker produces — the differential suite in
``tests/integration/test_proc_differential.py`` proves it on every
NF × fastpath × worker-count cell. See ``docs/SCALING.md``.

Protocol (one request/reply pipe per worker, commands applied in FIFO
order, which is what makes the checkpoint fence trivial):

========  ======================================  =======================
opcode    parent → worker                         worker → parent
========  ======================================  =======================
``I``     burst of framed packets to enqueue      (no reply)
``T``     run one main-loop turn                  ``a`` seq, processed, TX frames
``S``     collect a worker-labeled snapshot       ``s`` JSON snapshot
``N``     collect NF/runtime counters             ``n`` JSON counters
``K``     take a ``repro-ckpt/v1`` checkpoint     ``k`` checkpoint frame
``R``     restore a checkpoint frame              ``r`` ack
``X``     stop and exit                           ``x`` goodbye
========  ======================================  =======================

Any worker-side exception comes back as an ``e`` reply and is re-raised
in the parent; a worker that dies instead of replying surfaces as
:class:`WorkerCrashed` with the shard id and the last *acknowledged*
burst sequence number — never as a hung pipe read.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat
from repro.net.dpdk import DpdkRuntime
from repro.net.nic import RssNic
from repro.net.rss import NatSteering
from repro.obs import flight
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.packets.headers import Packet

# -- wire framing -------------------------------------------------------------

#: One framed packet record: port, device, timestamp_us, wire length.
_REC = struct.Struct(">HHqI")
#: Turn command payload: seq, now_us, burst_size, pool seizure target.
_TURN = struct.Struct(">QqiI")
#: Turn acknowledgement payload: seq, packets processed.
_ACK = struct.Struct(">QI")
_CKPT = struct.Struct(">q")  # taken_at_us

OP_INJECT = b"I"
OP_TURN = b"T"
OP_SNAPSHOT = b"S"
OP_COUNTERS = b"N"
OP_CHECKPOINT = b"K"
OP_RESTORE = b"R"
OP_STOP = b"X"

RE_ACK = b"a"
RE_SNAPSHOT = b"s"
RE_COUNTERS = b"n"
RE_CHECKPOINT = b"k"
RE_RESTORED = b"r"
RE_BYE = b"x"
RE_ERROR = b"e"


def pack_record(port_id: int, device: int, timestamp: int, wire: bytes) -> bytes:
    """Frame one packet for the pipe: header + raw wire bytes.

    ``device`` rides the frame because :meth:`Packet.wire_bytes` does
    not carry it — it is runtime routing state, not an on-wire field.
    """
    return _REC.pack(port_id, device, timestamp, len(wire)) + wire


def unpack_records(blob: bytes, offset: int = 0) -> List[Tuple[int, int, int, bytes]]:
    """Parse a concatenation of framed records: (port, device, ts, wire)."""
    records: List[Tuple[int, int, int, bytes]] = []
    end = len(blob)
    while offset < end:
        port_id, device, timestamp, length = _REC.unpack_from(blob, offset)
        offset += _REC.size
        records.append((port_id, device, timestamp, bytes(blob[offset : offset + length])))
        offset += length
    return records


class WorkerCrashed(RuntimeError):
    """A worker process died (or stopped answering) mid-schedule.

    Carries enough to resume or fail over: which shard is gone and the
    sequence number of the last burst that worker *acknowledged* — every
    burst after it must be considered lost with the worker.
    """

    def __init__(self, shard: int, last_acked_seq: int, reason: str = "") -> None:
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"worker {shard} crashed after acking burst {last_acked_seq}{detail}"
        )
        self.shard = shard
        self.last_acked_seq = last_acked_seq
        self.reason = reason


# -- the worker process -------------------------------------------------------


def _worker_main(
    conn,
    worker_id: int,
    nf_factory: Callable[[NatConfig], NetworkFunction],
    shard: NatConfig,
    fastpath: bool,
    port_count: int,
    rx_capacity: int,
    pool_size: int,
) -> None:
    """One shard's whole world: NF + runtime + cache + registry, private.

    Runs until an ``X`` command or pipe EOF. Every command handler is
    wrapped: an exception becomes an ``e`` reply (type + message) so the
    parent re-raises instead of deadlocking on a missing reply.
    """
    from repro.resil.checkpoint import Checkpoint
    from repro.resil.checkpoint import restore as restore_checkpoint
    from repro.resil.checkpoint import snapshot as snapshot_checkpoint

    nf = nf_factory(shard)
    if fastpath:
        nf = FastPathNat(nf)
    runtime = DpdkRuntime(port_count, rx_capacity, pool_size)
    runtime.worker_id = worker_id
    seized: List = []

    def apply_pool_seizure(target: int) -> None:
        while len(seized) < target:
            mbuf = runtime.pool.alloc(None, port=0, timestamp=0)
            if mbuf is None:
                break
            seized.append(mbuf)
        while len(seized) > target:
            runtime.pool.free(seized.pop())

    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break
        op = message[:1]
        try:
            if op == OP_INJECT:
                for port_id, device, timestamp, wire in unpack_records(message, 1):
                    packet = Packet.from_bytes(wire, device=device)
                    runtime.inject(port_id, packet, timestamp)
            elif op == OP_TURN:
                seq, now_us, burst_size, seizure = _TURN.unpack_from(message, 1)
                apply_pool_seizure(seizure)
                processed = runtime.main_loop_burst(nf, now_us, burst_size)
                frames = [
                    pack_record(port_id, packet.device, timestamp, packet.wire_bytes())
                    for port_id, timestamp, packet in runtime.collect()
                ]
                conn.send_bytes(
                    RE_ACK + _ACK.pack(seq, processed) + b"".join(frames)
                )
            elif op == OP_SNAPSHOT:
                registry = MetricsRegistry()
                labels = {"worker": str(worker_id)}
                runtime.register_metrics(registry, labels)
                nf.register_metrics(registry, labels)
                conn.send_bytes(
                    RE_SNAPSHOT + json.dumps(registry.snapshot()).encode("utf-8")
                )
            elif op == OP_COUNTERS:
                payload = {
                    "op_counters": dict(nf.op_counters()),
                    "drop_causes": runtime.drop_causes(),
                    "flow_count": nf.flow_count() if hasattr(nf, "flow_count") else 0,
                }
                conn.send_bytes(RE_COUNTERS + json.dumps(payload).encode("utf-8"))
            elif op == OP_CHECKPOINT:
                (taken_at_us,) = _CKPT.unpack_from(message, 1)
                frame = snapshot_checkpoint(nf, taken_at_us).to_bytes()
                conn.send_bytes(RE_CHECKPOINT + frame)
            elif op == OP_RESTORE:
                restore_checkpoint(nf, Checkpoint.from_bytes(message[1:]))
                conn.send_bytes(RE_RESTORED)
            elif op == OP_STOP:
                conn.send_bytes(RE_BYE)
                break
            else:
                raise ValueError(f"unknown opcode {op!r}")
        except Exception as exc:  # noqa: BLE001 — everything must reach the parent
            conn.send_bytes(
                RE_ERROR
                + json.dumps(
                    {"type": type(exc).__name__, "message": str(exc)}
                ).encode("utf-8")
            )
    conn.close()


# -- the parent-side runtime --------------------------------------------------


class ProcessShardedRuntime:
    """N shard processes behind one RSS-steered NIC, driven by the parent.

    The public surface mirrors :class:`~repro.net.dpdk.ShardedRuntime`
    (it satisfies the same :class:`~repro.net.app.Runtime` protocol), so
    a schedule driven against both produces byte-identical per-worker TX
    streams and merged counters. Differences by design:

    - :meth:`inject` batches: packets are framed and buffered per
      worker, and shipped as one pipe message per worker per turn.
    - A fault-plan worker kill terminates the real OS process; the
      parent then raises :class:`WorkerCrashed` rather than silently
      serving on, because process mode has no failover controller (use
      the deterministic mode with replication for that).
    - :meth:`checkpoint` is coordinated: the pipe's FIFO ordering fences
      each worker (a checkpoint reply proves every prior burst landed),
      and the shard frames are bound into one
      :class:`~repro.resil.checkpoint.CheckpointSet` manifest.

    Always :meth:`stop` a runtime when done (or use it as a context
    manager) — worker processes are real and must be joined.
    """

    def __init__(
        self,
        nf_factory: Callable[[NatConfig], NetworkFunction],
        config: Optional[NatConfig] = None,
        workers: int = 1,
        *,
        steering: Optional[NatSteering] = None,
        port_count: int = 2,
        rx_capacity: int = 512,
        pool_size: int = 4096,
        fastpath: bool = False,
        fault_plan=None,
        turn_timeout_s: float = 30.0,
    ) -> None:
        if workers <= 0:
            raise ValueError("need at least one worker")
        if turn_timeout_s <= 0:
            raise ValueError("turn timeout must be positive")
        config = config if config is not None else NatConfig()
        self.config = config
        self.shards: Tuple[NatConfig, ...] = config.partition(workers)
        self.steering = steering if steering is not None else NatSteering(self.shards)
        self.nic = RssNic(workers, steer=self.steering.worker_for)
        self.fault_plan = fault_plan
        self.fault_wire_dropped = 0
        self.fault_wire_corrupted = 0
        self.fault_kill_lost = 0
        self.turn_timeout_s = turn_timeout_s

        context = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for worker_id, shard in enumerate(self.shards):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    worker_id,
                    nf_factory,
                    shard,
                    fastpath,
                    port_count,
                    rx_capacity,
                    pool_size,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

        #: Framed-but-unsent packets per worker, flushed once per turn.
        self._pending: List[List[bytes]] = [[] for _ in range(workers)]
        self._seq = 0
        self._last_acked: List[int] = [0] * workers
        self._alive: List[bool] = [True] * workers
        self._death_reason: List[str] = [""] * workers
        #: Accumulated TX records per worker, in the frame field order
        #: of :func:`unpack_records`: (port, device, timestamp, wire).
        self._tx: List[List[Tuple[int, int, int, bytes]]] = [
            [] for _ in range(workers)
        ]
        self._stopped = False

    # -- context management --------------------------------------------------
    def __enter__(self) -> "ProcessShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self.shards)

    @property
    def steered(self) -> List[int]:
        """Packets steered to each worker so far."""
        return list(self.nic.queue_packets)

    def worker_for(self, packet: Packet) -> int:
        """The worker the steering stage would select (without counting)."""
        return self.steering.worker_for(packet)

    # -- wire side -----------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Steer a packet and buffer its frame for the next turn's batch.

        Mirrors the oracle's fault consultation exactly (same verdict
        order, same RNG draws) so fault-plan runs stay comparable. The
        return value reports wire-level acceptance; ring-full drops
        happen (and are counted) inside the owning worker, exactly where
        the oracle's per-worker ports count them.
        """
        plan = self.fault_plan
        if plan is not None and not plan.empty:
            target = self.steering.worker_for(packet)
            verdict, delay_us = plan.link_verdict(timestamp, target)
            if verdict == "drop":
                self.fault_wire_dropped += 1
                recorder = obs.recorder()
                if recorder.active:
                    recorder.trace(
                        flight.DROP,
                        t_us=timestamp,
                        worker=target,
                        reason=flight.REASON_LINK_FAULT,
                    )
                return False
            if verdict == "corrupt":
                packet = plan.corrupt_packet(packet)
                self.fault_wire_corrupted += 1
            if delay_us:
                timestamp += delay_us
        worker = self.nic.select(packet)
        recorder = obs.recorder()
        if recorder.active:
            recorder.trace(
                flight.STEER,
                t_us=timestamp,
                worker=worker,
                detail=f"port {port_id}",
            )
        self._pending[worker].append(
            pack_record(port_id, packet.device, timestamp, packet.wire_bytes())
        )
        return True

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """All workers' transmissions, merged: (port, timestamp, packet)."""
        merged: List[Tuple[int, int, Packet]] = []
        for records in self._tx:
            for port_id, device, timestamp, wire in records:
                merged.append(
                    (port_id, timestamp, Packet.from_bytes(wire, device=device))
                )
            records.clear()
        merged.sort(key=lambda item: item[1])  # stable: worker order on ties
        return merged

    def collect_by_worker(self) -> List[List[Tuple[int, int, Packet]]]:
        """Per-worker transmissions since the last collect."""
        out: List[List[Tuple[int, int, Packet]]] = []
        for records in self._tx:
            out.append(
                [
                    (port_id, timestamp, Packet.from_bytes(wire, device=device))
                    for port_id, device, timestamp, wire in records
                ]
            )
            records.clear()
        return out

    def collect_raw_by_worker(self) -> List[List[Tuple[int, int, int, bytes]]]:
        """Per-worker TX records as raw frames: (port, device, ts, wire).

        The differential suite compares these against the oracle's
        re-serialized output — no parent-side parse/re-pack in between.
        """
        out = [list(records) for records in self._tx]
        for records in self._tx:
            records.clear()
        return out

    # -- the scatter/gather main loop ---------------------------------------
    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int:
        """One concurrent turn: scatter batches, workers run, gather ACKs.

        Semantically the oracle's round-robin turn, minus the serial
        execution: every live worker gets its buffered inject batch and
        a turn command, then all turn acknowledgements (with their TX
        frames) are gathered. A fault-plan kill terminates the worker's
        OS process and surfaces as :class:`WorkerCrashed`; a hang skips
        the worker's turn with its batches still delivered (queues
        intact, like the oracle); clock skew biases the ``now`` that
        worker observes; pool seizures ride the turn command.
        """
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self._ensure_running()
        plan = self.fault_plan
        faults_on = plan is not None and not plan.empty
        crashed: Optional[int] = None
        turned: List[Tuple[int, int]] = []  # (worker_id, seq)
        for worker_id, conn in enumerate(self._conns):
            if not self._alive[worker_id]:
                if self._pending[worker_id]:
                    self.fault_kill_lost += len(self._pending[worker_id])
                    self._pending[worker_id].clear()
                if crashed is None:
                    crashed = worker_id
                continue
            worker_now = now_us
            seizure = 0
            if faults_on:
                if plan.worker_killed(now_us, worker_id):
                    self._kill_worker(worker_id)
                    if crashed is None:
                        crashed = worker_id
                    continue
                if plan.worker_hung(now_us, worker_id):
                    self._flush_pending(worker_id)
                    continue
                seizure = plan.pool_seizure(now_us, worker_id)
                skew = plan.clock_skew_us(now_us, worker_id)
                if skew:
                    worker_now = max(0, now_us + skew)
            self._flush_pending(worker_id)
            self._seq += 1
            seq = self._seq
            try:
                conn.send_bytes(
                    OP_TURN + _TURN.pack(seq, worker_now, burst_size, seizure)
                )
            except (BrokenPipeError, OSError):
                self._mark_dead(worker_id)
                if crashed is None:
                    crashed = worker_id
                continue
            turned.append((worker_id, seq))

        processed = 0
        for worker_id, seq in turned:
            reply = self._recv(worker_id)
            if reply is None:
                if crashed is None:
                    crashed = worker_id
                continue
            acked_seq, count = _ACK.unpack_from(reply, 1)
            assert acked_seq == seq, f"out-of-order ack: {acked_seq} != {seq}"
            self._last_acked[worker_id] = acked_seq
            processed += count
            if len(reply) > 1 + _ACK.size:
                self._tx[worker_id].extend(
                    unpack_records(reply, 1 + _ACK.size)
                )
        if crashed is not None:
            raise WorkerCrashed(
                crashed,
                self._last_acked[crashed],
                reason=self._death_reason[crashed],
            )
        return processed

    # -- timed replay (the procs benchmark's inner loop) ---------------------
    def prepare_schedule(
        self, events, burst_size: int = 32
    ) -> List[Tuple[List[bytes], int]]:
        """Pre-steer and serialize a burst schedule for :meth:`pump`.

        All parent-side per-packet work (RSS steering, framing) happens
        here, untimed, so a timed :meth:`pump` measures only the
        scatter/gather pipe traffic and the workers' concurrent data
        path — the part that actually scales with cores. Each entry is
        ``(per-worker inject blobs, now_us)`` for one turn; the packet's
        ``device`` doubles as the ingress port id, matching how the
        testbeds drive :meth:`inject`.
        """
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        bursts: List[Tuple[List[bytes], int]] = []
        pending: List[List[bytes]] = [[] for _ in range(self.workers)]
        count = 0
        now_us = 0
        for event in events:
            packet = event.packet
            now_us = event.time_ns // 1_000
            worker = self.steering.worker_for(packet)
            pending[worker].append(
                pack_record(
                    packet.device, packet.device, now_us, packet.wire_bytes()
                )
            )
            count += 1
            if count >= burst_size:
                bursts.append(
                    ([b"".join(blobs) for blobs in pending], now_us)
                )
                pending = [[] for _ in range(self.workers)]
                count = 0
        if count:
            bursts.append(([b"".join(blobs) for blobs in pending], now_us))
        # Two empty drain turns so residual ring occupancy is flushed.
        bursts.append(([b""] * self.workers, now_us + 1))
        bursts.append(([b""] * self.workers, now_us + 2))
        return bursts

    def pump(
        self, schedule: List[Tuple[List[bytes], int]], burst_size: int = 32
    ) -> int:
        """Drive one prepared schedule through the workers; count packets.

        The hot loop of the scaling benchmark: scatter each turn's
        pre-built inject blob plus a turn command to every worker, then
        gather the acknowledgements. TX frames riding the ACKs are
        discarded (the benchmark only needs the processed count); use
        :meth:`main_loop_burst` when outputs matter. Replaying the same
        schedule repeatedly is idempotent NAT-wise — flows already
        exist, so passes after the first measure the warmed steady
        state, mirroring ``_timed_burst_replay``.
        """
        self._ensure_running()
        processed = 0
        for sends, now_us in schedule:
            turned: List[Tuple[int, int]] = []
            for worker_id, blob in enumerate(sends):
                conn = self._conns[worker_id]
                self._seq += 1
                seq = self._seq
                try:
                    if blob:
                        conn.send_bytes(OP_INJECT + blob)
                    conn.send_bytes(
                        OP_TURN + _TURN.pack(seq, now_us, burst_size, 0)
                    )
                except (BrokenPipeError, OSError):
                    self._mark_dead(worker_id)
                    raise WorkerCrashed(
                        worker_id,
                        self._last_acked[worker_id],
                        reason=self._death_reason[worker_id],
                    ) from None
                turned.append((worker_id, seq))
            for worker_id, seq in turned:
                reply = self._recv(worker_id)
                if reply is None:
                    raise WorkerCrashed(
                        worker_id,
                        self._last_acked[worker_id],
                        reason=self._death_reason[worker_id],
                    )
                acked_seq, count = _ACK.unpack_from(reply, 1)
                self._last_acked[worker_id] = acked_seq
                processed += count
        return processed

    def _flush_pending(self, worker_id: int) -> None:
        pending = self._pending[worker_id]
        if not pending:
            return
        blob = OP_INJECT + b"".join(pending)
        pending.clear()
        try:
            self._conns[worker_id].send_bytes(blob)
        except (BrokenPipeError, OSError):
            self._mark_dead(worker_id)

    def _recv(self, worker_id: int) -> Optional[bytes]:
        """One reply from a worker, or ``None`` after marking it dead.

        A worker-side exception reply re-raises here; a dead pipe, a
        dead process or a timeout degrade to ``None`` so the caller can
        raise :class:`WorkerCrashed` with full context.
        """
        conn = self._conns[worker_id]
        try:
            if not conn.poll(self.turn_timeout_s):
                self._mark_dead(worker_id)
                return None
            reply = conn.recv_bytes()
        except (EOFError, OSError):
            self._mark_dead(worker_id)
            return None
        if reply[:1] == RE_ERROR:
            detail = json.loads(reply[1:].decode("utf-8"))
            from repro.resil.checkpoint import CheckpointError

            kind = detail.get("type", "RuntimeError")
            message = f"worker {worker_id}: {detail.get('message', '')}"
            if kind == "CheckpointError":
                raise CheckpointError(message)
            raise RuntimeError(f"[{kind}] {message}")
        return reply

    def _kill_worker(self, worker_id: int) -> None:
        """A fault-plan kill is a real kill: SIGKILL the shard process."""
        proc = self._procs[worker_id]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=self.turn_timeout_s)
        self.fault_kill_lost += len(self._pending[worker_id])
        self._pending[worker_id].clear()
        self._mark_dead(worker_id, "killed by fault plan")

    def _mark_dead(self, worker_id: int, reason: str = "worker process died") -> None:
        self._alive[worker_id] = False
        if not self._death_reason[worker_id]:
            self._death_reason[worker_id] = reason

    def _ensure_running(self) -> None:
        if self._stopped:
            raise RuntimeError("runtime is stopped")

    def _request(self, worker_id: int, message: bytes, expect: bytes) -> bytes:
        if not self._alive[worker_id]:
            raise WorkerCrashed(worker_id, self._last_acked[worker_id])
        try:
            self._conns[worker_id].send_bytes(message)
        except (BrokenPipeError, OSError):
            self._mark_dead(worker_id)
            raise WorkerCrashed(worker_id, self._last_acked[worker_id]) from None
        reply = self._recv(worker_id)
        if reply is None:
            raise WorkerCrashed(worker_id, self._last_acked[worker_id])
        assert reply[:1] == expect, f"unexpected reply {reply[:1]!r}"
        return reply

    # -- counters ------------------------------------------------------------
    def _counters(self, worker_id: int) -> Dict:
        reply = self._request(worker_id, OP_COUNTERS, RE_COUNTERS)
        return json.loads(reply[1:].decode("utf-8"))

    def per_worker_counters(self) -> List[Dict[str, int]]:
        """Each worker's NF operation counters, in worker order."""
        return [self._counters(w)["op_counters"] for w in range(self.workers)]

    def op_counters(self) -> Dict[str, int]:
        """NF operation counters aggregated (summed) across workers."""
        aggregate: Dict[str, int] = {}
        for counters in self.per_worker_counters():
            for key, value in counters.items():
                aggregate[key] = aggregate.get(key, 0) + value
        return aggregate

    def drop_causes(self) -> Dict[str, int]:
        """Drop/near-drop causes aggregated across workers, oracle-style."""
        aggregate: Dict[str, int] = {}
        for worker_id in range(self.workers):
            for key, value in self._counters(worker_id)["drop_causes"].items():
                if key == "pool_high_water":
                    aggregate[key] = max(aggregate.get(key, 0), value)
                else:
                    aggregate[key] = aggregate.get(key, 0) + value
        if self.fault_plan is not None:
            aggregate["fault_wire_dropped"] = self.fault_wire_dropped
            aggregate["fault_wire_corrupted"] = self.fault_wire_corrupted
            aggregate["fault_kill_lost"] = self.fault_kill_lost
        return aggregate

    def flow_count(self) -> int:
        """Live translation entries across all workers."""
        return sum(
            self._counters(w)["flow_count"] for w in range(self.workers)
        )

    # -- observability -------------------------------------------------------
    def snapshot_metrics(self) -> Dict:
        """One merged snapshot: NIC steering + every worker's world.

        Each worker collects its own registry with a ``worker`` label
        stamped *at the source* (see :func:`repro.obs.registry.with_labels`
        for why), so :func:`~repro.obs.registry.merge_snapshots` keeps
        distinct workers' gauges apart instead of summing them.
        """
        parent = MetricsRegistry()
        self.nic.register_metrics(parent)
        snapshots = [parent.snapshot()]
        for worker_id in range(self.workers):
            reply = self._request(worker_id, OP_SNAPSHOT, RE_SNAPSHOT)
            snapshots.append(json.loads(reply[1:].decode("utf-8")))
        return merge_snapshots(snapshots)

    def metrics_snapshot(self) -> Dict:
        """Alias matching :class:`~repro.net.dpdk.ShardedRuntime`."""
        return self.snapshot_metrics()

    # -- coordinated checkpoint ----------------------------------------------
    def checkpoint(self, now_us: int = 0):
        """Fence every worker and bind their frames into one manifest.

        The pipe is FIFO, so a worker's checkpoint reply proves every
        burst the parent sent before the fence has fully executed —
        that reply *is* the fence. After a completed turn RX rings are
        drained, making any inter-turn point a consistent cut.
        """
        from repro.resil.checkpoint import Checkpoint, CheckpointSet

        frames = []
        for worker_id in range(self.workers):
            reply = self._request(
                worker_id, OP_CHECKPOINT + _CKPT.pack(now_us), RE_CHECKPOINT
            )
            frames.append(Checkpoint.from_bytes(reply[1:]))
        return CheckpointSet(taken_at_us=now_us, checkpoints=tuple(frames))

    def restore(self, checkpoint_set) -> None:
        """Adopt a coordinated checkpoint, one frame per worker, in order."""
        from repro.resil.checkpoint import CheckpointError

        if checkpoint_set.workers != self.workers:
            raise CheckpointError(
                f"checkpoint set holds {checkpoint_set.workers} shard(s), "
                f"runtime has {self.workers}"
            )
        for worker_id, ckpt in enumerate(checkpoint_set.checkpoints):
            self._request(worker_id, OP_RESTORE + ckpt.to_bytes(), RE_RESTORED)

    # -- shutdown ------------------------------------------------------------
    def stop(self, timeout_s: float = 5.0) -> None:
        """Clean shutdown: stop command, join with timeout, then the axe.

        Idempotent; safe after a crash (dead workers are skipped). Any
        worker that does not exit within ``timeout_s`` is terminated.
        """
        if self._stopped:
            return
        self._stopped = True
        for worker_id, conn in enumerate(self._conns):
            if not self._alive[worker_id]:
                continue
            try:
                conn.send_bytes(OP_STOP)
            except (BrokenPipeError, OSError):
                continue
        for worker_id, (conn, proc) in enumerate(zip(self._conns, self._procs)):
            if self._alive[worker_id]:
                try:
                    if conn.poll(timeout_s):
                        conn.recv_bytes()  # the goodbye
                except (EOFError, OSError):
                    pass
            proc.join(timeout=timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout_s)
            conn.close()
            self._alive[worker_id] = False


__all__ = [
    "OP_CHECKPOINT",
    "OP_COUNTERS",
    "OP_INJECT",
    "OP_RESTORE",
    "OP_SNAPSHOT",
    "OP_STOP",
    "OP_TURN",
    "ProcessShardedRuntime",
    "WorkerCrashed",
    "pack_record",
    "unpack_records",
]
