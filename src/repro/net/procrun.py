"""Process-per-shard runtime: real multi-core scale-out for the NAT.

:class:`~repro.net.dpdk.ShardedRuntime` round-robins its workers inside
one Python thread — deterministic, but "4 workers" never buys wall-clock
time. :class:`ProcessShardedRuntime` keeps the exact same shape (one
shard of a partitioned :class:`~repro.nat.config.NatConfig`, one NF, one
:class:`~repro.net.dpdk.DpdkRuntime`, one private fastpath cache and
:class:`~repro.obs.registry.MetricsRegistry` per worker) but runs every
worker in its own OS process, so shards execute concurrently on real
cores. Nothing is shared: the parent owns the RSS steering stage
(:class:`~repro.net.rss.NatSteering` behind an
:class:`~repro.net.nic.RssNic`).

Two interchangeable payload transports move packets across the
parent/worker boundary (``RuntimeSpec(transport=...)``):

- ``pipe`` — length-prefixed mbuf-shaped frames over the control pipe
  itself, batched per burst. Simple, but every packet is serialized
  through two kernel copies per direction.
- ``shm`` (the default) — per-worker single-producer/single-consumer
  ring buffers over ``multiprocessing.shared_memory``
  (:class:`~repro.net.shmring.ShmRing`): one inject ring parent→worker,
  one TX ring worker→parent. A whole burst lands in the ring with one
  slice assignment; the pipe carries *control only*. Ring-full is
  explicit backpressure — the producer waits, with ``turn_timeout_s``
  bounding every wait.

In both transports the pipe stays the control plane (turn barriers,
snapshots, checkpoints, crash detection), so the FIFO checkpoint fence
and the typed :class:`WorkerCrashed` semantics are transport-invariant:
a pipe write is a full memory barrier, so by the time a worker sees a
``T`` command every inject span written before it is visible, and by
the time the parent sees the ``a`` reply every TX span is too.

The deterministic runtime stays the *verification oracle*: because a
worker process runs the identical per-shard data path on the identical
steered sub-schedule, its TX stream is byte-for-byte what the oracle's
same-numbered worker produces — the differential suite in
``tests/integration/test_proc_differential.py`` proves it on every
NF × fastpath × worker-count × transport cell. See ``docs/SCALING.md``.

Protocol (one request/reply pipe per worker, commands applied in FIFO
order, which is what makes the checkpoint fence trivial):

========  ======================================  =======================
opcode    parent → worker                         worker → parent
========  ======================================  =======================
``I``     burst of framed packets (pipe only)     (no reply)
``T``     run one main-loop turn                  ``a`` seq, processed
                                                  [+ TX frames, pipe only]
``S``     collect a worker-labeled snapshot       ``s`` JSON snapshot
``N``     collect NF/runtime counters             ``n`` JSON counters
``K``     take a ``repro-ckpt/v1`` checkpoint     ``k`` checkpoint frame
``R``     restore a checkpoint frame              ``r`` ack
``X``     stop and exit                           ``x`` goodbye
========  ======================================  =======================

Any worker-side exception comes back as an ``e`` reply and is re-raised
in the parent; a worker that dies instead of replying surfaces as
:class:`WorkerCrashed` with the shard id and the last *acknowledged*
burst sequence number — never as a hung pipe read. With
``supervise=True`` the runtime instead respawns the dead shard and
restores the last coordinated :class:`~repro.resil.checkpoint.CheckpointSet`
(see :meth:`ProcessShardedRuntime.main_loop_burst`).
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import signal
import struct
import time
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.fastpath import FastPathNat, normalize_fastpath
from repro.net.dpdk import DpdkRuntime
from repro.net.mbuf import SLOT_HEADER, pack_slot_record, unpack_slot_records
from repro.net.nic import RssNic
from repro.net.rss import NatSteering
from repro.net.shmring import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    ShmRing,
    unlink_rings,
)
from repro.obs import flight
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.packets.headers import Packet

# -- transports ---------------------------------------------------------------

TRANSPORT_PIPE = "pipe"
TRANSPORT_SHM = "shm"
#: Payload transports a process runtime can use. Both are proven
#: byte-identical to the deterministic oracle by the differential grid.
TRANSPORTS = (TRANSPORT_PIPE, TRANSPORT_SHM)

# -- wire framing -------------------------------------------------------------

#: One framed packet record: port, device, timestamp_us, wire length.
#: This is exactly the shm slot-record layout — both transports carry
#: the same bytes, which is what makes the transport axis a pure
#: mechanism swap in the differential proofs.
_REC = SLOT_HEADER
#: Turn command payload: seq, now_us, burst_size, pool seizure target.
_TURN = struct.Struct(">QqiI")
#: Turn acknowledgement payload: seq, packets processed.
_ACK = struct.Struct(">QI")
_CKPT = struct.Struct(">q")  # taken_at_us

OP_INJECT = b"I"
OP_TURN = b"T"
OP_SNAPSHOT = b"S"
OP_COUNTERS = b"N"
OP_CHECKPOINT = b"K"
OP_RESTORE = b"R"
OP_STOP = b"X"

RE_ACK = b"a"
RE_SNAPSHOT = b"s"
RE_COUNTERS = b"n"
RE_CHECKPOINT = b"k"
RE_RESTORED = b"r"
RE_BYE = b"x"
RE_ERROR = b"e"

#: How long a producer sleeps between ring-full retries, and how often
#: an idle worker wakes to drain its inject ring. Short enough that a
#: full ring drains within a handful of wakeups, long enough not to
#: burn a core while idle.
_RING_RETRY_S = 0.0002
_WORKER_POLL_S = 0.002

pack_record = pack_slot_record
unpack_records = unpack_slot_records


class TransportStats:
    """Per-burst transport tax, split where the ablation needs it split.

    - ``encode_ns`` — record framing and parsing (the pack/unpack
      loops), common to both transports.
    - ``copy_ns`` — moving the bytes: pipe join/send/recv vs shm slice
      writes and reads. This is the term the shm transport exists to
      shrink.
    - ``ring_wait_ns`` — time blocked on ring-full backpressure (shm
      only; the pipe transport blocks in the kernel instead, where it
      shows up as copy time).

    Both sides keep one: the parent's half lives on the runtime, each
    worker's half rides the ``N`` counters reply as ``transport_ns``.
    """

    __slots__ = ("encode_ns", "copy_ns", "ring_wait_ns")

    def __init__(self) -> None:
        self.encode_ns = 0
        self.copy_ns = 0
        self.ring_wait_ns = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "encode_ns": self.encode_ns,
            "copy_ns": self.copy_ns,
            "ring_wait_ns": self.ring_wait_ns,
        }

    def register_metrics(self, registry, labels=None) -> None:
        registry.counter_fn(
            "proc_encode_ns_total",
            lambda: self.encode_ns,
            "transport record framing/parsing time",
            labels,
        )
        registry.counter_fn(
            "proc_copy_ns_total",
            lambda: self.copy_ns,
            "transport byte-movement time",
            labels,
        )
        registry.counter_fn(
            "proc_ring_wait_ns_total",
            lambda: self.ring_wait_ns,
            "time blocked on ring-full backpressure",
            labels,
        )


_RING_SEQ = itertools.count()


def _create_ring(tag: str, slots: int, slot_bytes: int) -> ShmRing:
    """One explicitly-named segment: ``repro-ring-<pid>-<seq>-<tag>``.

    Explicit names make leaks greppable (``ls /dev/shm | grep
    repro-ring``) — the leak test relies on that. A name collision
    (a previous run's leak) just bumps the sequence number.
    """
    while True:
        name = f"repro-ring-{os.getpid()}-{next(_RING_SEQ)}-{tag}"
        try:
            return ShmRing(name=name, slots=slots, slot_bytes=slot_bytes)
        except FileExistsError:
            continue


def _push_with_backpressure(
    ring: ShmRing,
    blob: bytes,
    stats: TransportStats,
    timeout_s: float,
    on_wait: Optional[Callable[[], None]] = None,
) -> None:
    """Push one span, waiting out ring-full; every wait is bounded.

    ``on_wait`` runs between retries — the parent drains TX rings there
    so a worker blocked pushing TX can always make progress (and vice
    versa: the worker's idle loop drains its inject ring, so a parent
    blocked here always unblocks). Raises after ``timeout_s`` of no
    progress so a dead peer surfaces instead of a hang.
    """
    deadline = None
    while True:
        t0 = time.perf_counter_ns()
        pushed = ring.try_push_burst(blob)
        t1 = time.perf_counter_ns()
        if pushed:
            stats.copy_ns += t1 - t0
            return
        stats.ring_wait_ns += t1 - t0
        now = time.monotonic()
        if deadline is None:
            deadline = now + timeout_s
        elif now > deadline:
            raise TimeoutError(
                f"ring {ring.name} full for {timeout_s:.1f}s — consumer "
                f"is not draining"
            )
        if on_wait is not None:
            on_wait()
        time.sleep(_RING_RETRY_S)
        stats.ring_wait_ns += time.perf_counter_ns() - t1


def _chunk_frames(frames: List[bytes], max_bytes: int) -> List[bytes]:
    """Join frames into span-sized blobs, never splitting a record."""
    chunks: List[bytes] = []
    batch: List[bytes] = []
    size = 0
    for frame in frames:
        if batch and size + len(frame) > max_bytes:
            chunks.append(b"".join(batch))
            batch = []
            size = 0
        batch.append(frame)
        size += len(frame)
    if batch:
        chunks.append(b"".join(batch))
    return chunks


def _split_blob(blob: bytes, max_bytes: int) -> List[bytes]:
    """Split a pre-joined record blob at record boundaries."""
    if len(blob) <= max_bytes:
        return [blob]
    parts: List[bytes] = []
    start = 0
    offset = 0
    end = len(blob)
    while offset < end:
        length = _REC.unpack_from(blob, offset)[3]
        nxt = offset + _REC.size + length
        if nxt - start > max_bytes and offset > start:
            parts.append(blob[start:offset])
            start = offset
        offset = nxt
    parts.append(blob[start:end])
    return parts


class WorkerCrashed(RuntimeError):
    """A worker process died (or stopped answering) mid-schedule.

    Carries enough to resume or fail over: which shard is gone and the
    sequence number of the last burst that worker *acknowledged* — every
    burst after it must be considered lost with the worker.
    """

    def __init__(self, shard: int, last_acked_seq: int, reason: str = "") -> None:
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"worker {shard} crashed after acking burst {last_acked_seq}{detail}"
        )
        self.shard = shard
        self.last_acked_seq = last_acked_seq
        self.reason = reason


# -- the worker process -------------------------------------------------------


def _worker_main(
    conn,
    worker_id: int,
    nf_factory: Callable[[NatConfig], NetworkFunction],
    shard: NatConfig,
    fastpath: str,
    port_count: int,
    rx_capacity: int,
    pool_size: int,
    inject_ring: Optional[ShmRing] = None,
    out_ring: Optional[ShmRing] = None,
    turn_timeout_s: float = 30.0,
) -> None:
    """One shard's whole world: NF + runtime + cache + registry, private.

    Runs until an ``X`` command or pipe EOF. Every command handler is
    wrapped: an exception becomes an ``e`` reply (type + message) so the
    parent re-raises instead of deadlocking on a missing reply.

    With rings (shm transport) the loop is: while the pipe is idle,
    eagerly drain the inject ring into the runtime's RX queues — that is
    what resolves the parent's ring-full backpressure without waiting
    for a turn. On ``T``, drain whatever remains (the pipe write fenced
    it), run the turn, push the TX burst into the out ring *before* the
    ACK, so the parent's ACK read doubles as the TX-visibility fence.
    """
    from repro.resil.checkpoint import Checkpoint
    from repro.resil.checkpoint import restore as restore_checkpoint
    from repro.resil.checkpoint import snapshot as snapshot_checkpoint

    nf = nf_factory(shard)
    if fastpath != "off":
        nf = FastPathNat(nf, mode=fastpath)
    runtime = DpdkRuntime(port_count, rx_capacity, pool_size)
    runtime.worker_id = worker_id
    seized: List = []
    stats = TransportStats()
    transport = TRANSPORT_SHM if inject_ring is not None else TRANSPORT_PIPE
    max_span = None
    if out_ring is not None:
        max_span = max(out_ring.slot_bytes, out_ring.capacity_bytes // 4)

    def apply_pool_seizure(target: int) -> None:
        while len(seized) < target:
            mbuf = runtime.pool.alloc(None, port=0, timestamp=0)
            if mbuf is None:
                break
            seized.append(mbuf)
        while len(seized) > target:
            runtime.pool.free(seized.pop())

    def drain_inject() -> int:
        """Pop every visible burst into the runtime's RX queues."""
        drained = 0
        while True:
            t0 = time.perf_counter_ns()
            blob = inject_ring.pop_burst_bytes()
            t1 = time.perf_counter_ns()
            if blob is None:
                return drained
            stats.copy_ns += t1 - t0
            records = unpack_slot_records(blob)
            stats.encode_ns += time.perf_counter_ns() - t1
            for port_id, device, timestamp, wire in records:
                packet = Packet.from_bytes(wire, device=device)
                runtime.inject(port_id, packet, timestamp)
            drained += len(records)

    while True:
        try:
            if inject_ring is not None:
                # Idle loop doubles as the backpressure valve: a parent
                # blocked on inject-ring-full unblocks within one poll.
                while not conn.poll(_WORKER_POLL_S):
                    drain_inject()
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break
        op = message[:1]
        try:
            if op == OP_INJECT:
                t0 = time.perf_counter_ns()
                records = unpack_slot_records(message, 1)
                stats.encode_ns += time.perf_counter_ns() - t0
                for port_id, device, timestamp, wire in records:
                    packet = Packet.from_bytes(wire, device=device)
                    runtime.inject(port_id, packet, timestamp)
            elif op == OP_TURN:
                seq, now_us, burst_size, seizure = _TURN.unpack_from(message, 1)
                if inject_ring is not None:
                    drain_inject()  # the T write fenced these spans
                apply_pool_seizure(seizure)
                processed = runtime.main_loop_burst(nf, now_us, burst_size)
                t0 = time.perf_counter_ns()
                frames = [
                    pack_record(port_id, packet.device, timestamp, packet.wire_bytes())
                    for port_id, timestamp, packet in runtime.collect()
                ]
                stats.encode_ns += time.perf_counter_ns() - t0
                if out_ring is not None:
                    if frames:
                        for chunk in _chunk_frames(frames, max_span):
                            _push_with_backpressure(
                                out_ring, chunk, stats, turn_timeout_s
                            )
                    conn.send_bytes(RE_ACK + _ACK.pack(seq, processed))
                else:
                    t0 = time.perf_counter_ns()
                    payload = RE_ACK + _ACK.pack(seq, processed) + b"".join(frames)
                    conn.send_bytes(payload)
                    stats.copy_ns += time.perf_counter_ns() - t0
            elif op == OP_SNAPSHOT:
                registry = MetricsRegistry()
                labels = {"worker": str(worker_id), "transport": transport}
                runtime.register_metrics(registry, labels)
                nf.register_metrics(registry, labels)
                stats.register_metrics(registry, labels)
                conn.send_bytes(
                    RE_SNAPSHOT + json.dumps(registry.snapshot()).encode("utf-8")
                )
            elif op == OP_COUNTERS:
                payload = {
                    "op_counters": dict(nf.op_counters()),
                    "drop_causes": runtime.drop_causes(),
                    "flow_count": nf.flow_count() if hasattr(nf, "flow_count") else 0,
                    "transport_ns": stats.as_dict(),
                }
                conn.send_bytes(RE_COUNTERS + json.dumps(payload).encode("utf-8"))
            elif op == OP_CHECKPOINT:
                (taken_at_us,) = _CKPT.unpack_from(message, 1)
                frame = snapshot_checkpoint(nf, taken_at_us).to_bytes()
                conn.send_bytes(RE_CHECKPOINT + frame)
            elif op == OP_RESTORE:
                # restore_state demands a freshly constructed NF, so the
                # worker rebuilds its shard from the factory first —
                # this is what lets the supervisor restore *surviving*
                # workers in place after respawning only the dead ones
                # (the fastpath cache starts cold, as after any restore:
                # the generation bump would invalidate it anyway).
                fresh = nf_factory(shard)
                if fastpath != "off":
                    fresh = FastPathNat(fresh, mode=fastpath)
                restore_checkpoint(fresh, Checkpoint.from_bytes(message[1:]))
                nf = fresh
                conn.send_bytes(RE_RESTORED)
            elif op == OP_STOP:
                conn.send_bytes(RE_BYE)
                break
            else:
                raise ValueError(f"unknown opcode {op!r}")
        except Exception as exc:  # noqa: BLE001 — everything must reach the parent
            conn.send_bytes(
                RE_ERROR
                + json.dumps(
                    {"type": type(exc).__name__, "message": str(exc)}
                ).encode("utf-8")
            )
    # Detach this process's ring mappings; the parent owns unlinking.
    for ring in (inject_ring, out_ring):
        if ring is not None:
            ring.close()
    conn.close()


# -- the parent-side runtime --------------------------------------------------


class ProcessShardedRuntime:
    """N shard processes behind one RSS-steered NIC, driven by the parent.

    The public surface mirrors :class:`~repro.net.dpdk.ShardedRuntime`
    (it satisfies the same :class:`~repro.net.app.Runtime` protocol), so
    a schedule driven against both produces byte-identical per-worker TX
    streams and merged counters. Differences by design:

    - :meth:`inject` batches: packets are steered and buffered per
      worker, and shipped once per worker per turn — as one pipe
      message (``transport="pipe"``) or as spans in that worker's
      inject ring (``transport="shm"``).
    - A fault-plan worker kill terminates the real OS process; the
      parent then raises :class:`WorkerCrashed` rather than silently
      serving on — unless ``supervise=True``, in which case the dead
      shard is respawned and the whole fleet restored to the last
      coordinated checkpoint.
    - :meth:`checkpoint` is coordinated: the pipe's FIFO ordering fences
      each worker (a checkpoint reply proves every prior burst landed —
      including its ring spans, since workers drain before acking),
      and the shard frames are bound into one
      :class:`~repro.resil.checkpoint.CheckpointSet` manifest.

    Always :meth:`stop` a runtime when done (or use it as a context
    manager) — worker processes are real and must be joined, and the
    shm transport's segments are unlinked there. A ``weakref.finalize``
    hook unlinks them even when ``stop`` never runs (parent exception,
    GC, interpreter exit), so no ``/dev/shm`` entries outlive the
    parent.
    """

    def __init__(
        self,
        nf_factory: Callable[[NatConfig], NetworkFunction],
        config: Optional[NatConfig] = None,
        workers: int = 1,
        *,
        steering: Optional[NatSteering] = None,
        port_count: int = 2,
        rx_capacity: int = 512,
        pool_size: int = 4096,
        fastpath="off",
        fault_plan=None,
        turn_timeout_s: float = 30.0,
        transport: str = TRANSPORT_SHM,
        supervise: bool = False,
        ring_slots: int = DEFAULT_SLOTS,
        ring_slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        if workers <= 0:
            raise ValueError("need at least one worker")
        if turn_timeout_s <= 0:
            raise ValueError("turn timeout must be positive")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose one of {TRANSPORTS}"
            )
        config = config if config is not None else NatConfig()
        self.config = config
        self.shards: Tuple[NatConfig, ...] = config.partition(workers)
        self.steering = steering if steering is not None else NatSteering(self.shards)
        self.nic = RssNic(workers, steer=self.steering.worker_for)
        self.fault_plan = fault_plan
        self.fault_wire_dropped = 0
        self.fault_wire_corrupted = 0
        self.fault_kill_lost = 0
        self.turn_timeout_s = turn_timeout_s
        self.transport = transport
        self.supervise = supervise
        self.supervisor_restarts = 0
        self._ring_slots = ring_slots
        self._ring_slot_bytes = ring_slot_bytes
        self._nf_factory = nf_factory
        self._fastpath = normalize_fastpath(fastpath)
        self._port_count = port_count
        self._rx_capacity = rx_capacity
        self._pool_size = pool_size
        self._stats = TransportStats()

        self._context = multiprocessing.get_context("fork")
        self._conns: List = [None] * workers
        self._procs: List = [None] * workers
        self._inject_rings: List[Optional[ShmRing]] = [None] * workers
        self._out_rings: List[Optional[ShmRing]] = [None] * workers
        #: Every ring ever created, mutated in place so the finalizer
        #: below (registered once) always sees the current set — this
        #: is the "no leaked /dev/shm segments on any exit path"
        #: guarantee: stop(), crash handling, parent exception, GC and
        #: interpreter exit all funnel into unlink_rings exactly once.
        self._all_rings: List[ShmRing] = []
        self._ring_finalizer = weakref.finalize(
            self, unlink_rings, self._all_rings
        )
        try:
            for worker_id in range(workers):
                self._spawn_worker(worker_id)
        except BaseException:
            self._ring_finalizer()
            raise

        #: Steered-but-unsent packets per worker as (port, device, ts,
        #: wire) tuples, framed at flush time (so the ablation counters
        #: see encode and copy separately) and flushed once per turn.
        self._pending: List[List[Tuple[int, int, int, bytes]]] = [
            [] for _ in range(workers)
        ]
        self._seq = 0
        self._last_acked: List[int] = [0] * workers
        self._alive: List[bool] = [True] * workers
        self._death_reason: List[str] = [""] * workers
        #: Accumulated TX records per worker, in the frame field order
        #: of :func:`unpack_records`: (port, device, timestamp, wire).
        self._tx: List[List[Tuple[int, int, int, bytes]]] = [
            [] for _ in range(workers)
        ]
        self._stopped = False
        self._last_checkpoint_set = None
        if supervise:
            # The recovery baseline must exist before the first crash:
            # a fresh fleet's coordinated empty-state checkpoint.
            self._last_checkpoint_set = self.checkpoint(0)

    def _spawn_worker(self, worker_id: int) -> None:
        """Stand up one shard process (construction and respawn path)."""
        inject_ring = out_ring = None
        if self.transport == TRANSPORT_SHM:
            inject_ring = _create_ring(
                f"{worker_id}i", self._ring_slots, self._ring_slot_bytes
            )
            self._all_rings.append(inject_ring)
            out_ring = _create_ring(
                f"{worker_id}o", self._ring_slots, self._ring_slot_bytes
            )
            self._all_rings.append(out_ring)
        parent_conn, child_conn = self._context.Pipe()
        proc = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker_id,
                self._nf_factory,
                self.shards[worker_id],
                self._fastpath,
                self._port_count,
                self._rx_capacity,
                self._pool_size,
                inject_ring,
                out_ring,
                self.turn_timeout_s,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[worker_id] = parent_conn
        self._procs[worker_id] = proc
        self._inject_rings[worker_id] = inject_ring
        self._out_rings[worker_id] = out_ring

    @property
    def _max_span_bytes(self) -> int:
        return max(self._ring_slot_bytes, self._ring_slots * self._ring_slot_bytes // 4)

    # -- context management --------------------------------------------------
    def __enter__(self) -> "ProcessShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self.shards)

    @property
    def steered(self) -> List[int]:
        """Packets steered to each worker so far."""
        return list(self.nic.queue_packets)

    def worker_for(self, packet: Packet) -> int:
        """The worker the steering stage would select (without counting)."""
        return self.steering.worker_for(packet)

    # -- wire side -----------------------------------------------------------
    def inject(self, port_id: int, packet: Packet, timestamp: int) -> bool:
        """Steer a packet and buffer it for the next turn's batch.

        Mirrors the oracle's fault consultation exactly (same verdict
        order, same RNG draws) so fault-plan runs stay comparable. The
        return value reports wire-level acceptance; ring-full drops
        happen (and are counted) inside the owning worker, exactly where
        the oracle's per-worker ports count them.
        """
        plan = self.fault_plan
        if plan is not None and not plan.empty:
            target = self.steering.worker_for(packet)
            verdict, delay_us = plan.link_verdict(timestamp, target)
            if verdict == "drop":
                self.fault_wire_dropped += 1
                recorder = obs.recorder()
                if recorder.active:
                    recorder.trace(
                        flight.DROP,
                        t_us=timestamp,
                        worker=target,
                        reason=flight.REASON_LINK_FAULT,
                    )
                return False
            if verdict == "corrupt":
                packet = plan.corrupt_packet(packet)
                self.fault_wire_corrupted += 1
            if delay_us:
                timestamp += delay_us
        worker = self.nic.select(packet)
        recorder = obs.recorder()
        if recorder.active:
            recorder.trace(
                flight.STEER,
                t_us=timestamp,
                worker=worker,
                detail=f"port {port_id}",
            )
        self._pending[worker].append(
            (port_id, packet.device, timestamp, packet.wire_bytes())
        )
        if (
            plan is not None
            and not plan.empty
            and plan.reorder_fires(timestamp, worker)
        ):
            # Mirror Port.swap_tail on the not-yet-flushed batch: the
            # two newest same-port records trade payloads while their
            # timestamps stay with the slots, so arrival stamps remain
            # monotonic on the worker's ring.
            records = self._pending[worker]
            tail = [i for i, r in enumerate(records) if r[0] == port_id][-2:]
            if len(tail) == 2:
                a, b = tail
                pa, pb = records[a], records[b]
                records[a] = (pa[0], pb[1], pa[2], pb[3])
                records[b] = (pb[0], pa[1], pb[2], pa[3])
        return True

    def collect(self) -> List[Tuple[int, int, Packet]]:
        """All workers' transmissions, merged: (port, timestamp, packet)."""
        merged: List[Tuple[int, int, Packet]] = []
        for records in self._tx:
            for port_id, device, timestamp, wire in records:
                merged.append(
                    (port_id, timestamp, Packet.from_bytes(wire, device=device))
                )
            records.clear()
        merged.sort(key=lambda item: item[1])  # stable: worker order on ties
        return merged

    def collect_by_worker(self) -> List[List[Tuple[int, int, Packet]]]:
        """Per-worker transmissions since the last collect."""
        out: List[List[Tuple[int, int, Packet]]] = []
        for records in self._tx:
            out.append(
                [
                    (port_id, timestamp, Packet.from_bytes(wire, device=device))
                    for port_id, device, timestamp, wire in records
                ]
            )
            records.clear()
        return out

    def collect_raw_by_worker(self) -> List[List[Tuple[int, int, int, bytes]]]:
        """Per-worker TX records as raw frames: (port, device, ts, wire).

        The differential suite compares these against the oracle's
        re-serialized output — no parent-side parse/re-pack in between.
        """
        out = [list(records) for records in self._tx]
        for records in self._tx:
            records.clear()
        return out

    # -- the scatter/gather main loop ---------------------------------------
    def main_loop_burst(self, now_us: int, burst_size: int = 32) -> int:
        """One concurrent turn: scatter batches, workers run, gather ACKs.

        Semantically the oracle's round-robin turn, minus the serial
        execution: every live worker gets its buffered inject batch and
        a turn command, then all turn acknowledgements are gathered
        (with their TX frames — via the reply in pipe mode, via the out
        ring in shm mode). A fault-plan kill terminates the worker's OS
        process and surfaces as :class:`WorkerCrashed`; a hang skips
        the worker's turn with its batches still delivered (queues
        intact, like the oracle); clock skew biases the ``now`` that
        worker observes; pool seizures ride the turn command.

        Under ``supervise=True`` a crash is handled instead of raised:
        dead shards are respawned (fresh processes, fresh rings), the
        whole fleet restores the last coordinated checkpoint, and the
        turn reports 0 processed — traffic between the checkpoint and
        the crash is rolled back, exactly the replay window the
        checkpoint contract promises.
        """
        try:
            return self._main_loop_burst(now_us, burst_size)
        except WorkerCrashed:
            if not self.supervise or self._last_checkpoint_set is None:
                raise
            self._supervisor_recover()
            return 0

    def _main_loop_burst(self, now_us: int, burst_size: int) -> int:
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self._ensure_running()
        plan = self.fault_plan
        faults_on = plan is not None and not plan.empty
        shm = self.transport == TRANSPORT_SHM
        crashed: Optional[int] = None
        turned: List[Tuple[int, int]] = []  # (worker_id, seq)
        for worker_id, conn in enumerate(self._conns):
            if not self._alive[worker_id]:
                if self._pending[worker_id]:
                    self.fault_kill_lost += len(self._pending[worker_id])
                    self._pending[worker_id].clear()
                if crashed is None:
                    crashed = worker_id
                continue
            worker_now = now_us
            seizure = 0
            if faults_on:
                if plan.worker_killed(now_us, worker_id):
                    self._kill_worker(worker_id)
                    if crashed is None:
                        crashed = worker_id
                    continue
                if plan.worker_hung(now_us, worker_id):
                    self._flush_pending(worker_id)
                    continue
                seizure = plan.pool_seizure(now_us, worker_id)
                skew = plan.clock_skew_us(now_us, worker_id)
                if skew:
                    worker_now = max(0, now_us + skew)
            self._flush_pending(worker_id)
            if not self._alive[worker_id]:
                if crashed is None:
                    crashed = worker_id
                continue
            self._seq += 1
            seq = self._seq
            try:
                conn.send_bytes(
                    OP_TURN + _TURN.pack(seq, worker_now, burst_size, seizure)
                )
            except (BrokenPipeError, OSError):
                self._mark_dead(worker_id)
                if crashed is None:
                    crashed = worker_id
                continue
            turned.append((worker_id, seq))

        processed = 0
        for worker_id, seq in turned:
            reply = self._recv(worker_id, drain_tx=shm)
            if reply is None:
                if crashed is None:
                    crashed = worker_id
                continue
            acked_seq, count = _ACK.unpack_from(reply, 1)
            assert acked_seq == seq, f"out-of-order ack: {acked_seq} != {seq}"
            self._last_acked[worker_id] = acked_seq
            processed += count
            if shm:
                # The ACK is the fence: every TX span is visible now.
                self._drain_tx_ring(worker_id)
            elif len(reply) > 1 + _ACK.size:
                t0 = time.perf_counter_ns()
                records = unpack_records(reply, 1 + _ACK.size)
                self._stats.encode_ns += time.perf_counter_ns() - t0
                self._tx[worker_id].extend(records)
        if crashed is not None:
            raise WorkerCrashed(
                crashed,
                self._last_acked[crashed],
                reason=self._death_reason[crashed],
            )
        return processed

    # -- timed replay (the procs benchmark's inner loop) ---------------------
    def prepare_schedule(
        self, events, burst_size: int = 32
    ) -> List[Tuple[List[bytes], int]]:
        """Pre-steer and serialize a burst schedule for :meth:`pump`.

        All parent-side per-packet work (RSS steering, framing) happens
        here, untimed, so a timed :meth:`pump` measures only the
        scatter/gather transport traffic and the workers' concurrent
        data path — the part that actually scales with cores. Each
        entry is ``(per-worker inject blobs, now_us)`` for one turn;
        the packet's ``device`` doubles as the ingress port id,
        matching how the testbeds drive :meth:`inject`.
        """
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        bursts: List[Tuple[List[bytes], int]] = []
        pending: List[List[bytes]] = [[] for _ in range(self.workers)]
        count = 0
        now_us = 0
        for event in events:
            packet = event.packet
            now_us = event.time_ns // 1_000
            worker = self.steering.worker_for(packet)
            pending[worker].append(
                pack_record(
                    packet.device, packet.device, now_us, packet.wire_bytes()
                )
            )
            count += 1
            if count >= burst_size:
                bursts.append(
                    ([b"".join(blobs) for blobs in pending], now_us)
                )
                pending = [[] for _ in range(self.workers)]
                count = 0
        if count:
            bursts.append(([b"".join(blobs) for blobs in pending], now_us))
        # Two empty drain turns so residual ring occupancy is flushed.
        bursts.append(([b""] * self.workers, now_us + 1))
        bursts.append(([b""] * self.workers, now_us + 2))
        return bursts

    def pump(
        self, schedule: List[Tuple[List[bytes], int]], burst_size: int = 32
    ) -> int:
        """Drive one prepared schedule through the workers; count packets.

        The hot loop of the scaling benchmark: scatter each turn's
        pre-built inject blob plus a turn command to every worker, then
        gather the acknowledgements. TX output is discarded — read off
        the ACK reply unparsed (pipe) or drained from the out rings
        unparsed (shm); use :meth:`main_loop_burst` when outputs
        matter. Replaying the same schedule repeatedly is idempotent
        NAT-wise — flows already exist, so passes after the first
        measure the warmed steady state, mirroring
        ``_timed_burst_replay``.
        """
        self._ensure_running()
        shm = self.transport == TRANSPORT_SHM
        max_span = self._max_span_bytes
        processed = 0
        for sends, now_us in schedule:
            turned: List[Tuple[int, int]] = []
            for worker_id, blob in enumerate(sends):
                conn = self._conns[worker_id]
                self._seq += 1
                seq = self._seq
                try:
                    if blob:
                        if shm:
                            ring = self._inject_rings[worker_id]
                            for part in _split_blob(blob, max_span):
                                _push_with_backpressure(
                                    ring,
                                    part,
                                    self._stats,
                                    self.turn_timeout_s,
                                    on_wait=lambda: self._drain_tx_rings(
                                        discard=True
                                    ),
                                )
                        else:
                            t0 = time.perf_counter_ns()
                            conn.send_bytes(OP_INJECT + blob)
                            self._stats.copy_ns += time.perf_counter_ns() - t0
                    conn.send_bytes(
                        OP_TURN + _TURN.pack(seq, now_us, burst_size, 0)
                    )
                except (BrokenPipeError, OSError, TimeoutError):
                    self._mark_dead(worker_id)
                    raise WorkerCrashed(
                        worker_id,
                        self._last_acked[worker_id],
                        reason=self._death_reason[worker_id],
                    ) from None
                turned.append((worker_id, seq))
            for worker_id, seq in turned:
                reply = self._recv(worker_id, drain_tx=shm, discard_tx=True)
                if reply is None:
                    raise WorkerCrashed(
                        worker_id,
                        self._last_acked[worker_id],
                        reason=self._death_reason[worker_id],
                    )
                acked_seq, count = _ACK.unpack_from(reply, 1)
                self._last_acked[worker_id] = acked_seq
                processed += count
                if shm:
                    self._drain_tx_ring(worker_id, discard=True)
        return processed

    def _flush_pending(self, worker_id: int) -> None:
        pending = self._pending[worker_id]
        if not pending:
            return
        t0 = time.perf_counter_ns()
        frames = [pack_record(*record) for record in pending]
        self._stats.encode_ns += time.perf_counter_ns() - t0
        pending.clear()
        if self.transport == TRANSPORT_SHM:
            ring = self._inject_rings[worker_id]
            try:
                for chunk in _chunk_frames(frames, self._max_span_bytes):
                    _push_with_backpressure(
                        ring,
                        chunk,
                        self._stats,
                        self.turn_timeout_s,
                        on_wait=self._drain_tx_rings,
                    )
            except TimeoutError:
                self._mark_dead(worker_id, "inject ring full; worker not draining")
        else:
            t0 = time.perf_counter_ns()
            blob = OP_INJECT + b"".join(frames)
            try:
                self._conns[worker_id].send_bytes(blob)
            except (BrokenPipeError, OSError):
                self._mark_dead(worker_id)
            self._stats.copy_ns += time.perf_counter_ns() - t0

    def _drain_tx_ring(self, worker_id: int, discard: bool = False) -> None:
        """Pop every visible TX span from one worker's out ring."""
        ring = self._out_rings[worker_id]
        if ring is None:
            return
        while True:
            t0 = time.perf_counter_ns()
            blob = ring.pop_burst_bytes()
            t1 = time.perf_counter_ns()
            if blob is None:
                return
            self._stats.copy_ns += t1 - t0
            if discard:
                continue
            records = unpack_records(blob)
            self._stats.encode_ns += time.perf_counter_ns() - t1
            self._tx[worker_id].extend(records)

    def _drain_tx_rings(self, discard: bool = False) -> None:
        """Drain every live worker's out ring (the anti-deadlock sweep:
        run whenever the parent blocks, so a worker stuck pushing TX
        always gets slots back)."""
        for worker_id in range(self.workers):
            if self._alive[worker_id]:
                self._drain_tx_ring(worker_id, discard=discard)

    def _recv(
        self, worker_id: int, *, drain_tx: bool = False, discard_tx: bool = False
    ) -> Optional[bytes]:
        """One reply from a worker, or ``None`` after marking it dead.

        A worker-side exception reply re-raises here; a dead pipe, a
        dead process or a timeout degrade to ``None`` so the caller can
        raise :class:`WorkerCrashed` with full context. With
        ``drain_tx`` the wait loop drains TX rings between polls — the
        other half of the backpressure contract (a worker blocked on a
        full out ring can only finish its turn if the parent keeps
        consuming while it waits for the ACK).
        """
        conn = self._conns[worker_id]
        try:
            if drain_tx:
                deadline = time.monotonic() + self.turn_timeout_s
                while not conn.poll(_WORKER_POLL_S):
                    self._drain_tx_rings(discard=discard_tx)
                    if time.monotonic() > deadline:
                        self._mark_dead(worker_id)
                        return None
            elif not conn.poll(self.turn_timeout_s):
                self._mark_dead(worker_id)
                return None
            t0 = time.perf_counter_ns()
            reply = conn.recv_bytes()
            self._stats.copy_ns += time.perf_counter_ns() - t0
        except (EOFError, OSError):
            self._mark_dead(worker_id)
            return None
        if reply[:1] == RE_ERROR:
            detail = json.loads(reply[1:].decode("utf-8"))
            from repro.resil.checkpoint import CheckpointError

            kind = detail.get("type", "RuntimeError")
            message = f"worker {worker_id}: {detail.get('message', '')}"
            if kind == "CheckpointError":
                raise CheckpointError(message)
            raise RuntimeError(f"[{kind}] {message}")
        return reply

    def _kill_worker(self, worker_id: int) -> None:
        """A fault-plan kill is a real kill: SIGKILL the shard process."""
        proc = self._procs[worker_id]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=self.turn_timeout_s)
        self.fault_kill_lost += len(self._pending[worker_id])
        self._pending[worker_id].clear()
        self._mark_dead(worker_id, "killed by fault plan")

    def _mark_dead(self, worker_id: int, reason: str = "worker process died") -> None:
        self._alive[worker_id] = False
        if not self._death_reason[worker_id]:
            self._death_reason[worker_id] = reason

    def _ensure_running(self) -> None:
        if self._stopped:
            raise RuntimeError("runtime is stopped")

    # -- supervision ---------------------------------------------------------
    def _supervisor_recover(self) -> None:
        """Respawn every dead shard and roll the fleet back to the last
        coordinated checkpoint.

        Fresh process, fresh rings (a SIGKILLed worker can leave a ring
        in any state — mid-span writes are invisible thanks to the
        head/tail protocol, but reusing the segment would complicate
        the proof for nothing); the replaced segments are unlinked
        immediately. The surviving workers restore too: the fleet
        converges on one consistent cut, the same contract
        ``restore_all`` gives the deterministic mode.
        """
        for worker_id in range(self.workers):
            if self._alive[worker_id]:
                continue
            proc = self._procs[worker_id]
            if proc is not None:
                if proc.is_alive() and proc.pid is not None:
                    os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=self.turn_timeout_s)
            conn = self._conns[worker_id]
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            for ring in (self._inject_rings[worker_id], self._out_rings[worker_id]):
                if ring is not None:
                    ring.unlink()
                    self._all_rings.remove(ring)
            self._pending[worker_id].clear()
            self._tx[worker_id].clear()
            self._spawn_worker(worker_id)
            self._alive[worker_id] = True
            self._death_reason[worker_id] = ""
            if self.fault_plan is not None:
                # Same move the failover controller makes at promotion:
                # the slot is running a fresh process now, so an
                # open-ended kill window must not re-fire on it.
                self.fault_plan.clear(kind="worker-kill", worker=worker_id)
        self.restore(self._last_checkpoint_set)
        self.supervisor_restarts += 1

    def _request(self, worker_id: int, message: bytes, expect: bytes) -> bytes:
        if not self._alive[worker_id]:
            raise WorkerCrashed(worker_id, self._last_acked[worker_id])
        try:
            self._conns[worker_id].send_bytes(message)
        except (BrokenPipeError, OSError):
            self._mark_dead(worker_id)
            raise WorkerCrashed(worker_id, self._last_acked[worker_id]) from None
        reply = self._recv(worker_id)
        if reply is None:
            raise WorkerCrashed(worker_id, self._last_acked[worker_id])
        assert reply[:1] == expect, f"unexpected reply {reply[:1]!r}"
        return reply

    # -- counters ------------------------------------------------------------
    def _counters(self, worker_id: int) -> Dict:
        reply = self._request(worker_id, OP_COUNTERS, RE_COUNTERS)
        return json.loads(reply[1:].decode("utf-8"))

    def per_worker_counters(self) -> List[Dict[str, int]]:
        """Each worker's NF operation counters, in worker order."""
        return [self._counters(w)["op_counters"] for w in range(self.workers)]

    def op_counters(self) -> Dict[str, int]:
        """NF operation counters aggregated (summed) across workers."""
        aggregate: Dict[str, int] = {}
        for counters in self.per_worker_counters():
            for key, value in counters.items():
                aggregate[key] = aggregate.get(key, 0) + value
        return aggregate

    def drop_causes(self) -> Dict[str, int]:
        """Drop/near-drop causes aggregated across workers, oracle-style."""
        aggregate: Dict[str, int] = {}
        for worker_id in range(self.workers):
            for key, value in self._counters(worker_id)["drop_causes"].items():
                if key == "pool_high_water":
                    aggregate[key] = max(aggregate.get(key, 0), value)
                else:
                    aggregate[key] = aggregate.get(key, 0) + value
        if self.fault_plan is not None:
            aggregate["fault_wire_dropped"] = self.fault_wire_dropped
            aggregate["fault_wire_corrupted"] = self.fault_wire_corrupted
            aggregate["fault_kill_lost"] = self.fault_kill_lost
        return aggregate

    def flow_count(self) -> int:
        """Live translation entries across all workers."""
        return sum(
            self._counters(w)["flow_count"] for w in range(self.workers)
        )

    def transport_counters(self) -> Dict[str, Dict[str, int]]:
        """The ablation instruments, both halves: parent, per-worker, sum.

        ``total`` is what the sweeps embed: end-to-end nanoseconds the
        transport spent framing (``encode_ns``), moving bytes
        (``copy_ns``) and blocked on backpressure (``ring_wait_ns``)
        across the parent and every worker.
        """
        per_worker = [
            dict(self._counters(w).get("transport_ns", {}))
            for w in range(self.workers)
        ]
        total = dict(self._stats.as_dict())
        for stats in per_worker:
            for key, value in stats.items():
                total[key] = total.get(key, 0) + value
        return {
            "parent": self._stats.as_dict(),
            "workers": per_worker,
            "total": total,
        }

    # -- observability -------------------------------------------------------
    def snapshot_metrics(self) -> Dict:
        """One merged snapshot: NIC steering + every worker's world.

        Each worker collects its own registry with a ``worker`` label
        stamped *at the source* (see :func:`repro.obs.registry.with_labels`
        for why), so :func:`~repro.obs.registry.merge_snapshots` keeps
        distinct workers' gauges apart instead of summing them. The
        parent's transport half and the supervisor restart count ride
        under ``worker="parent"``.
        """
        parent = MetricsRegistry()
        self.nic.register_metrics(parent)
        labels = {"worker": "parent", "transport": self.transport}
        self._stats.register_metrics(parent, labels)
        parent.counter_fn(
            "proc_supervisor_restarts_total",
            lambda: self.supervisor_restarts,
            "worker fleets respawned and restored by the supervisor",
            labels,
        )
        snapshots = [parent.snapshot()]
        for worker_id in range(self.workers):
            reply = self._request(worker_id, OP_SNAPSHOT, RE_SNAPSHOT)
            snapshots.append(json.loads(reply[1:].decode("utf-8")))
        return merge_snapshots(snapshots)

    def metrics_snapshot(self) -> Dict:
        """Alias matching :class:`~repro.net.dpdk.ShardedRuntime`."""
        return self.snapshot_metrics()

    # -- coordinated checkpoint ----------------------------------------------
    def checkpoint(self, now_us: int = 0):
        """Fence every worker and bind their frames into one manifest.

        The pipe is FIFO, so a worker's checkpoint reply proves every
        burst the parent sent before the fence has fully executed —
        that reply *is* the fence, and it covers the shm rings too:
        a worker drains its inject ring before acking each prior turn,
        and the parent drained the out ring at each ACK. After a
        completed turn RX rings are drained, making any inter-turn
        point a consistent cut.
        """
        from repro.resil.checkpoint import Checkpoint, CheckpointSet

        frames = []
        for worker_id in range(self.workers):
            reply = self._request(
                worker_id, OP_CHECKPOINT + _CKPT.pack(now_us), RE_CHECKPOINT
            )
            frames.append(Checkpoint.from_bytes(reply[1:]))
        checkpoint_set = CheckpointSet(
            taken_at_us=now_us, checkpoints=tuple(frames)
        )
        if self.supervise:
            self._last_checkpoint_set = checkpoint_set
        return checkpoint_set

    def restore(self, checkpoint_set) -> None:
        """Adopt a coordinated checkpoint, one frame per worker, in order."""
        from repro.resil.checkpoint import CheckpointError

        if checkpoint_set.workers != self.workers:
            raise CheckpointError(
                f"checkpoint set holds {checkpoint_set.workers} shard(s), "
                f"runtime has {self.workers}"
            )
        for worker_id, ckpt in enumerate(checkpoint_set.checkpoints):
            self._request(worker_id, OP_RESTORE + ckpt.to_bytes(), RE_RESTORED)
        if self.supervise:
            self._last_checkpoint_set = checkpoint_set

    # -- shutdown ------------------------------------------------------------
    def stop(self, timeout_s: float = 5.0) -> None:
        """Clean shutdown: stop command, join with timeout, then the axe.

        Idempotent; safe after a crash (dead workers are skipped). Any
        worker that does not exit within ``timeout_s`` is terminated.
        Ring segments are unlinked last (after every mapping holder is
        gone), via the same finalizer that covers the unclean paths.
        """
        if self._stopped:
            return
        self._stopped = True
        for worker_id, conn in enumerate(self._conns):
            if not self._alive[worker_id]:
                continue
            try:
                conn.send_bytes(OP_STOP)
            except (BrokenPipeError, OSError):
                continue
        for worker_id, (conn, proc) in enumerate(zip(self._conns, self._procs)):
            if self._alive[worker_id]:
                try:
                    if conn.poll(timeout_s):
                        conn.recv_bytes()  # the goodbye
                except (EOFError, OSError):
                    pass
            proc.join(timeout=timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout_s)
            conn.close()
            self._alive[worker_id] = False
        self._ring_finalizer()


__all__ = [
    "OP_CHECKPOINT",
    "OP_COUNTERS",
    "OP_INJECT",
    "OP_RESTORE",
    "OP_SNAPSHOT",
    "OP_STOP",
    "OP_TURN",
    "ProcessShardedRuntime",
    "TRANSPORT_PIPE",
    "TRANSPORT_SHM",
    "TRANSPORTS",
    "TransportStats",
    "WorkerCrashed",
    "pack_record",
    "unpack_records",
]
