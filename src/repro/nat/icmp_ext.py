"""ICMP-aware NAT: RFC 3022 §4.3 error translation, as a wrapper.

The paper's VigNAT translates TCP/UDP only; RFC 3022 additionally
requires NATs to translate ICMP messages: *error* messages whose payload
embeds the offending packet (which bears the NAT's external address on
the outside), and *query* messages (echo) using the ICMP identifier the
way ports are used for TCP/UDP.

``IcmpAwareNat`` adds both around any inner VigNat without touching its
verified logic: TCP/UDP goes straight through, ICMP is handled here.
This module is a tested **extension** — its translation logic is outside
the verified core, exactly the situation §7 warns about, which is why
its tests are dense.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.flow import FlowId
from repro.nat.vignat import VigNat
from repro.packets.headers import PROTO_ICMP, Packet
from repro.packets.icmp import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST, IcmpMessage


class IcmpAwareNat(NetworkFunction):
    """VigNat plus ICMP error and echo translation."""

    name = "icmp-aware-nat"

    def __init__(self, config: NatConfig | None = None, **legacy: int) -> None:
        self.config = NatConfig.resolve(config, owner=type(self).__name__, **legacy)
        self.inner = VigNat(self.config)
        # Echo sessions: identifier-keyed, like port mappings (RFC 3022
        # calls this the "ICMP query identifier" mapping).
        self._echo_out: Dict[Tuple[int, int], int] = {}  # (int_ip, id) -> ext id
        self._echo_in: Dict[int, Tuple[int, int]] = {}  # ext id -> (int_ip, id)
        self._next_echo_id = 1
        self._dropped_total = 0
        self._forwarded_total = 0

    def flow_count(self) -> int:
        return self.inner.flow_count()

    def op_counters(self) -> Dict[str, int]:
        counters = dict(self.inner.op_counters())
        counters["icmp_forwarded"] = self._forwarded_total
        counters["icmp_dropped"] = self._dropped_total
        return counters

    # -- dispatch -----------------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        if (
            packet.ipv4 is not None
            and packet.ipv4.protocol == PROTO_ICMP
            and packet.l4 is None
        ):
            return self._process_icmp(packet, now)
        return self.inner.process(packet, now)

    def _process_icmp(self, packet: Packet, now: int) -> List[Packet]:
        try:
            message = IcmpMessage.unpack(packet.payload)
        except Exception:
            self._dropped_total += 1
            return []
        if message.is_error():
            return self._translate_error(packet, message, now)
        if message.icmp_type in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
            return self._translate_echo(packet, message, now)
        self._dropped_total += 1
        return []

    # -- §4.3: error messages -------------------------------------------------
    def _translate_error(
        self, packet: Packet, message: IcmpMessage, now: int
    ) -> List[Packet]:
        embedded = message.embedded()
        if embedded is None:
            self._dropped_total += 1
            return []
        inner_ip, inner_sport, inner_dport, trailing = embedded

        if packet.device == self.config.external_device:
            # Error from outside about a packet our NAT emitted: the
            # embedded packet's SOURCE is (EXT_IP, ext_port); map it
            # back to the internal endpoint.
            if inner_ip.src_ip != self.config.external_ip:
                self._dropped_total += 1
                return []
            external_fid = FlowId(
                src_ip=inner_ip.dst_ip,
                src_port=inner_dport,
                dst_ip=self.config.external_ip,
                dst_port=inner_sport,
                protocol=inner_ip.protocol,
            )
            flow = self._flow_by_external(external_fid)
            if flow is None:
                self._dropped_total += 1
                return []
            out = packet.clone()
            assert out.ipv4 is not None
            # Outer: deliver to the internal host.
            out.ipv4.dst_ip = flow.internal_id.src_ip
            # Embedded: restore the internal source endpoint.
            inner_ip.src_ip = flow.internal_id.src_ip
            message.replace_embedded(
                inner_ip, flow.internal_id.src_port, inner_dport, trailing
            )
            out.payload = message.pack(fill_checksum=True)
            out.ipv4.total_length = 20 + len(out.payload)
            out.device = self.config.internal_device
            out.to_bytes()  # refresh the outer IPv4 checksum
            self._forwarded_total += 1
            return [out]

        if packet.device == self.config.internal_device:
            # Error from an internal host about an inbound packet: the
            # embedded packet's DESTINATION is the internal endpoint;
            # rewrite it (and the outer source) to the external face.
            internal_fid = FlowId(
                src_ip=inner_ip.dst_ip,
                src_port=inner_dport,
                dst_ip=inner_ip.src_ip,
                dst_port=inner_sport,
                protocol=inner_ip.protocol,
            )
            ext_port = self.inner.external_port_of(internal_fid)
            if ext_port is None:
                self._dropped_total += 1
                return []
            out = packet.clone()
            assert out.ipv4 is not None
            out.ipv4.src_ip = self.config.external_ip
            inner_ip.dst_ip = self.config.external_ip
            message.replace_embedded(inner_ip, inner_sport, ext_port, trailing)
            out.payload = message.pack(fill_checksum=True)
            out.ipv4.total_length = 20 + len(out.payload)
            out.device = self.config.external_device
            out.to_bytes()
            self._forwarded_total += 1
            return [out]

        self._dropped_total += 1
        return []

    def _flow_by_external(self, external_fid: FlowId):
        index = self.inner._flow_table.get_by_b(external_fid)
        if index is None:
            return None
        return self.inner._flow_table.get_value(index)

    # -- §4.1/§4.2: echo (query) messages ---------------------------------------
    def _translate_echo(
        self, packet: Packet, message: IcmpMessage, now: int
    ) -> List[Packet]:
        identifier = (message.rest >> 16) & 0xFFFF
        sequence = message.rest & 0xFFFF

        if (
            packet.device == self.config.internal_device
            and message.icmp_type == ICMP_ECHO_REQUEST
        ):
            assert packet.ipv4 is not None
            key = (packet.ipv4.src_ip, identifier)
            ext_id = self._echo_out.get(key)
            if ext_id is None:
                ext_id = self._next_echo_id
                self._next_echo_id = (self._next_echo_id % 0xFFFF) + 1
                self._echo_out[key] = ext_id
                self._echo_in[ext_id] = key
            out = packet.clone()
            assert out.ipv4 is not None
            out.ipv4.src_ip = self.config.external_ip
            message.rest = (ext_id << 16) | sequence
            out.payload = message.pack(fill_checksum=True)
            out.device = self.config.external_device
            out.to_bytes()
            self._forwarded_total += 1
            return [out]

        if (
            packet.device == self.config.external_device
            and message.icmp_type == ICMP_ECHO_REPLY
        ):
            target = self._echo_in.get(identifier)
            if target is None:
                self._dropped_total += 1
                return []
            internal_ip, internal_id = target
            out = packet.clone()
            assert out.ipv4 is not None
            out.ipv4.dst_ip = internal_ip
            message.rest = (internal_id << 16) | sequence
            out.payload = message.pack(fill_checksum=True)
            out.device = self.config.internal_device
            out.to_bytes()
            self._forwarded_total += 1
            return [out]

        self._dropped_total += 1
        return []
