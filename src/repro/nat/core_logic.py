"""The stateless NAT logic, written once, runnable two ways.

This module is the reproduction's load-bearing trick, the same one the
paper's architecture rests on: the *stateless* packet-processing code is
a single function, ``nat_loop_iteration``, parameterized by an
environment that provides packet I/O and the flow-table operations.

- :class:`repro.nat.vignat.VigNat` runs it against the real libVig
  structures — that is the NAT that forwards traffic.
- :mod:`repro.verif.nf_env` runs the *identical function* against
  symbolic models — that is the code exhaustive symbolic execution
  explores, so the verification result applies to the deployed logic,
  not to a transcription of it.

Every ``if`` in this function either compares concrete Python values
(concrete run) or :class:`~repro.verif.symbols.SymBool` values (symbolic
run, where it forks the path). The checks are sequenced the way the C
code sequences them (ethertype, then protocol, then device) so the path
structure matches an NF written in C against DPDK.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple

from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP


class PacketView(Protocol):
    """Field access on the received packet (concrete ints or symbols)."""

    ethertype: Any
    protocol: Any
    device: Any
    src_ip: Any
    src_port: Any
    dst_ip: Any
    dst_port: Any


class NatEnv(Protocol):
    """The libVig + DPDK interface the stateless code is written against."""

    def current_time(self) -> Any: ...

    def expire_flows(self, min_time: Any) -> None: ...

    def receive(self) -> Optional[PacketView]: ...

    def flow_table_get_internal(self, packet: PacketView) -> Optional[Any]: ...

    def flow_table_get_external(self, packet: PacketView) -> Optional[Any]: ...

    def flow_table_create(self, packet: PacketView, now: Any) -> Optional[Any]: ...

    def flow_table_rejuvenate(self, index: Any, now: Any) -> None: ...

    def flow_external_port(self, index: Any) -> Any: ...

    def flow_internal_endpoint(self, index: Any) -> Tuple[Any, Any]: ...

    def emit(
        self,
        packet: PacketView,
        device: Any,
        src_ip: Any,
        src_port: Any,
        dst_ip: Any,
        dst_port: Any,
    ) -> None: ...

    def drop(self, packet: PacketView) -> None: ...


def nat_loop_iteration(env: NatEnv, config: Any) -> None:
    """One iteration of the NAT's event loop (Fig. 6, executable).

    ``config`` carries the static parameters (`internal_device`,
    `external_device`, `external_ip`, `expiration_time`); it is a
    :class:`~repro.nat.config.NatConfig` in both runs.
    """
    now = env.current_time()

    # expire_flows(t): remove flows with timestamp + Texp <= t. The
    # threshold is clamped so the subtraction cannot underflow an
    # unsigned time — one of the low-level properties P2 proves.
    if now >= config.expiration_time:
        min_time = now - config.expiration_time + 1
    else:
        min_time = 0
    env.expire_flows(min_time)

    packet = env.receive()
    if packet is None:
        return

    # Only IPv4 TCP/UDP carries a flow ID a traditional NAT translates;
    # the checks mirror the C code's header-parsing sequence.
    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return
    if (packet.protocol == PROTO_TCP) | (packet.protocol == PROTO_UDP):
        pass
    else:
        env.drop(packet)
        return

    if packet.device == config.internal_device:
        index = env.flow_table_get_internal(packet)
        if index is None:
            # No entry: insert one if the table has room (Fig. 6 l.15);
            # never evict a live flow to make room.
            index = env.flow_table_create(packet, now)
            if index is None:
                env.drop(packet)
                return
        else:
            env.flow_table_rejuvenate(index, now)
        external_port = env.flow_external_port(index)
        env.emit(
            packet,
            device=config.external_device,
            src_ip=config.external_ip,
            src_port=external_port,
            dst_ip=packet.dst_ip,
            dst_port=packet.dst_port,
        )
    elif packet.device == config.external_device:
        index = env.flow_table_get_external(packet)
        if index is None:
            # Unsolicited external packet: drop, never create state.
            env.drop(packet)
            return
        env.flow_table_rejuvenate(index, now)
        internal_ip, internal_port = env.flow_internal_endpoint(index)
        env.emit(
            packet,
            device=config.internal_device,
            src_ip=packet.src_ip,
            src_port=packet.src_port,
            dst_ip=internal_ip,
            dst_port=internal_port,
        )
    else:
        env.drop(packet)
