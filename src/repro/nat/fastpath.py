"""The microflow fast path: an action cache over a slow-path NF.

An OVS-style microflow cache keyed on (device, proto, 5-tuple). The
first packet of a flow takes the slow path — for VigNat that is the
*verified* ``nat_loop_iteration`` — and the fast path memoizes the
**action** the slow path took: which endpoint fields it rewrote, to
what, and out of which device. Every later packet of the flow replays
that action without touching the flow table.

The cache is strictly an equivalence-preserving memoization; three
mechanisms enforce it:

- **Self-verifying learn.** A candidate action is applied to a clone of
  the triggering packet and cached only if the result is byte-identical
  (``wire_bytes``) to what the slow path actually emitted. A wrong
  action is never cached in the first place.
- **Generation invalidation.** The wrapped NF bumps a generation
  counter whenever its flow state changes shape (flow created, expired
  or evicted). Cached actions remember the generation they were learned
  at and are discarded on mismatch, so a stale entry can never fire.
- **Narrow eligibility.** Only non-fragment IPv4 TCP/UDP packets are
  cacheable; fragments, ICMP (errors included) and anything else falls
  through to the slow path unconditionally.

Verification still targets the slow path: the fast path adds no state
the symbolic engine must model, and the proof report is unchanged.

Each NF that opts in exposes ``fastpath_hooks()`` returning an object
with: ``supports_raw`` (bool), ``begin_burst(now) -> now`` (clamp the
clock and run the per-burst expiry scan), ``generation() -> int``,
``learn_token(packet) -> token | None`` (NF state handle used to keep
the flow alive), ``rejuvenate(token, now)``, and
``apply(packet, action) -> Packet`` (the NF's own rewrite code, so NF
quirks — including deliberate ones — are reproduced exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.nat.base import NetworkFunction
from repro.nat.compiled import CompiledAction, compile_action, raw_flow_key
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.obs import flight
from repro.obs.registry import MetricsRegistry
from repro.packets.checksum import (
    checksum_apply_delta,
    checksum_delta_u16,
    checksum_delta_u32,
)
from repro.packets.headers import (
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    ParseError,
)
from repro.packets.lazy import (
    OFF_DST_IP,
    OFF_DST_PORT,
    OFF_SRC_IP,
    OFF_SRC_PORT,
    OFF_UDP_CSUM,
    LazyPacket,
)

#: A microflow key: (device, proto, src_ip, src_port, dst_ip, dst_port).
FlowKey = Tuple[int, int, int, int, int, int]

#: The fast-path modes a runtime spec can name.
FASTPATH_MODES = ("off", "cache", "compiled")


def normalize_fastpath(value) -> str:
    """Coerce a spec's ``fastpath`` value to one of :data:`FASTPATH_MODES`.

    Booleans are the historical spelling: ``True`` is the replay cache,
    ``False`` is off. Strings must name a mode exactly.
    """
    if value is True:
        return "cache"
    if value is False:
        return "off"
    if value in FASTPATH_MODES:
        return value
    raise ValueError(
        f"fastpath must be a bool or one of {FASTPATH_MODES}, got {value!r}"
    )


@dataclass(slots=True)
class CachedAction:
    """What the slow path did to one microflow's packets.

    ``src``/``dst`` are the (ip, port) endpoint targets the slow path
    rewrote to (None = that endpoint untouched), exactly the arguments
    its own rewrite helpers receive. ``raw_ops`` is the byte-level
    replay of the same rewrites for the zero-copy path: field writes
    plus precomputed RFC 1624 checksum deltas.
    """

    src: Optional[Tuple[int, int]]
    dst: Optional[Tuple[int, int]]
    out_device: int
    token: Any
    generation: int
    raw_ops: Optional[Tuple[tuple, ...]] = None


def apply_endpoint_action(packet: Packet, action: CachedAction) -> Packet:
    """Replay a cached action the way ``_ConcreteEnv.emit`` rewrites.

    Clone, rewrite whichever endpoints the slow path rewrote (with the
    same shared helpers, so UDP zero-checksum semantics match), set the
    output device. This is the ``apply`` hook for every NF whose slow
    path emits via :func:`~repro.nat.rewrite.rewrite_source` /
    :func:`~repro.nat.rewrite.rewrite_destination`.
    """
    out = packet.clone()
    if action.src is not None:
        rewrite_source(out, *action.src)
    if action.dst is not None:
        rewrite_destination(out, *action.dst)
    out.device = action.out_device
    return out


def _raw_ops_from(
    old_src: Tuple[int, int],
    old_dst: Tuple[int, int],
    action: CachedAction,
) -> Tuple[tuple, ...]:
    """Compile a cached action into byte-level replay ops.

    The op sequence mirrors the slow path's rewrite call structure
    *exactly* — one ``("l4", deltas)`` op per ``_patch_l4_for_*`` call,
    each with its own UDP-zero check, deltas applied in the same word
    order — so the patched checksum is bit-identical to the slow path's
    for any starting checksum, not merely equivalent.

    The pre-rewrite endpoint values come from the caller: the
    triggering packet on a learn, the flow key on a cache warm — both
    name the same (ip, port) pairs, since the key *is* the packet's
    endpoints.
    """
    ops: List[tuple] = []
    if action.src is not None:
        new_ip, new_port = action.src
        old_ip, old_port = old_src
        ops.append(("w32", OFF_SRC_IP, new_ip))
        ops.append(("w16", OFF_SRC_PORT, new_port))
        ops.append(("ip", checksum_delta_u32(old_ip, new_ip)))
        ops.append(("l4", checksum_delta_u32(old_ip, new_ip)))
        ops.append(("l4", (checksum_delta_u16(old_port, new_port),)))
    if action.dst is not None:
        new_ip, new_port = action.dst
        old_ip, old_port = old_dst
        ops.append(("w32", OFF_DST_IP, new_ip))
        ops.append(("w16", OFF_DST_PORT, new_port))
        ops.append(("ip", checksum_delta_u32(old_ip, new_ip)))
        ops.append(("l4", checksum_delta_u32(old_ip, new_ip)))
        ops.append(("l4", (checksum_delta_u16(old_port, new_port),)))
    return tuple(ops)


def _raw_ops_for(packet: Packet, action: CachedAction) -> Tuple[tuple, ...]:
    """Compile replay ops with the old values read off the packet."""
    assert packet.ipv4 is not None and packet.l4 is not None
    return _raw_ops_from(
        (packet.ipv4.src_ip, packet.l4.src_port),
        (packet.ipv4.dst_ip, packet.l4.dst_port),
        action,
    )


def _apply_raw(view: LazyPacket, ops: Tuple[tuple, ...]) -> None:
    """Replay compiled ops onto the frame bytes in place."""
    for op in ops:
        kind = op[0]
        if kind == "w32":
            view.write_u32(op[1], op[2])
        elif kind == "w16":
            view.write_u16(op[1], op[2])
        elif kind == "ip":
            for delta in op[1]:
                view.patch_ip_checksum(delta)
        else:  # "l4": one slow-path patch call — zero-checked once
            offset = view.l4_checksum_offset()
            checksum = view.read_u16(offset)
            if checksum == 0 and offset == OFF_UDP_CSUM:
                continue
            for delta in op[1]:
                checksum = checksum_apply_delta(checksum, delta)
            view.write_u16(offset, checksum)


def packet_flow_key(packet: Packet) -> Optional[FlowKey]:
    """The microflow key of a parsed packet, or None when ineligible.

    Ineligible (→ slow path): non-IPv4, no TCP/UDP header, fragments
    (MF set or nonzero offset — their L4 header may be absent or belong
    to another fragment).
    """
    ipv4 = packet.ipv4
    l4 = packet.l4
    if packet.eth.ethertype != ETHERTYPE_IPV4 or ipv4 is None or l4 is None:
        return None
    if (ipv4.flags & 0x1) or ipv4.fragment_offset:
        return None
    proto = ipv4.protocol
    if proto != PROTO_TCP and proto != PROTO_UDP:
        return None
    return (
        packet.device,
        proto,
        ipv4.src_ip,
        l4.src_port,
        ipv4.dst_ip,
        l4.dst_port,
    )


class FastPathNat(NetworkFunction):
    """Wrap a slow-path NF with the microflow action cache.

    The wrapper reports the inner NF's ``name`` so experiment tables and
    the cost model treat it as the same NF (with extra counters); the
    inner NF stays reachable as ``.inner`` for introspection.
    """

    def __init__(
        self,
        inner: NetworkFunction,
        max_entries: int = 65_536,
        mode: str = "cache",
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if mode not in ("cache", "compiled"):
            raise ValueError(
                f'mode must be "cache" or "compiled", got {mode!r}'
            )
        hooks = inner.fastpath_hooks()
        if hooks is None:
            raise TypeError(
                f"{type(inner).__name__} does not provide fast-path hooks"
            )
        self.inner = inner
        self.name = inner.name
        self.max_entries = max_entries
        self.mode = mode
        self._hooks = hooks
        self._cache: Dict[FlowKey, CachedAction] = {}
        # Compiled closures are a second, narrower store over the same
        # keys (compiled ⊆ cached): an entry exists only when the NF
        # supports the raw path, the mode asks for compilation, and the
        # closure's output byte-matched the slow path at learn time.
        # Every invalidation/eviction of a cached action must drop the
        # compiled twin as well — a stale closure must never fire.
        self._compiled: Dict[FlowKey, CompiledAction] = {}
        # The cache counters are registry-backed typed instruments
        # (``repro.obs``): the same objects serve the NF's op_counters()
        # surface, the merged metrics snapshots and the Prometheus
        # exposition, instead of ad-hoc ints re-aggregated per consumer.
        metrics = MetricsRegistry()
        cache_labels = {"nf": self.name}
        self._hits = metrics.counter(
            "fastpath_hits_total", "packets replayed from the action cache", cache_labels
        )
        self._misses = metrics.counter(
            "fastpath_misses_total", "packets that took the slow path", cache_labels
        )
        self._invalidations = metrics.counter(
            "fastpath_invalidations_total",
            "cached actions discarded on generation mismatch",
            cache_labels,
        )
        self._evictions = metrics.counter(
            "fastpath_evictions_total",
            "cached actions evicted by the FIFO capacity cap",
            cache_labels,
        )
        self._learns = metrics.counter(
            "fastpath_learns_total", "actions admitted after replay verification", cache_labels
        )
        self._learn_rejected = metrics.counter(
            "fastpath_learn_rejected_total",
            "candidate actions whose replay diverged from the slow path",
            cache_labels,
        )
        self._warmed = metrics.counter(
            "fastpath_warmed_total",
            "actions pre-installed from restored flow state",
            cache_labels,
        )
        self._compiles = metrics.counter(
            "fastpath_compiles_total",
            "flow rewrites compiled into specialized closures",
            cache_labels,
        )
        self._compile_rejected = metrics.counter(
            "fastpath_compile_rejected_total",
            "compiled closures whose output diverged from the slow path",
            cache_labels,
        )
        self._compiled_hits = metrics.counter(
            "fastpath_compiled_hits_total",
            "packets rewritten by a compiled closure",
            cache_labels,
        )
        self._compiled_batches = metrics.counter(
            "fastpath_compiled_batches_total",
            "same-flow runs batch-applied through a compiled closure",
            cache_labels,
        )
        metrics.gauge_fn(
            "fastpath_cache_entries",
            lambda: len(self._cache),
            "actions currently cached",
            cache_labels,
        )
        metrics.gauge_fn(
            "fastpath_compiled_entries",
            lambda: len(self._compiled),
            "compiled closures currently installed",
            cache_labels,
        )
        self.metrics = metrics

    # -- introspection ------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def compiled_size(self) -> int:
        return len(self._compiled)

    def op_counters(self) -> Dict[str, int]:
        counters = dict(self.inner.op_counters())
        counters.update(self.burst_counters())
        counters.update(
            fastpath_hits=self._hits.value,
            fastpath_misses=self._misses.value,
            fastpath_invalidations=self._invalidations.value,
            fastpath_evictions=self._evictions.value,
            fastpath_learns=self._learns.value,
            fastpath_learn_rejected=self._learn_rejected.value,
            fastpath_warmed=self._warmed.value,
            fastpath_compiles=self._compiles.value,
            fastpath_compile_rejected=self._compile_rejected.value,
            fastpath_compiled_hits=self._compiled_hits.value,
            fastpath_compiled_batches=self._compiled_batches.value,
        )
        return counters

    def hit_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    def metrics_snapshot(self) -> Dict:
        """This cache's registry snapshot (hits, misses, entries, ...)."""
        return self.metrics.snapshot()

    def register_metrics(self, registry, labels=None) -> None:
        """Surface the cache instruments plus the wrapped NF's metrics."""
        cache_labels = dict(labels or {})
        cache_labels["nf"] = self.name
        for counter, name, help_text in (
            (self._hits, "fastpath_hits_total", "packets replayed from the action cache"),
            (self._misses, "fastpath_misses_total", "packets that took the slow path"),
            (
                self._invalidations,
                "fastpath_invalidations_total",
                "cached actions discarded on generation mismatch",
            ),
            (
                self._evictions,
                "fastpath_evictions_total",
                "cached actions evicted by the FIFO capacity cap",
            ),
            (
                self._learns,
                "fastpath_learns_total",
                "actions admitted after replay verification",
            ),
            (
                self._learn_rejected,
                "fastpath_learn_rejected_total",
                "candidate actions whose replay diverged from the slow path",
            ),
            (
                self._warmed,
                "fastpath_warmed_total",
                "actions pre-installed from restored flow state",
            ),
            (
                self._compiles,
                "fastpath_compiles_total",
                "flow rewrites compiled into specialized closures",
            ),
            (
                self._compile_rejected,
                "fastpath_compile_rejected_total",
                "compiled closures whose output diverged from the slow path",
            ),
            (
                self._compiled_hits,
                "fastpath_compiled_hits_total",
                "packets rewritten by a compiled closure",
            ),
            (
                self._compiled_batches,
                "fastpath_compiled_batches_total",
                "same-flow runs batch-applied through a compiled closure",
            ),
        ):
            registry.counter_fn(
                name, lambda c=counter: c.value, help_text, cache_labels
            )
        registry.gauge_fn(
            "fastpath_cache_entries",
            lambda: len(self._cache),
            "actions currently cached",
            cache_labels,
        )
        registry.gauge_fn(
            "fastpath_compiled_entries",
            lambda: len(self._compiled),
            "compiled closures currently installed",
            cache_labels,
        )
        self.inner.register_metrics(registry, labels)

    def flow_count(self) -> int:
        """The inner NF's live-flow count (0 when it has no flow table)."""
        inner_count = getattr(self.inner, "flow_count", None)
        return inner_count() if inner_count is not None else 0

    # -- checkpoint/restore -------------------------------------------------
    def checkpoint_state(self) -> Dict:
        """The inner NF's state; the action cache is never serialized.

        Cached actions are pure memoization — rebuilt on demand — and
        their tokens are live references into the inner NF's structures,
        meaningless across a restore.
        """
        return self.inner.checkpoint_state()

    def restore_state(self, state: Dict) -> None:
        """Restore the inner NF and drop every cached action.

        The inner NF's restore also bumps its generation past the
        checkpoint's, so even an action that somehow survived could
        never replay; clearing is the belt to that suspender.
        """
        self.inner.restore_state(state)
        if self._cache:
            self._invalidations.inc(len(self._cache))
            self._cache.clear()
        self._compiled.clear()

    def warm(self) -> int:
        """Pre-install cached actions for the inner NF's live flows.

        A freshly restored standby knows every live flow, yet a plain
        restore leaves this cache empty — so the first post-failover
        packet of *every* flow pays the slow path and the hit rate
        falls off a cliff exactly when the data path is busiest. NFs
        that can derive the per-direction actions from their flow table
        expose ``warm_entries()`` on their hooks (yielding
        ``(flow key, CachedAction)`` pairs); this installs them at the
        current generation, so the normal invalidation discipline
        covers warmed entries unchanged.

        The learn-time replay verification is deliberately skipped:
        warmed actions are computed from flow state that
        ``restore_state`` has already validated against the NF's
        invariants, not inferred from a single packet. Returns the
        number of entries installed (0 when the hooks cannot warm).
        """
        warm_entries = getattr(self._hooks, "warm_entries", None)
        if warm_entries is None:
            return 0
        generation = self._hooks.generation()
        compiling = self.mode == "compiled" and self._hooks.supports_raw
        installed = 0
        for key, action in warm_entries():
            if len(self._cache) >= self.max_entries:
                break
            action.generation = generation
            if self._hooks.supports_raw:
                action.raw_ops = _raw_ops_from(
                    (key[2], key[3]), (key[4], key[5]), action
                )
            self._cache[key] = action
            if compiling:
                # Warmed closures skip the byte-compare for the same
                # reason warmed actions skip replay verification: they
                # are derived from restore-validated flow state, not
                # inferred from one packet.
                self._compiled[key] = compile_action(key, action)
                self._compiles.inc()
            installed += 1
        if installed:
            self._warmed.inc(installed)
        return installed

    def delta_sink(self, sink) -> None:
        self.inner.delta_sink(sink)

    # -- the cache ----------------------------------------------------------
    def _lookup(self, key: Optional[FlowKey]) -> Optional[CachedAction]:
        """A valid cached action for ``key``, discarding stale entries."""
        if key is None:
            return None
        action = self._cache.get(key)
        if action is None:
            return None
        if action.generation != self._hooks.generation():
            del self._cache[key]
            self._compiled.pop(key, None)
            self._invalidations.inc()
            return None
        return action

    def _learn(
        self, packet: Packet, key: FlowKey, outputs: List[Packet]
    ) -> None:
        """Memoize what the slow path just did, if it is cacheable.

        Only single-packet forwards are cached (drops and multi-output
        behaviors always re-consult the slow path). The candidate action
        is verified by replay before it is admitted.
        """
        if len(outputs) != 1:
            return
        token = self._hooks.learn_token(packet)
        if token is None:
            return
        out = outputs[0]
        assert packet.ipv4 is not None and packet.l4 is not None
        assert out.ipv4 is not None and out.l4 is not None
        src: Optional[Tuple[int, int]] = (out.ipv4.src_ip, out.l4.src_port)
        if src == (packet.ipv4.src_ip, packet.l4.src_port):
            src = None
        dst: Optional[Tuple[int, int]] = (out.ipv4.dst_ip, out.l4.dst_port)
        if dst == (packet.ipv4.dst_ip, packet.l4.dst_port):
            dst = None
        action = CachedAction(
            src=src,
            dst=dst,
            out_device=out.device,
            token=token,
            generation=self._hooks.generation(),
        )
        replayed = self._hooks.apply(packet, action)
        if replayed.device != out.device or replayed.wire_bytes() != out.wire_bytes():
            self._learn_rejected.inc()
            return
        if self._hooks.supports_raw:
            action.raw_ops = _raw_ops_for(packet, action)
        if len(self._cache) >= self.max_entries:
            evicted = next(iter(self._cache))
            del self._cache[evicted]
            # The compiled twin must go with it: were it to linger, a
            # re-learned flow at the same key could race a stale closure.
            self._compiled.pop(evicted, None)
            self._evictions.inc()
        self._cache[key] = action
        self._learns.inc()
        if self.mode == "compiled" and self._hooks.supports_raw:
            self._compile(packet, key, action, out)

    def _compile(
        self, packet: Packet, key: FlowKey, action: CachedAction, out: Packet
    ) -> None:
        """Compile the just-learned action and self-verify the closure.

        Same discipline as the learn itself: the compiled output is
        byte-compared against what the slow path actually emitted for
        the triggering packet, and a diverging closure is never
        installed (the flow still has its verified replay action, so
        it degrades to the replay path, not to a wrong rewrite).
        """
        compiled = compile_action(key, action)
        if (
            compiled.out_device != out.device
            or compiled.apply(packet.wire_bytes()) != out.wire_bytes()
        ):
            self._compile_rejected.inc()
            return
        self._compiled[key] = compiled
        self._compiles.inc()

    def _handle(self, packet: Packet, now: int) -> List[Packet]:
        key = packet_flow_key(packet)
        action = self._lookup(key)
        recorder = obs.recorder()
        if action is not None:
            self._hits.inc()
            if recorder.active:
                recorder.trace(flight.FASTPATH_HIT, t_us=now)
            self._hooks.rejuvenate(action.token, now)
            return [self._hooks.apply(packet, action)]
        self._misses.inc()
        if recorder.active:
            recorder.trace(flight.SLOW_PATH, t_us=now)
        outputs = self.inner.process(packet, now)
        if key is not None:
            self._learn(packet, key, outputs)
        return outputs

    # -- packet paths -------------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        now = self._hooks.begin_burst(now)
        return self._handle(packet, now)

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """One RX burst: expiry scanned once up front, then per-packet
        cache consult with slow-path fall-through on miss.

        The loop body is ``_handle`` inlined with the generation read
        hoisted out: the generation can only move inside a slow-path
        call, so it is read once per burst and refreshed after each
        miss instead of per packet.
        """
        self._note_burst(len(packets))
        if not packets:
            return []
        hooks = self._hooks
        now = hooks.begin_burst(now)
        cache = self._cache
        generation = hooks.generation()
        rejuvenate = hooks.rejuvenate
        apply_action = hooks.apply
        inner_process = self.inner.process
        recorder = obs.recorder()
        tracing = recorder.active
        results: List[List[Packet]] = []
        hits = 0
        for packet in packets:
            key = packet_flow_key(packet)
            action = cache.get(key) if key is not None else None
            if action is not None:
                if action.generation == generation:
                    hits += 1
                    if tracing:
                        recorder.trace(flight.FASTPATH_HIT, t_us=now)
                    rejuvenate(action.token, now)
                    results.append([apply_action(packet, action)])
                    continue
                del cache[key]
                self._compiled.pop(key, None)
                self._invalidations.inc()
            self._misses.inc()
            if tracing:
                recorder.trace(flight.SLOW_PATH, t_us=now)
            outputs = inner_process(packet, now)
            if key is not None:
                self._learn(packet, key, outputs)
            generation = hooks.generation()
            results.append(outputs)
        self._hits.inc(hits)
        return results

    def process_raw_burst(
        self, frames: Sequence[Tuple[bytearray, int]], now: int
    ) -> List[List[Tuple[bytes, int]]]:
        """The zero-copy burst path over raw frame bytes.

        ``frames`` holds (mutable frame buffer, receive device) pairs.
        A hit patches the buffer in place through a :class:`LazyPacket`
        view — no header objects; a miss parses, runs the slow path and
        serializes its outputs with stored checksums (``wire_bytes``),
        so both paths produce identical bytes.
        """
        if not self._hooks.supports_raw:
            raise TypeError(f"{self.name} does not support the raw fast path")
        self._note_burst(len(frames))
        if not frames:
            return []
        now = self._hooks.begin_burst(now)
        recorder = obs.recorder()
        tracing = recorder.active
        if self.mode == "compiled":
            return self._compiled_raw_burst(frames, now, recorder, tracing)
        results: List[List[Tuple[bytes, int]]] = []
        for buf, device in frames:
            view = LazyPacket(buf, device)
            key = view.flow_key()
            action = self._lookup(key)
            if action is not None and action.raw_ops is not None:
                self._hits.inc()
                if tracing:
                    recorder.trace(flight.FASTPATH_HIT, t_us=now)
                self._hooks.rejuvenate(action.token, now)
                _apply_raw(view, action.raw_ops)
                results.append([(bytes(buf), action.out_device)])
                continue
            self._misses.inc()
            if tracing:
                recorder.trace(flight.SLOW_PATH, t_us=now)
            try:
                packet = Packet.from_bytes(bytes(buf), device)
            except ParseError:
                results.append([])
                continue
            outputs = self.inner.process(packet, now)
            if key is not None:
                self._learn(packet, key, outputs)
            results.append([(out.wire_bytes(), out.device) for out in outputs])
        return results

    def _compiled_raw_burst(
        self,
        frames: Sequence[Tuple[bytearray, int]],
        now: int,
        recorder,
        tracing: bool,
    ) -> List[List[Tuple[bytes, int]]]:
        """The batch-applied compiled path over one raw burst.

        Struct-of-arrays over the burst: every frame's flow key is
        extracted in one pass (no view objects), the burst is
        partitioned into maximal same-key runs, and each run that has a
        live compiled closure pays its dict lookup, generation check
        and rejuvenation *once* before the closure is applied across
        the whole run. Frames without a closure — ineligible shapes,
        cold flows, rejected compiles, stale generations — fall back to
        the replay/slow path one at a time, exactly as in cache mode.
        """
        hooks = self._hooks
        compiled = self._compiled
        rejuvenate = hooks.rejuvenate
        generation = hooks.generation()
        keys = [raw_flow_key(buf, device) for buf, device in frames]
        n = len(frames)
        results: List[List[Tuple[bytes, int]]] = [[] for _ in range(n)]
        hits = 0
        batches = 0
        i = 0
        while i < n:
            key = keys[i]
            action = compiled.get(key) if key is not None else None
            if action is not None and action.generation != generation:
                # A flow was created/expired since this closure was
                # compiled: drop it and its replay twin — the replay
                # lookup below would discard the twin anyway, but the
                # closure must never survive on its own.
                del compiled[key]
                if self._cache.pop(key, None) is not None:
                    self._invalidations.inc()
                action = None
            if action is None:
                buf, device = frames[i]
                results[i] = self._raw_replay_one(
                    buf, device, key, now, recorder, tracing
                )
                generation = hooks.generation()
                i += 1
                continue
            rejuvenate(action.token, now)
            run_end = i + 1
            if run_end < n and keys[run_end] == key:
                while run_end < n and keys[run_end] == key:
                    run_end += 1
                outs = action.apply_batch(
                    [frames[k][0] for k in range(i, run_end)]
                )
                out_device = action.out_device
                for k in range(i, run_end):
                    results[k] = [(outs[k - i], out_device)]
            else:
                results[i] = [(action.apply_one(frames[i][0]), action.out_device)]
            run_len = run_end - i
            hits += run_len
            batches += 1
            if tracing:
                for _ in range(run_len):
                    recorder.trace(flight.FASTPATH_HIT, t_us=now)
            i = run_end
        if hits:
            self._hits.inc(hits)
            self._compiled_hits.inc(hits)
            self._compiled_batches.inc(batches)
        return results

    def _raw_replay_one(
        self,
        buf: bytearray,
        device: int,
        key: Optional[FlowKey],
        now: int,
        recorder,
        tracing: bool,
    ) -> List[Tuple[bytes, int]]:
        """One compiled-path miss through the replay cache or slow path."""
        action = self._lookup(key)
        if action is not None and action.raw_ops is not None:
            self._hits.inc()
            if tracing:
                recorder.trace(flight.FASTPATH_HIT, t_us=now)
            self._hooks.rejuvenate(action.token, now)
            _apply_raw(LazyPacket(buf, device), action.raw_ops)
            return [(bytes(buf), action.out_device)]
        self._misses.inc()
        if tracing:
            recorder.trace(flight.SLOW_PATH, t_us=now)
        try:
            packet = Packet.from_bytes(bytes(buf), device)
        except ParseError:
            return []
        outputs = self.inner.process(packet, now)
        if key is not None:
            self._learn(packet, key, outputs)
        return [(out.wire_bytes(), out.device) for out in outputs]


__all__ = [
    "CachedAction",
    "FASTPATH_MODES",
    "FastPathNat",
    "apply_endpoint_action",
    "normalize_fastpath",
    "packet_flow_key",
]
