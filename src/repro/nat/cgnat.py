"""Deterministic stateless CGNAT: a closed-form bijective port mapping.

The paper proves a *stateful* NAT correct; this module extends the
story to the carrier-grade variant (RFC 7422, "Deterministic Address
Mapping") real CGN deployments use to escape per-flow state. Each
internal subscriber address owns a fixed, contiguous block of external
ports, assigned by arithmetic instead of allocation:

    subscriber  i        = src_ip  - internal_base
    offset      off      = src_port - internal_port_base
    external    ext_port = domain_start_port + i * ports_per_subscriber + off

The map is a bijection between the internal domain
``[internal_base, internal_base + subscriber_count) ×
[internal_port_base, internal_port_base + ports_per_subscriber)`` and
the external port interval ``[domain_start_port, domain_start_port +
domain_size)``: forward translation is two subtractions, one multiply
and two adds; the return path *inverts* the arithmetic (one divmod)
and needs **no flow lookup**. No table, no allocator, no expiry — the
NF's memory footprint does not move as flow count grows, and (RFC 7422
§2's operational motivation) no per-flow translation log is needed:
the mapping itself is the log.

The trade, also per RFC 7422: each subscriber is *restricted* to
``ports_per_subscriber`` concurrent source ports drawn from a fixed
internal range — traffic outside the domain is dropped (counted as
``dropped_out_of_domain``), where a stateful NAT would have allocated
any free port.

Like VigNat, the packet-processing decisions live in a stateless
function, :func:`det_nat_loop_iteration`, runnable two ways:
:class:`DetNat` binds it to real packets, and
:mod:`repro.verif.nf_env_cgnat` binds the identical function to
symbolic values to *prove* the bijection (round-trip identity, block
containment, overflow freedom) by concolic execution — the subscriber
index is concretized per path so every formula stays within the
difference-logic solver, while ports remain fully symbolic.

Sharding reuses :meth:`NatConfig.partition` unchanged: the external
port domain splits into disjoint, exhaustive per-worker ranges, so
:class:`~repro.net.rss.NatSteering` steers return traffic by port
ownership exactly as it does for the stateful NATs. Because the map is
global and stateless, *any* worker can translate *any* packet — a
subscriber's port block may even straddle a shard boundary without a
correctness cost, which is precisely the locality constraint
statelessness dissolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.addresses import ip_to_int
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP, Packet

#: Default CGN inside pool: the RFC 6598 shared address space.
DEFAULT_INTERNAL_BASE = ip_to_int("100.64.0.0")

#: Default first internal source port a subscriber may use (RFC 7422
#: deployments map the ephemeral range; 1024 skips the well-known ports).
DEFAULT_INTERNAL_PORT_BASE = 1_024


@dataclass(frozen=True, kw_only=True)
class CgnatConfig(NatConfig):
    """A :class:`NatConfig` plus the deterministic-mapping parameters.

    ``max_flows``/``start_port`` keep their meaning — the external port
    range this (possibly sharded) configuration owns. The *mapping*,
    however, is defined over the whole unsharded domain
    (``domain_start_port``/``domain_size``), which
    :meth:`NatConfig.partition` shards inherit from their parent: every
    worker computes the same global bijection and owns a slice of its
    range. Both default to this config's own range, so an unsharded
    config is its own domain.
    """

    internal_base: int = DEFAULT_INTERNAL_BASE
    subscriber_count: int = 64
    internal_port_base: int = DEFAULT_INTERNAL_PORT_BASE
    #: The global bijection domain; 0 means "this config's own range"
    #: (normalized in ``__post_init__``). ``partition`` shards carry the
    #: parent's values, keeping the mapping identical on every worker.
    domain_start_port: int = 0
    domain_size: int = 0

    def __post_init__(self) -> None:
        if self.domain_start_port == 0:
            object.__setattr__(self, "domain_start_port", self.start_port)
        if self.domain_size == 0:
            object.__setattr__(self, "domain_size", self.max_flows)
        super().__post_init__()
        if self.subscriber_count <= 0:
            raise ValueError("subscriber_count must be positive")
        if self.domain_size % self.subscriber_count != 0:
            raise ValueError(
                f"domain of {self.domain_size} external ports does not divide "
                f"evenly across {self.subscriber_count} subscribers"
            )
        if self.domain_start_port + self.domain_size - 1 > 0xFFFF:
            raise ValueError("external port domain exceeds 65535")
        if not (
            self.domain_start_port
            <= self.start_port
            <= self.end_port
            <= self.domain_end_port
        ):
            raise ValueError(
                f"shard port range [{self.start_port}, {self.end_port}] "
                f"escapes the mapping domain "
                f"[{self.domain_start_port}, {self.domain_end_port}]"
            )
        if not 0 < self.internal_port_base <= 0xFFFF:
            raise ValueError("internal_port_base out of range")
        if self.internal_port_base + self.ports_per_subscriber - 1 > 0xFFFF:
            raise ValueError(
                "internal port window [internal_port_base, "
                "internal_port_base + ports_per_subscriber) exceeds 65535"
            )
        if self.internal_base + self.subscriber_count - 1 > 0xFFFFFFFF:
            raise ValueError("subscriber address pool exceeds the IPv4 space")

    # -- the mapping ---------------------------------------------------------
    @property
    def domain_end_port(self) -> int:
        """The last external port of the global domain (inclusive)."""
        return self.domain_start_port + self.domain_size - 1

    @property
    def ports_per_subscriber(self) -> int:
        """Contiguous external ports each subscriber owns."""
        return self.domain_size // self.subscriber_count

    def subscriber_of_ip(self, src_ip: int) -> Optional[int]:
        """The subscriber index of an internal address, if in the pool."""
        index = src_ip - self.internal_base
        if 0 <= index < self.subscriber_count:
            return index
        return None

    def block_start(self, subscriber: int) -> int:
        """First external port of a subscriber's block."""
        return self.domain_start_port + subscriber * self.ports_per_subscriber

    def map_forward(self, src_ip: int, src_port: int) -> Optional[int]:
        """(internal addr, port) → external port, or None outside the domain."""
        subscriber = self.subscriber_of_ip(src_ip)
        if subscriber is None:
            return None
        offset = src_port - self.internal_port_base
        if not 0 <= offset < self.ports_per_subscriber:
            return None
        return self.block_start(subscriber) + offset

    def map_return(self, ext_port: int) -> Optional[Tuple[int, int]]:
        """External port → (internal addr, port), or None outside the domain."""
        index = ext_port - self.domain_start_port
        if not 0 <= index < self.domain_size:
            return None
        subscriber, offset = divmod(index, self.ports_per_subscriber)
        return (
            self.internal_base + subscriber,
            self.internal_port_base + offset,
        )


class DetNatEnv:
    """The environment interface the stateless CGNAT logic is written
    against — the deterministic analogue of
    :class:`~repro.nat.core_logic.NatEnv`, with the two arithmetic
    lookups (the only places the multiplication/division of the
    bijection live) behind environment hooks so the symbolic run can
    concretize the subscriber while everything else stays symbolic.
    """

    def receive(self) -> Optional[Any]: ...

    def subscriber_block(self, src_ip: Any) -> Optional[Any]:
        """The block-start port of ``src_ip``'s subscriber, or None."""

    def block_of_port(self, dst_port: Any) -> Optional[Tuple[Any, Any]]:
        """(subscriber addr, block-start port) owning ``dst_port``, or None."""

    def emit(
        self,
        packet: Any,
        device: Any,
        src_ip: Any,
        src_port: Any,
        dst_ip: Any,
        dst_port: Any,
    ) -> None: ...

    def drop(self, packet: Any) -> None: ...


def det_nat_loop_iteration(env: DetNatEnv, config: CgnatConfig) -> None:
    """One iteration of the stateless CGNAT's event loop.

    Structured like :func:`~repro.nat.core_logic.nat_loop_iteration`
    (ethertype, then protocol, then device — the C header-parsing
    sequence) but with *no* expiry step and no flow-table calls: both
    directions are pure arithmetic over the packet's own fields. Every
    ``if`` compares concrete values in the deployed run and forks the
    path in the symbolic run.
    """
    packet = env.receive()
    if packet is None:
        return

    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return
    if (packet.protocol == PROTO_TCP) | (packet.protocol == PROTO_UDP):
        pass
    else:
        env.drop(packet)
        return

    if packet.device == config.internal_device:
        block = env.subscriber_block(packet.src_ip)
        if block is None:
            # Source address outside the CGN pool: not ours to translate.
            env.drop(packet)
            return
        if packet.src_port < config.internal_port_base:
            env.drop(packet)
            return
        offset = packet.src_port - config.internal_port_base
        if offset >= config.ports_per_subscriber:
            # RFC 7422 port restriction: the subscriber's window is
            # exhausted by construction, not by allocation failure.
            env.drop(packet)
            return
        external_port = block + offset
        env.emit(
            packet,
            device=config.external_device,
            src_ip=config.external_ip,
            src_port=external_port,
            dst_ip=packet.dst_ip,
            dst_port=packet.dst_port,
        )
    elif packet.device == config.external_device:
        owner = env.block_of_port(packet.dst_port)
        if owner is None:
            # Port outside the domain: no subscriber owns it.
            env.drop(packet)
            return
        subscriber_ip, block = owner
        internal_port = config.internal_port_base + (packet.dst_port - block)
        env.emit(
            packet,
            device=config.internal_device,
            src_ip=packet.src_ip,
            src_port=packet.src_port,
            dst_ip=subscriber_ip,
            dst_port=internal_port,
        )
    else:
        env.drop(packet)


class _DetConcretePacketView:
    """Field access on a concrete packet for the stateless CGNAT code."""

    __slots__ = ("packet",)

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    @property
    def ethertype(self) -> int:
        return self.packet.eth.ethertype

    @property
    def protocol(self) -> int:
        return self.packet.ipv4.protocol if self.packet.ipv4 is not None else 0

    @property
    def device(self) -> int:
        return self.packet.device

    @property
    def src_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.src_ip

    @property
    def dst_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.dst_ip

    @property
    def src_port(self) -> int:
        return self.packet.src_port

    @property
    def dst_port(self) -> int:
        return self.packet.dst_port


class _DetConcreteEnv:
    """Binds the stateless CGNAT logic to real packets (no state to bind)."""

    __slots__ = ("_nat", "_packet", "_domain_miss", "outputs")

    def __init__(self, nat: "DetNat", packet: Packet) -> None:
        self._nat = nat
        self._packet = packet
        self._domain_miss = False
        self.outputs: List[Packet] = []

    def rebind(self, packet: Packet) -> None:
        self._packet = packet
        self._domain_miss = False
        self.outputs = []

    def receive(self) -> Optional[_DetConcretePacketView]:
        return _DetConcretePacketView(self._packet)

    def subscriber_block(self, src_ip: int) -> Optional[int]:
        config = self._nat.config
        subscriber = config.subscriber_of_ip(src_ip)
        if subscriber is None:
            self._domain_miss = True
            return None
        return config.block_start(subscriber)

    def block_of_port(self, dst_port: int) -> Optional[Tuple[int, int]]:
        config = self._nat.config
        index = dst_port - config.domain_start_port
        if not 0 <= index < config.domain_size:
            self._domain_miss = True
            return None
        subscriber = index // config.ports_per_subscriber
        return (
            config.internal_base + subscriber,
            config.block_start(subscriber),
        )

    def emit(
        self,
        packet: _DetConcretePacketView,
        device: int,
        src_ip: int,
        src_port: int,
        dst_ip: int,
        dst_port: int,
    ) -> None:
        out = packet.packet.clone()
        if (src_ip, src_port) != (packet.src_ip, packet.src_port):
            rewrite_source(out, src_ip, src_port)
        if (dst_ip, dst_port) != (packet.dst_ip, packet.dst_port):
            rewrite_destination(out, dst_ip, dst_port)
        out.device = device
        self.outputs.append(out)
        self._nat._forwarded_total += 1

    def drop(self, packet: _DetConcretePacketView) -> None:
        self._nat._dropped_total += 1
        if self._domain_miss:
            # The RFC 7422 trade-off, made visible: a stateful NAT would
            # have allocated a port here.
            self._nat._dropped_out_of_domain += 1
            self._domain_miss = False
        # The port-restriction drop (in-pool subscriber, port outside
        # its window) also counts as out-of-domain.
        elif (
            packet.ethertype == ETHERTYPE_IPV4
            and packet.protocol in (PROTO_TCP, PROTO_UDP)
            and packet.device == self._nat.config.internal_device
            and self._nat.config.subscriber_of_ip(packet.src_ip) is not None
        ):
            self._nat._dropped_out_of_domain += 1


class DetNat(NetworkFunction):
    """The deterministic stateless CGNAT over a closed-form bijection.

    Holds *no* mutable flow state: translation in both directions is
    arithmetic over :class:`CgnatConfig`. Consequences the evaluation
    and resilience subsystems rely on:

    - :meth:`flow_count` is 0 forever and the checkpoint payload is
      empty — memory stays flat as flow count grows (the cgnat sweep's
      gate), and a standby "restore" is just config validation;
    - there is nothing to expire, rejuvenate or replicate, so the NF
      ignores time and emits no deltas;
    - any worker can translate any packet — sharding
      (:meth:`NatConfig.partition` + RSS port-ownership steering) is
      purely a load-spreading concern, never a state-locality one.
    """

    name = "det-nat"

    def __init__(self, config: CgnatConfig | NatConfig | None = None) -> None:
        if config is None:
            config = CgnatConfig()
        elif not isinstance(config, CgnatConfig):
            raise TypeError(
                "DetNat requires a CgnatConfig (the deterministic mapping "
                "parameters); got a plain NatConfig"
            )
        self.config: CgnatConfig = config
        self._forwarded_total = 0
        self._dropped_total = 0
        self._dropped_out_of_domain = 0

    # -- introspection ------------------------------------------------------
    def flow_count(self) -> int:
        """Always 0: the bijection replaces the flow table."""
        return 0

    def external_port_of(self, src_ip: int, src_port: int) -> Optional[int]:
        """The deterministic external port of an internal endpoint."""
        return self.config.map_forward(src_ip, src_port)

    def internal_endpoint_of(self, ext_port: int) -> Optional[Tuple[int, int]]:
        """The internal (addr, port) a translated external port names."""
        return self.config.map_return(ext_port)

    def op_counters(self) -> Dict[str, int]:
        counters = {
            "forwarded": self._forwarded_total,
            "dropped": self._dropped_total,
            "dropped_out_of_domain": self._dropped_out_of_domain,
        }
        counters.update(self.burst_counters())
        return counters

    # -- checkpoint/restore -------------------------------------------------
    def checkpoint_state(self) -> Dict:
        """Empty: the configuration *is* the whole NF.

        The ``repro-ckpt/v1`` envelope still carries (and restore still
        validates) the full :class:`CgnatConfig`, mapping parameters
        included — restoring onto a different domain is refused there.
        """
        return {}

    def restore_state(self, state: Dict) -> None:
        """Accept only the empty payload :meth:`checkpoint_state` makes."""
        super().restore_state(state)

    def register_metrics(self, registry, labels=None) -> None:
        """Op counters plus the (constant) mapping-shape gauges.

        ``flow_table_occupancy`` is exported at a hard 0 so dashboards
        built for the stateful NATs show the flatness rather than a
        missing series; capacity reports the domain size — the number
        of concurrent translations the bijection can name.
        """
        super().register_metrics(registry, labels)
        nf_labels = dict(labels or {})
        nf_labels["nf"] = self.name
        registry.gauge_fn(
            "flow_table_occupancy",
            self.flow_count,
            "live translation entries (always 0: stateless mapping)",
            nf_labels,
        )
        registry.gauge_fn(
            "flow_table_capacity",
            lambda: self.config.domain_size,
            "addressable concurrent translations",
            nf_labels,
        )
        registry.gauge_fn(
            "cgnat_subscribers",
            lambda: self.config.subscriber_count,
            "internal addresses the mapping covers",
            nf_labels,
        )
        registry.gauge_fn(
            "cgnat_ports_per_subscriber",
            lambda: self.config.ports_per_subscriber,
            "external port block size per subscriber",
            nf_labels,
        )

    # -- the packet path ----------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        env = _DetConcreteEnv(self, packet)
        det_nat_loop_iteration(env, self.config)
        return env.outputs

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """A burst is just the per-packet path: no expiry to amortize."""
        self._note_burst(len(packets))
        if not packets:
            return []
        env = _DetConcreteEnv(self, packets[0])
        results: List[List[Packet]] = []
        for packet in packets:
            env.rebind(packet)
            det_nat_loop_iteration(env, self.config)
            results.append(env.outputs)
        return results


__all__ = [
    "CgnatConfig",
    "DEFAULT_INTERNAL_BASE",
    "DEFAULT_INTERNAL_PORT_BASE",
    "DetNat",
    "det_nat_loop_iteration",
]
