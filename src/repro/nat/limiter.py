"""VigLimiter: a verified per-source rate limiter — the tutorial NF.

Fourth NF on libVig (see ``docs/TUTORIAL.md`` for a step-by-step
walkthrough of how it was built and verified). Policy:

- traffic entering on the protected ingress (device 0) is budgeted per
  source IP: each source may send at most ``max_packets`` packets per
  ``window`` (a fixed window: the budget entry expires ``window`` after
  the *first* packet and is **never refreshed** — unlike the NAT's idle
  timeout, traffic does not extend its own window);
- a source over budget is dropped; a new source when the table is full
  is dropped (fail closed);
- traffic in the other direction (device 1) passes through untouched.

Verification-wise the interesting bits are (a) the *absence* of
rejuvenation is itself a proven property (fixed window vs idle window),
and (b) the counter increment ``count + 1`` is only provably free of
u32 overflow because it sits under the ``count < max_packets`` guard —
remove the guard and P2 fails (see the mutation test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol

from repro.libvig.double_chain import DoubleChain
from repro.libvig.map import Map
from repro.libvig.static_array import StaticArray
from repro.nat.base import NetworkFunction
from repro.packets.headers import ETHERTYPE_IPV4, Packet


@dataclass(frozen=True)
class LimiterConfig:
    """Static limiter configuration."""

    ingress_device: int = 0
    egress_device: int = 1
    capacity: int = 65_536  # distinct sources tracked concurrently
    window: int = 1_000_000  # microseconds (1 s fixed window)
    max_packets: int = 100  # budget per source per window

    def __post_init__(self) -> None:
        if self.ingress_device == self.egress_device:
            raise ValueError("devices must differ")
        if self.capacity <= 0 or self.window <= 0 or self.max_packets <= 0:
            raise ValueError("capacity, window and budget must be positive")


class LimiterEnv(Protocol):
    """The libVig + DPDK interface of the limiter's stateless code."""

    def current_time(self) -> Any: ...

    def expire_budgets(self, min_time: Any) -> None: ...

    def receive(self) -> Optional[Any]: ...

    def budget_get(self, src_ip: Any) -> Optional[Any]: ...  # index or None

    def budget_create(self, src_ip: Any, now: Any) -> Optional[Any]: ...

    def counter_read(self, index: Any) -> Any: ...

    def counter_bump(self, index: Any, new_value: Any) -> None: ...

    def forward(self, packet: Any, device: Any) -> None: ...

    def drop(self, packet: Any) -> None: ...


def limiter_loop_iteration(env: LimiterEnv, config: Any) -> None:
    """One loop iteration of the limiter; shared concrete/symbolic."""
    now = env.current_time()
    if now >= config.window:
        min_time = now - config.window + 1
    else:
        min_time = 0
    env.expire_budgets(min_time)

    packet = env.receive()
    if packet is None:
        return
    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return

    if packet.device == config.ingress_device:
        index = env.budget_get(packet.src_ip)
        if index is None:
            # First packet of the window: open a budget (fail closed
            # when the table is full — an unbudgeted source never
            # bypasses the limiter).
            index = env.budget_create(packet.src_ip, now)
            if index is None:
                env.drop(packet)
                return
            env.forward(packet, device=config.egress_device)
            return
        count = env.counter_read(index)
        if count < config.max_packets:
            # The guard bounds the increment: count + 1 <= max_packets,
            # so the u32 addition provably cannot wrap (P2).
            env.counter_bump(index, count + 1)
            env.forward(packet, device=config.egress_device)
        else:
            env.drop(packet)  # over budget for this window
    elif packet.device == config.egress_device:
        env.forward(packet, device=config.ingress_device)
    else:
        env.drop(packet)


class _FrameView:
    __slots__ = ("packet",)

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    @property
    def ethertype(self) -> int:
        return self.packet.eth.ethertype

    @property
    def device(self) -> int:
        return self.packet.device

    @property
    def src_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.src_ip


class _ConcreteLimiterEnv:
    """Binds the limiter logic to libVig and real packets."""

    def __init__(self, limiter: "VigLimiter", packet: Packet, now: int) -> None:
        self._limiter = limiter
        self._packet = packet
        self._now = now
        self.outputs: List[Packet] = []

    def current_time(self) -> int:
        return self._now

    def expire_budgets(self, min_time: int) -> None:
        limiter = self._limiter
        while True:
            index = limiter._chain.expire_one_index(min_time)
            if index is None:
                return
            src_ip = limiter._source_of[index]
            limiter._table.erase(src_ip)
            del limiter._source_of[index]
            limiter._expired_total += 1

    def receive(self) -> _FrameView:
        return _FrameView(self._packet)

    def budget_get(self, src_ip: int) -> Optional[int]:
        return self._limiter._table.get(src_ip)

    def budget_create(self, src_ip: int, now: int) -> Optional[int]:
        limiter = self._limiter
        index = limiter._chain.allocate_new_index(now)
        if index is None:
            return None
        limiter._table.put(src_ip, index)
        limiter._source_of[index] = src_ip
        limiter._counters.set(index, 1)
        return index

    def counter_read(self, index: int) -> int:
        return self._limiter._counters.get(index)

    def counter_bump(self, index: int, new_value: int) -> None:
        self._limiter._counters.set(index, new_value)

    def forward(self, packet: _FrameView, device: int) -> None:
        out = packet.packet.clone()
        out.device = device
        self.outputs.append(out)
        self._limiter._forwarded_total += 1

    def drop(self, packet: _FrameView) -> None:
        self._limiter._dropped_total += 1


class VigLimiter(NetworkFunction):
    """The verified per-source fixed-window rate limiter."""

    name = "verified-limiter"

    def __init__(self, config: LimiterConfig | None = None) -> None:
        self.config = config if config is not None else LimiterConfig()
        self._table = Map(self.config.capacity + self.config.capacity // 8 + 1)
        self._chain = DoubleChain(self.config.capacity)
        self._counters = StaticArray(self.config.capacity)
        self._source_of: Dict[int, int] = {}
        self._expired_total = 0
        self._dropped_total = 0
        self._forwarded_total = 0

    def tracked_sources(self) -> int:
        """Number of sources with an open budget window."""
        return self._chain.size()

    def budget_used(self, src_ip: int) -> Optional[int]:
        """Packets this source has spent in its current window."""
        index = self._table.get(src_ip)
        if index is None:
            return None
        return self._counters.get(index)

    def op_counters(self) -> Dict[str, int]:
        return {
            "map_probes": self._table.stats.probes,
            "expired": self._expired_total,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
        }

    def process(self, packet: Packet, now: int) -> List[Packet]:
        env = _ConcreteLimiterEnv(self, packet, now)
        limiter_loop_iteration(env, self.config)
        return env.outputs

    def checkpoint_state(self) -> Dict:
        """Open budget windows in chain age order, plus counters."""
        budgets = []
        for index, touched in self._chain.cells():
            budgets.append(
                [index, touched, self._source_of[index], self._counters.get(index)]
            )
        return {
            "budgets": budgets,
            "free_list": list(self._chain.free_list()),
            "counters": {
                "expired": self._expired_total,
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild the budget table from a checkpoint, validated first.

        Checks run before any structure is mutated: sources must be
        distinct, spent counts within ``(0, max_packets]``, and the
        chain cells age-ordered with in-range indices (enforced by
        :meth:`DoubleChain.restore_cells`).
        """
        if self._chain.size() or self._source_of:
            raise ValueError("restore_state requires a freshly constructed NF")
        cells = []
        entries = []
        seen = set()
        for index, touched, src_ip, count in state.get("budgets", []):
            if src_ip in seen:
                raise ValueError(f"source {src_ip} appears twice in checkpoint")
            if not 0 < count <= self.config.max_packets:
                raise ValueError(
                    f"source {src_ip} spent {count} of a "
                    f"{self.config.max_packets}-packet budget"
                )
            seen.add(src_ip)
            cells.append((index, touched))
            entries.append((index, src_ip, count))
        self._chain.restore_cells(cells, state.get("free_list"))
        for index, src_ip, count in entries:
            self._table.put(src_ip, index)
            self._source_of[index] = src_ip
            self._counters.set(index, count)
        counters = state.get("counters", {})
        self._expired_total = int(counters.get("expired", 0))
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
