"""The §3 worked example: a discard-protocol NF (RFC 863).

Receives packets on one interface, discards those addressed to port 9,
forwards the rest through the other interface, buffering bursts in a
libVig :class:`~repro.libvig.ring.Ring`. The loop invariant of Fig. 2 —
every packet in the ring has target port ≠ 9 — is the ring's constraint,
and the semantic property Vigor proves is that no *emitted* packet has
target port 9.

The structure mirrors Fig. 1: a receive step guarded by ring fullness,
then a send step guarded by ring emptiness and link readiness. The
symbolic-execution worked example in ``tests/verif`` runs this same logic
against the three ring models of Fig. 4.
"""

from __future__ import annotations

from typing import Dict, List

from repro.libvig.ring import Ring
from repro.nat.base import NetworkFunction
from repro.packets.headers import Packet

DISCARD_PORT = 9


def packet_constraints(packet: Packet) -> bool:
    """The Fig. 2 invariant: the packet's target port is not 9."""
    return packet.l4 is not None and packet.l4.dst_port != DISCARD_PORT


class DiscardNF(NetworkFunction):
    """Drop port-9 traffic, forward everything else through a ring."""

    name = "discard"

    def __init__(self, in_device: int = 0, out_device: int = 1, capacity: int = 512) -> None:
        self.in_device = in_device
        self.out_device = out_device
        self.ring = Ring(capacity, constraint=packet_constraints)
        self._discarded_total = 0
        self._forwarded_total = 0

    def process(self, packet: Packet, now: int) -> List[Packet]:
        """One loop iteration of Fig. 1 with the link always ready.

        The received packet is pushed (unless port 9 or the ring is
        full), then one buffered packet is popped and emitted.
        """
        if packet.device == self.in_device and not self.ring.full():
            if packet.l4 is not None and packet.l4.dst_port != DISCARD_PORT:
                self.ring.push_back(packet.clone())
            else:
                self._discarded_total += 1
        out: List[Packet] = []
        if not self.ring.empty():
            emitted = self.ring.pop_front()
            emitted.device = self.out_device
            out.append(emitted)
            self._forwarded_total += 1
        return out

    def op_counters(self) -> Dict[str, int]:
        return {
            "discarded": self._discarded_total,
            "forwarded": self._forwarded_total,
            "buffered": len(self.ring),
        }
