"""The common shape of a network function in this reproduction.

An NF consumes received packets at a simulated time and returns the
packets to transmit (each carries its output device in ``packet.device``).
Two entry points exist, as on real DPDK hardware:

- :meth:`NetworkFunction.process` — one packet at a time, the unit the
  paper's verification explores;
- :meth:`NetworkFunction.process_burst` — a whole RX burst at once, the
  unit a DPDK main loop actually delivers. NFs override it to amortize
  per-iteration work (flow expiry, environment setup) across the burst.

NFs additionally expose monotone operation counters that the testbed's
cost model turns into per-packet processing latency — the simulation
analogue of the CPU work a real DPDK NF performs.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from repro.packets.headers import Packet


class NetworkFunction(abc.ABC):
    """One packet (or burst) in, zero or more packets out, with visible work."""

    #: Human-readable name used in experiment reports.
    name: str = "nf"

    # Class-level defaults so subclasses need not call ``__init__`` here;
    # the first increment shadows them with instance attributes.
    _bursts_total: int = 0
    _burst_packets_total: int = 0

    @abc.abstractmethod
    def process(self, packet: Packet, now: int) -> List[Packet]:
        """Handle one received packet at time ``now`` (microseconds).

        Returns the packets to transmit; an empty list means drop.
        """

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """Handle a burst of packets received together at time ``now``.

        Returns one output list per input packet, parallel to
        ``packets``. The base implementation degrades to per-packet
        :meth:`process` calls; burst-aware NFs override it to run
        expiry and environment setup once per burst.
        """
        self._note_burst(len(packets))
        return [self.process(packet, now) for packet in packets]

    def _note_burst(self, size: int) -> None:
        self._bursts_total += 1
        self._burst_packets_total += size

    def burst_counters(self) -> Dict[str, int]:
        """Burst-path counters: bursts seen and packets they carried."""
        return {
            "bursts": self._bursts_total,
            "burst_packets": self._burst_packets_total,
        }

    def op_counters(self) -> Dict[str, int]:
        """Monotone counters of abstract work done so far.

        The cost model charges latency per counter increment. The base
        implementation reports nothing, i.e. only the NF's fixed
        per-packet cost applies.
        """
        return {}

    def fastpath_hooks(self):
        """Hooks for the microflow fast path (see :mod:`repro.nat.fastpath`).

        None (the default) means the NF cannot be wrapped by
        :class:`~repro.nat.fastpath.FastPathNat` and always takes its
        slow path.
        """
        return None

    # -- checkpoint/restore (see :mod:`repro.resil.checkpoint`) -----------
    def checkpoint_state(self) -> Dict:
        """This NF's mutable flow state as a JSON-serializable dict.

        The payload of a ``repro-ckpt/v1`` checkpoint. The base
        implementation reports an empty dict — correct for stateless
        NFs, whose whole behavior is determined by their configuration.
        """
        return {}

    def restore_state(self, state: Dict) -> None:
        """Adopt a :meth:`checkpoint_state` payload into this fresh NF.

        Implementations must validate the payload against their own
        invariants and raise ``ValueError`` (or a subclass) rather than
        apply inconsistent state. The base implementation accepts only
        the empty state a stateless NF produces.
        """
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless; checkpoint carries "
                f"unexpected state keys {sorted(state)}"
            )

    def delta_sink(self, sink) -> None:
        """Attach (or detach, with None) a per-flow delta observer.

        ``sink`` is called with ``(op, index, payload, t_us)`` tuples —
        ``op`` one of ``"create"``/``"touch"``/``"free"`` — as flow
        state changes; replication (:mod:`repro.resil.replication`)
        feeds standbys from it. Stateless NFs have nothing to emit, so
        the base implementation ignores the attachment.
        """

    def register_metrics(self, registry, labels=None) -> None:
        """Expose this NF's counters as callback metrics (collect-on-demand).

        The base implementation publishes every ``op_counters()`` entry
        as an ``nf_op_total`` sample labeled by operation and NF name —
        values are read live at snapshot time, so registration adds no
        per-packet work. Stateful NFs extend this with flow-table
        occupancy/expiry instruments.
        """
        base_labels = dict(labels or {})
        base_labels["nf"] = self.name
        for key in self.op_counters():
            registry.counter_fn(
                "nf_op_total",
                lambda k=key: self.op_counters().get(k, 0),
                "NF operation counters (see op_counters)",
                {**base_labels, "op": key},
            )
