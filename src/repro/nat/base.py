"""The common shape of a network function in this reproduction.

An NF consumes one received packet at a simulated time and returns the
packets to transmit (each carries its output device in ``packet.device``).
NFs additionally expose monotone operation counters that the testbed's
cost model turns into per-packet processing latency — the simulation
analogue of the CPU work a real DPDK NF performs.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.packets.headers import Packet


class NetworkFunction(abc.ABC):
    """One packet in, zero or more packets out, with visible work counters."""

    #: Human-readable name used in experiment reports.
    name: str = "nf"

    @abc.abstractmethod
    def process(self, packet: Packet, now: int) -> List[Packet]:
        """Handle one received packet at time ``now`` (microseconds).

        Returns the packets to transmit; an empty list means drop.
        """

    def op_counters(self) -> Dict[str, int]:
        """Monotone counters of abstract work done so far.

        The cost model charges latency per counter increment. The base
        implementation reports nothing, i.e. only the NF's fixed
        per-packet cost applies.
        """
        return {}
