"""VigFW: a stateful firewall on libVig — the paper's generalization claim.

§9 hopes the Vigor technique "will eventually generalize to proving
properties of many other software NFs, thereby amortizing the tedious
work that has gone into building a library of verified NF data
structures." This module cashes that claim in: a second NF, built on the
*same* libVig structures and verified by the *same* pipeline with a new
~80-line semantic specification
(:class:`repro.verif.semantics.FirewallSemantics`).

Semantics (a connection-tracking allow-outbound firewall):

- a TCP/UDP packet from the internal network is forwarded unchanged and
  creates (or refreshes) a session, unless the session table is full and
  the flow is new — then it is dropped, never evicting a live session;
- a packet from the external network is forwarded unchanged iff it
  belongs to an established session (its 5-tuple is the reverse of a
  tracked one), which it also refreshes; anything else is dropped;
- sessions expire after the configured idle timeout.

Like VigNat, the stateless logic is one shared function
(:func:`firewall_loop_iteration`) run concretely here and symbolically
by :func:`repro.verif.nf_env_fw.firewall_symbolic_body`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol

from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.expirator import expire_items
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.flow import FlowId
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP, Packet


class FirewallEnv(Protocol):
    """The libVig + DPDK interface the firewall's stateless code uses."""

    def current_time(self) -> Any: ...

    def expire_sessions(self, min_time: Any) -> None: ...

    def receive(self) -> Optional[Any]: ...

    def session_get_internal(self, packet: Any) -> Optional[Any]: ...

    def session_get_external(self, packet: Any) -> Optional[Any]: ...

    def session_create(self, packet: Any, now: Any) -> Optional[Any]: ...

    def session_rejuvenate(self, index: Any, now: Any) -> None: ...

    def forward(self, packet: Any, device: Any) -> None: ...

    def drop(self, packet: Any) -> None: ...


def firewall_loop_iteration(env: FirewallEnv, config: Any) -> None:
    """One loop iteration of the firewall; shared concrete/symbolic."""
    now = env.current_time()
    if now >= config.expiration_time:
        min_time = now - config.expiration_time + 1
    else:
        min_time = 0
    env.expire_sessions(min_time)

    packet = env.receive()
    if packet is None:
        return
    if packet.ethertype != ETHERTYPE_IPV4:
        env.drop(packet)
        return
    if (packet.protocol == PROTO_TCP) | (packet.protocol == PROTO_UDP):
        pass
    else:
        env.drop(packet)
        return

    if packet.device == config.internal_device:
        index = env.session_get_internal(packet)
        if index is None:
            index = env.session_create(packet, now)
            if index is None:
                env.drop(packet)  # table full: never evict a live session
                return
        else:
            env.session_rejuvenate(index, now)
        env.forward(packet, device=config.external_device)
    elif packet.device == config.external_device:
        index = env.session_get_external(packet)
        if index is None:
            env.drop(packet)  # not part of an established session
            return
        env.session_rejuvenate(index, now)
        env.forward(packet, device=config.internal_device)
    else:
        env.drop(packet)


class _ConcreteFwEnv:
    """Binds the firewall logic to libVig and real packets."""

    def __init__(self, fw: "VigFirewall", packet: Packet, now: int) -> None:
        self._fw = fw
        self._packet = packet
        self._now = now
        self.outputs: List[Packet] = []

    def current_time(self) -> int:
        return self._now

    def expire_sessions(self, min_time: int) -> None:
        self._fw._expired_total += expire_items(
            self._fw._chain, self._fw._sessions, min_time
        )

    def receive(self):
        from repro.nat.vignat import _ConcretePacketView

        return _ConcretePacketView(self._packet)

    def session_get_internal(self, packet) -> Optional[int]:
        return self._fw._sessions.get_by_a(packet.flow_id())

    def session_get_external(self, packet) -> Optional[int]:
        return self._fw._sessions.get_by_b(packet.flow_id())

    def session_create(self, packet, now: int) -> Optional[int]:
        index = self._fw._chain.allocate_new_index(now)
        if index is None:
            return None
        self._fw._sessions.put(index, packet.flow_id())
        return index

    def session_rejuvenate(self, index: int, now: int) -> None:
        self._fw._chain.rejuvenate_index(index, now)

    def forward(self, packet, device: int) -> None:
        out = packet.packet.clone()
        out.device = device
        self.outputs.append(out)
        self._fw._forwarded_total += 1

    def drop(self, packet) -> None:
        self._fw._dropped_total += 1


class VigFirewall(NetworkFunction):
    """The verified connection-tracking firewall."""

    name = "verified-firewall"

    def __init__(self, config: NatConfig | None = None) -> None:
        # NatConfig is reused: external_ip is simply unused by a firewall.
        self.config = config if config is not None else NatConfig()
        self._sessions = DoubleMap(
            capacity=self.config.max_flows,
            key_a_of=lambda fid: fid,
            key_b_of=lambda fid: fid.reversed(),
        )
        self._chain = DoubleChain(self.config.max_flows)
        self._expired_total = 0
        self._dropped_total = 0
        self._forwarded_total = 0

    def session_count(self) -> int:
        """Number of tracked sessions."""
        return self._sessions.size()

    def has_session(self, flow_id: FlowId) -> bool:
        """True when ``flow_id`` (internal orientation) is tracked."""
        return self._sessions.get_by_a(flow_id) is not None

    def op_counters(self) -> Dict[str, int]:
        return {
            "map_probes": self._sessions.probe_count,
            "expired": self._expired_total,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
        }

    def process(self, packet: Packet, now: int) -> List[Packet]:
        env = _ConcreteFwEnv(self, packet, now)
        firewall_loop_iteration(env, self.config)
        return env.outputs

    def checkpoint_state(self) -> Dict:
        """Session state in chain age order (the VigNat layout, minus
        the port column: a firewall rewrites nothing)."""
        sessions = []
        for index, touched in self._chain.cells():
            fid = self._sessions.get_value(index)
            sessions.append(
                [
                    index,
                    touched,
                    [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol],
                ]
            )
        return {
            "sessions": sessions,
            "free_list": list(self._chain.free_list()),
            "counters": {
                "expired": self._expired_total,
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild the session table from a checkpoint, validated first.

        Every check runs before any structure is mutated: the internal
        5-tuples must be distinct (double-map key-A uniqueness) and the
        chain cells age-ordered with in-range indices (enforced by
        :meth:`DoubleChain.restore_cells`).
        """
        if self._sessions.size() or self._chain.size():
            raise ValueError("restore_state requires a freshly constructed NF")
        cells = []
        entries = []
        seen = set()
        for index, touched, fid_fields in state.get("sessions", []):
            fid = FlowId(*fid_fields)
            if fid in seen:
                raise ValueError(
                    f"session 5-tuple {fid} appears twice in checkpoint"
                )
            seen.add(fid)
            cells.append((index, touched))
            entries.append((index, fid))
        self._chain.restore_cells(cells, state.get("free_list"))
        for index, fid in entries:
            self._sessions.put(index, fid)
        counters = state.get("counters", {})
        self._expired_total = int(counters.get("expired", 0))
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
