"""No-op forwarding — the DPDK baseline NF (§6).

Receives on one port, transmits on the other, no inspection. Shows the
best latency/throughput the substrate can achieve; every NAT's extra cost
is measured against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.nat.base import NetworkFunction
from repro.packets.headers import Packet


class _NoopFastPathHooks:
    """Fast-path hooks for the stateless forwarder.

    No flow state exists, so the generation never changes, expiry is a
    no-op and the learn token is a constant sentinel.
    """

    __slots__ = ("_nf",)
    supports_raw = True

    def __init__(self, nf: "NoopForwarder") -> None:
        self._nf = nf

    @staticmethod
    def generation() -> int:
        return 0

    @staticmethod
    def begin_burst(now: int) -> int:
        return now

    @staticmethod
    def learn_token(packet: Packet) -> Optional[int]:
        return 0

    @staticmethod
    def rejuvenate(token: int, now: int) -> None:
        pass

    @staticmethod
    def apply(packet: Packet, action) -> Packet:
        out = packet.clone()
        out.device = action.out_device
        return out


class NoopForwarder(NetworkFunction):
    """Forward every packet to the paired device, untouched."""

    name = "noop"

    def __init__(self, device_a: int = 0, device_b: int = 1) -> None:
        if device_a == device_b:
            raise ValueError("devices must differ")
        self.device_a = device_a
        self.device_b = device_b
        self._forwarded_total = 0

    def process(self, packet: Packet, now: int) -> List[Packet]:
        out = packet.clone()
        if packet.device == self.device_a:
            out.device = self.device_b
        elif packet.device == self.device_b:
            out.device = self.device_a
        else:
            return []
        self._forwarded_total += 1
        return [out]

    def op_counters(self) -> Dict[str, int]:
        counters = {"forwarded": self._forwarded_total}
        counters.update(self.burst_counters())
        return counters

    def fastpath_hooks(self) -> _NoopFastPathHooks:
        return _NoopFastPathHooks(self)

    # -- checkpoint/restore ------------------------------------------------
    def checkpoint_state(self) -> Dict:
        """No flow state — only the counters, for seamless metrics."""
        return {
            "counters": {
                "forwarded": self._forwarded_total,
                "bursts": self._bursts_total,
                "burst_packets": self._burst_packets_total,
            }
        }

    def restore_state(self, state: Dict) -> None:
        counters = state.get("counters", {})
        self._forwarded_total = int(counters.get("forwarded", 0))
        self._bursts_total = int(counters.get("bursts", 0))
        self._burst_packets_total = int(counters.get("burst_packets", 0))
