"""No-op forwarding — the DPDK baseline NF (§6).

Receives on one port, transmits on the other, no inspection. Shows the
best latency/throughput the substrate can achieve; every NAT's extra cost
is measured against it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.nat.base import NetworkFunction
from repro.packets.headers import Packet


class NoopForwarder(NetworkFunction):
    """Forward every packet to the paired device, untouched."""

    name = "noop"

    def __init__(self, device_a: int = 0, device_b: int = 1) -> None:
        if device_a == device_b:
            raise ValueError("devices must differ")
        self.device_a = device_a
        self.device_b = device_b
        self._forwarded_total = 0

    def process(self, packet: Packet, now: int) -> List[Packet]:
        out = packet.clone()
        if packet.device == self.device_a:
            out.device = self.device_b
        elif packet.device == self.device_b:
            out.device = self.device_a
        else:
            return []
        self._forwarded_total += 1
        return [out]

    def op_counters(self) -> Dict[str, int]:
        counters = {"forwarded": self._forwarded_total}
        counters.update(self.burst_counters())
        return counters
