"""Static NAT configuration (the paper's CAP, Texp, EXT_IP triple, §4.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.packets.addresses import ip_to_int

#: The flow-table capacity both evaluated NATs support (§6).
DEFAULT_MAX_FLOWS = 65_535

#: Default flow timeout used in the first latency experiment: 2 seconds.
DEFAULT_EXPIRATION_TIME_US = 2_000_000

#: First external port handed out; index i maps to port START + i. It
#: defaults to 1 so that the full 65,535-flow table fits the 16-bit port
#: space (flow index 65,534 maps to port 65,535).
DEFAULT_START_PORT = 1


@dataclass(frozen=True)
class NatConfig:
    """Immutable NAT configuration shared by all NAT implementations."""

    external_ip: int = ip_to_int("192.0.2.1")
    internal_device: int = 0
    external_device: int = 1
    max_flows: int = DEFAULT_MAX_FLOWS
    expiration_time: int = DEFAULT_EXPIRATION_TIME_US  # microseconds
    start_port: int = DEFAULT_START_PORT

    def __post_init__(self) -> None:
        if self.max_flows <= 0:
            raise ValueError("max_flows must be positive")
        if self.expiration_time <= 0:
            raise ValueError("expiration_time must be positive")
        if self.internal_device == self.external_device:
            raise ValueError("internal and external devices must differ")
        if not 0 < self.start_port <= 0xFFFF:
            raise ValueError("start_port out of range")
        if self.start_port + self.max_flows - 1 > 0xFFFF:
            raise ValueError(
                "port range [start_port, start_port + max_flows) exceeds 65535"
            )
