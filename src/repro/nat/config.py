"""The unified NF configuration API (the paper's CAP, Texp, EXT_IP triple, §4.1).

:class:`NatConfig` is the single source of truth for the knobs every NAT
implementation shares — external IP, device pair, flow capacity, expiry,
and the external port range. All NF constructors
(:class:`~repro.nat.vignat.VigNat`,
:class:`~repro.nat.unverified.UnverifiedNat`,
:class:`~repro.nat.netfilter.NetfilterNat`, ...) accept one of these;
:meth:`NatConfig.resolve` is the shared shim that also keeps the legacy
per-field keyword signatures working (with a :class:`DeprecationWarning`).

For the sharded data path, :meth:`NatConfig.partition` splits one
configuration into N per-worker configurations whose external port
ranges are disjoint and exhaustive — each worker owns a slice of the
port space, so return traffic can be steered to the worker holding the
flow's state (see :mod:`repro.net.rss` and ``docs/SCALING.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Tuple

from repro.packets.addresses import ip_to_int

#: The flow-table capacity both evaluated NATs support (§6).
DEFAULT_MAX_FLOWS = 65_535

#: Default flow timeout used in the first latency experiment: 2 seconds.
DEFAULT_EXPIRATION_TIME_US = 2_000_000

#: First external port handed out; index i maps to port START + i. It
#: defaults to 1 so that the full 65,535-flow table fits the 16-bit port
#: space (flow index 65,534 maps to port 65,535).
DEFAULT_START_PORT = 1

#: The legacy constructor-argument order, shared by the positional shim
#: below and by the NF constructors' legacy keyword shims.
_LEGACY_FIELD_ORDER = (
    "external_ip",
    "internal_device",
    "external_device",
    "max_flows",
    "expiration_time",
    "start_port",
)


@dataclass(frozen=True, kw_only=True)
class NatConfig:
    """Immutable NAT configuration shared by all NAT implementations.

    Fields are keyword-only: the scattered positional signatures the NFs
    used to accept are consolidated here (positional construction still
    works through a deprecation shim, see module bottom).
    """

    external_ip: int = ip_to_int("192.0.2.1")
    internal_device: int = 0
    external_device: int = 1
    max_flows: int = DEFAULT_MAX_FLOWS
    expiration_time: int = DEFAULT_EXPIRATION_TIME_US  # microseconds
    start_port: int = DEFAULT_START_PORT

    def __post_init__(self) -> None:
        if self.max_flows <= 0:
            raise ValueError("max_flows must be positive")
        if self.expiration_time <= 0:
            raise ValueError("expiration_time must be positive")
        if self.internal_device == self.external_device:
            raise ValueError("internal and external devices must differ")
        if not 0 < self.start_port <= 0xFFFF:
            raise ValueError("start_port out of range")
        if self.start_port + self.max_flows - 1 > 0xFFFF:
            raise ValueError(
                "port range [start_port, start_port + max_flows) exceeds 65535"
            )

    # -- the external port range this configuration owns ---------------------
    @property
    def end_port(self) -> int:
        """The last external port of this configuration (inclusive)."""
        return self.start_port + self.max_flows - 1

    def port_range(self) -> range:
        """The external ports this configuration allocates from."""
        return range(self.start_port, self.start_port + self.max_flows)

    def owns_port(self, port: int) -> bool:
        """True when ``port`` falls inside this configuration's range."""
        return self.start_port <= port <= self.end_port

    # -- sharding -------------------------------------------------------------
    def partition(self, n: int) -> Tuple["NatConfig", ...]:
        """Split into ``n`` per-worker configs with disjoint port ranges.

        The union of the shards' port ranges is exactly this config's
        range (disjoint and exhaustive), and the shards' flow capacities
        sum to ``max_flows`` — so N workers together hold exactly the
        state one worker would, and any external port maps to exactly
        one owning worker. Everything else (external IP, devices,
        expiry) is inherited unchanged.
        """
        if n <= 0:
            raise ValueError("worker count must be positive")
        if n > self.max_flows:
            raise ValueError(
                f"cannot partition {self.max_flows} flows across {n} workers"
            )
        # The split below hands out *ports* in lockstep with flow
        # capacity, so it is only disjoint-and-exhaustive when the whole
        # port range actually exists. ``__post_init__`` makes that true
        # for any config built through a constructor, but a config can
        # reach here holding a range that escapes the 16-bit port space
        # (deserialization bypassing validation, a mutated frozen
        # instance) — and then the tail shards would own ports that no
        # packet can carry, silently shrinking capacity. Validate the
        # range itself up front rather than emit broken shards.
        if not 0 < self.start_port <= self.end_port <= 0xFFFF:
            raise ValueError(
                f"cannot partition: external port range [{self.start_port}, "
                f"{self.end_port}] does not fit the valid port space "
                f"[1, 65535]; refusing to emit truncated shards"
            )
        base, extra = divmod(self.max_flows, n)
        shards = []
        port = self.start_port
        for i in range(n):
            size = base + (1 if i < extra else 0)
            shards.append(replace(self, start_port=port, max_flows=size))
            port += size
        return tuple(shards)

    # -- the legacy-signature shim shared by all NF constructors ---------------
    @classmethod
    def resolve(
        cls,
        config: "NatConfig | None" = None,
        *,
        owner: str = "NetworkFunction",
        **legacy: int,
    ) -> "NatConfig":
        """Normalize an NF constructor's arguments to one ``NatConfig``.

        ``resolve(cfg)`` returns ``cfg``; ``resolve(None)`` returns the
        defaults; ``resolve(external_ip=..., max_flows=...)`` — the old
        scattered per-field signature — still works but emits a
        :class:`DeprecationWarning` naming the NF class.
        """
        if legacy:
            if config is not None:
                raise TypeError(
                    f"{owner}: pass either a NatConfig or per-field keyword "
                    "arguments, not both"
                )
            unknown = set(legacy) - set(_LEGACY_FIELD_ORDER)
            if unknown:
                raise TypeError(
                    f"{owner}: unknown configuration field(s) {sorted(unknown)}"
                )
            warnings.warn(
                f"{owner}(**fields) is deprecated; pass "
                f"{owner}(NatConfig(...)) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return cls(**legacy)
        return config if config is not None else cls()


# Positional construction predates the keyword-only consolidation; keep it
# working through a shim that warns and maps arguments in the legacy order.
_dataclass_init = NatConfig.__init__


def _init_with_positional_shim(self: NatConfig, *args: int, **kwargs: int) -> None:
    if args:
        if len(args) > len(_LEGACY_FIELD_ORDER):
            raise TypeError(
                f"NatConfig takes at most {len(_LEGACY_FIELD_ORDER)} "
                f"positional arguments ({len(args)} given)"
            )
        warnings.warn(
            "positional NatConfig arguments are deprecated; "
            "use keyword arguments",
            DeprecationWarning,
            stacklevel=2,
        )
        for name, value in zip(_LEGACY_FIELD_ORDER, args):
            if name in kwargs:
                raise TypeError(f"NatConfig got multiple values for {name!r}")
            kwargs[name] = value
    _dataclass_init(self, **kwargs)


NatConfig.__init__ = _init_with_positional_shim  # type: ignore[method-assign]
