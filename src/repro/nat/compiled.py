"""Compiled per-flow actions: the fast path as a specialized closure.

The replay cache (:mod:`repro.nat.fastpath`) already skips the slow
path, but a hit still pays generic per-packet Python: a
:class:`~repro.packets.lazy.LazyPacket` view, an op-list interpreter,
one method call per field write and per checksum patch. This module
goes one step further, the way OVS compiles a megaflow into an action
list the datapath executes without consulting the classifier: at learn
time each flow's rewrite is *compiled* into a :class:`CompiledAction`
whose work per packet is three struct reads, one or two folded RFC 1624
delta applications, and a single ``bytes`` splice.

What makes the compilation sound:

- **The flow key pins the rewritten region.** Frame bytes 26..38
  (src ip, dst ip, src port, dst port) are part of the microflow key,
  so for every packet of the flow they are *constants* — the compiled
  action carries their post-rewrite value as a precomputed 12-byte
  string (``mid12``) and never reads them again.
- **Checksum deltas fold.** ``checksum_apply_delta`` adds a
  non-negative delta and folds; folding is congruence mod 0xFFFF on
  positive sums, so applying deltas ``d1`` then ``d2`` is bit-identical
  to applying ``d1 + d2`` once. All unconditional patch calls therefore
  collapse into one constant per checksum field.
- **RFC 768 bounds the folding.** A UDP checksum of 0 means "no
  checksum", and the slow path re-checks for 0 before *each* of its L4
  patch calls — an intermediate patch may land on 0, disabling the
  rest. So for UDP the L4 deltas are folded only *within* each
  slow-path patch call (one stage per call, zero-checked between
  stages); for TCP, which has no such sentinel, every stage folds into
  a single constant.
- **Learn-time verification backstops the compiler.** The caller
  (``FastPathNat``) byte-compares the compiled output against the slow
  path's actual output before installing a closure, exactly as it
  already does for replayed actions. A miscompiled closure is never
  installed.

Batch application is struct-of-arrays over the raw burst: the caller
extracts every frame's key in one pass, partitions the burst into
maximal same-flow runs, and hands each run's buffers to
:meth:`CompiledAction.apply_batch` — one dict lookup, one generation
check and one rejuvenation per run instead of per packet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.packets.checksum import checksum_delta_u16, checksum_delta_u32
from repro.packets.headers import ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP, Ipv4Header
from repro.packets.lazy import (
    OFF_ETHERTYPE,
    OFF_FLAGS_FRAG,
    OFF_IP_CSUM,
    OFF_PROTO,
    OFF_SRC_IP,
    OFF_TCP_CSUM,
    OFF_UDP_CSUM,
    OFF_VERSION_IHL,
)

_U16 = struct.Struct(">H")
#: src_ip, dst_ip, src_port, dst_port — wire order at offset 26.
_MID = struct.Struct(">IIHH")
_MID_END = OFF_SRC_IP + _MID.size  # 38: first byte after dst_port

_ETH_HI = ETHERTYPE_IPV4 >> 8
_ETH_LO = ETHERTYPE_IPV4 & 0xFF
_MIN_LEN_UDP = OFF_UDP_CSUM + 2
_MIN_LEN_TCP = OFF_TCP_CSUM + 4

#: A microflow key: (device, proto, src_ip, src_port, dst_ip, dst_port).
FlowKey = Tuple[int, int, int, int, int, int]


def raw_flow_key(buf, device: int) -> Optional[FlowKey]:
    """The microflow key straight off the frame bytes, or None.

    Byte-for-byte the same eligibility rules and key as
    :meth:`~repro.packets.lazy.LazyPacket.flow_key`, but without
    constructing a view object: index checks plus one
    ``struct.unpack_from`` for the whole 5-tuple region.
    """
    if len(buf) < _MIN_LEN_UDP:
        return None
    if buf[OFF_ETHERTYPE] != _ETH_HI or buf[OFF_ETHERTYPE + 1] != _ETH_LO:
        return None
    if buf[OFF_VERSION_IHL] != Ipv4Header.VERSION_IHL:
        return None
    # flags/frag-offset word: MF or a nonzero offset → not cacheable.
    if buf[OFF_FLAGS_FRAG] & 0x3F or buf[OFF_FLAGS_FRAG + 1]:
        return None
    proto = buf[OFF_PROTO]
    if proto == PROTO_TCP:
        if len(buf) < _MIN_LEN_TCP:
            return None
    elif proto != PROTO_UDP:
        return None
    src_ip, dst_ip, src_port, dst_port = _MID.unpack_from(buf, OFF_SRC_IP)
    return (device, proto, src_ip, src_port, dst_ip, dst_port)


def _build_closure(
    mid12: bytes,
    ip_delta: int,
    l4_stages: Tuple[int, ...],
    l4_offset: int,
    udp: bool,
    identity: bool,
):
    """Generate the per-frame rewrite closure for one flow's constants.

    Three shapes, selected at compile time so the per-packet code has
    no branches on the flow's properties: identity (no rewrite — the
    frame passes through as-is), TCP (every checksum stage folded into
    one constant, no sentinel checks), UDP (staged deltas with the
    RFC 768 zero-check between stages). The RFC 1624 fold is inlined —
    ``apply_delta(c, d) = ~fold(~c + d)`` — so a packet costs two
    struct reads, the folds, and a single ``bytes`` splice.
    """
    unpack_from = _U16.unpack_from
    pack = _U16.pack
    ip_off = OFF_IP_CSUM
    mid_end = _MID_END
    l4_end = l4_offset + 2

    if identity:
        def apply_one(buf) -> bytes:
            return bytes(buf)

        return apply_one

    if not udp:
        stage = l4_stages[0]

        def apply_one(buf) -> bytes:
            x = (~unpack_from(buf, ip_off)[0] & 0xFFFF) + ip_delta
            while x > 0xFFFF:
                x = (x & 0xFFFF) + (x >> 16)
            y = (~unpack_from(buf, l4_offset)[0] & 0xFFFF) + stage
            while y > 0xFFFF:
                y = (y & 0xFFFF) + (y >> 16)
            return b"".join(
                (
                    buf[:ip_off],
                    pack(~x & 0xFFFF),
                    mid12,
                    buf[mid_end:l4_offset],
                    pack(~y & 0xFFFF),
                    buf[l4_end:],
                )
            )

        return apply_one

    def apply_one(buf) -> bytes:
        x = (~unpack_from(buf, ip_off)[0] & 0xFFFF) + ip_delta
        while x > 0xFFFF:
            x = (x & 0xFFFF) + (x >> 16)
        l4 = unpack_from(buf, l4_offset)[0]
        for delta in l4_stages:
            if l4 == 0:  # RFC 768: "no checksum" stays disabled
                break
            y = (~l4 & 0xFFFF) + delta
            while y > 0xFFFF:
                y = (y & 0xFFFF) + (y >> 16)
            l4 = ~y & 0xFFFF
        return b"".join(
            (
                buf[:ip_off],
                pack(~x & 0xFFFF),
                mid12,
                buf[mid_end:l4_offset],
                pack(l4),
                buf[l4_end:],
            )
        )

    return apply_one


@dataclass(slots=True)
class CompiledAction:
    """One flow's rewrite, specialized down to constants.

    ``mid12`` is the post-rewrite value of frame bytes
    [26, 38) — both IPs and both ports — which the flow key proves
    constant across the flow's packets. ``ip_delta`` is the folded
    RFC 1624 delta for the IPv4 header checksum. ``l4_stages`` holds
    one folded delta per slow-path L4 patch call (a single element for
    TCP, where every call folds together; up to four for UDP, whose
    zero-checksum sentinel is re-checked between calls). ``apply_one``
    is the generated closure over those constants — the thing the data
    path actually runs.
    """

    mid12: bytes
    ip_delta: int
    l4_stages: Tuple[int, ...]
    l4_offset: int
    udp: bool
    identity: bool
    out_device: int
    token: Any
    generation: int
    apply_one: Any = None

    def __post_init__(self) -> None:
        if self.apply_one is None:
            self.apply_one = _build_closure(
                self.mid12,
                self.ip_delta,
                self.l4_stages,
                self.l4_offset,
                self.udp,
                self.identity,
            )

    def apply(self, buf) -> bytes:
        """The compiled rewrite of one frame: reads, folds, one splice."""
        return self.apply_one(buf)

    def apply_batch(self, bufs: Sequence) -> List[bytes]:
        """Apply the closure across one same-flow run of frame buffers."""
        apply_one = self.apply_one
        return [apply_one(buf) for buf in bufs]


def compile_action(key: FlowKey, action) -> CompiledAction:
    """Compile a verified :class:`CachedAction` for flow ``key``.

    The pre-rewrite endpoint values are read off the key (the key *is*
    the packet's endpoints); the post-rewrite values come from the
    action. Delta terms are emitted per slow-path patch call in call
    order — IP-header, L4-for-src-ip, L4-for-src-port, then the same
    for dst — and folded exactly as far as the slow path's own
    zero-checks allow (see module docstring).
    """
    _, proto, src_ip, src_port, dst_ip, dst_port = key
    new_src = action.src if action.src is not None else (src_ip, src_port)
    new_dst = action.dst if action.dst is not None else (dst_ip, dst_port)
    ip_delta = 0
    stages: List[int] = []
    for old_pair, new_pair, rewritten in (
        ((src_ip, src_port), new_src, action.src is not None),
        ((dst_ip, dst_port), new_dst, action.dst is not None),
    ):
        if not rewritten:
            continue
        ip_words = checksum_delta_u32(old_pair[0], new_pair[0])
        ip_delta += ip_words[0] + ip_words[1]
        # One stage per slow-path L4 patch call: _patch_l4_for_ip
        # (both address words fold — no zero-check between them), then
        # _patch_l4_for_port.
        stages.append(ip_words[0] + ip_words[1])
        stages.append(checksum_delta_u16(old_pair[1], new_pair[1]))
    udp = proto == PROTO_UDP
    if not udp and stages:
        # TCP never zero-checks: every stage folds into one constant.
        stages = [sum(stages)]
    return CompiledAction(
        mid12=_MID.pack(new_src[0], new_dst[0], new_src[1], new_dst[1]),
        ip_delta=ip_delta,
        l4_stages=tuple(stages),
        l4_offset=OFF_UDP_CSUM if udp else OFF_TCP_CSUM,
        udp=udp,
        identity=not stages,
        out_device=action.out_device,
        token=action.token,
        generation=action.generation,
    )


__all__ = [
    "CompiledAction",
    "FlowKey",
    "compile_action",
    "raw_flow_key",
]
