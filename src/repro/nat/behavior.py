"""RFC 4787 NAT behavioural variants — an extension beyond the paper.

The paper's VigNat implements the strictest classic behaviour
(per-5-tuple mappings, the paper's reading of RFC 3022). Real NAT
deployments are classified by RFC 4787 along two axes, and follow-on
work on NAT verification has to handle all of them:

- **mapping behaviour** — when does an internal endpoint reuse its
  external port? Endpoint-independent (EIM: one port per internal
  (ip, port)), address-dependent (ADM), or address-and-port-dependent
  (APDM: one port per 5-tuple — VigNat's behaviour);
- **filtering behaviour** — which inbound packets may use a mapping?
  Endpoint-independent (EIF: anyone who knows the port — "full cone"),
  address-dependent (ADF: only remote IPs the host contacted), or
  address-and-port-dependent (APDF: only the exact remote endpoint —
  "symmetric", VigNat's behaviour);
- plus **hairpinning** (RFC 4787 REQ-9): internal hosts reaching other
  internal hosts through the NAT's external address.

:class:`BehavioralNat` implements the full matrix over libVig
structures. It is an *unverified extension* (its per-mapping permitted-
remote sets for ADF are dynamic state outside the current contract
fragment); the test-suite classifies each variant with the standard
STUN-style probes and demonstrates that VigNat's behaviour equals
APDM+APDF — exactly the corner the paper verified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.libvig.double_chain import DoubleChain
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.flow import flow_id_of_packet
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.headers import Packet


class MappingBehavior(enum.Enum):
    """RFC 4787 §4.1 mapping behaviours."""

    ENDPOINT_INDEPENDENT = "EIM"
    ADDRESS_DEPENDENT = "ADM"
    ADDRESS_AND_PORT_DEPENDENT = "APDM"


class FilteringBehavior(enum.Enum):
    """RFC 4787 §5 filtering behaviours."""

    ENDPOINT_INDEPENDENT = "EIF"
    ADDRESS_DEPENDENT = "ADF"
    ADDRESS_AND_PORT_DEPENDENT = "APDF"


@dataclass
class _Mapping:
    """One external-port binding plus its filtering state."""

    internal_ip: int
    internal_port: int
    protocol: int
    external_port: int
    #: Remote endpoints this mapping has sent to (drives filtering).
    remotes: Set[Tuple[int, int]] = field(default_factory=set)


class BehavioralNat(NetworkFunction):
    """A NAT parameterized over the RFC 4787 behaviour matrix."""

    name = "behavioral-nat"

    def __init__(
        self,
        config: NatConfig | None = None,
        mapping: MappingBehavior = MappingBehavior.ENDPOINT_INDEPENDENT,
        filtering: FilteringBehavior = FilteringBehavior.ENDPOINT_INDEPENDENT,
        hairpinning: bool = True,
    ) -> None:
        self.config = config if config is not None else NatConfig()
        self.mapping = mapping
        self.filtering = filtering
        self.hairpinning = hairpinning
        self._by_key: Dict[tuple, _Mapping] = {}
        self._by_port: Dict[Tuple[int, int], _Mapping] = {}  # (port, proto)
        self._chain = DoubleChain(self.config.max_flows)
        self._index_of_port: Dict[int, int] = {}
        self._port_of_index: Dict[int, Tuple[int, int]] = {}
        self._dropped_total = 0
        self._forwarded_total = 0

    # -- mapping keys per RFC 4787 §4.1 ------------------------------------
    def _mapping_key(self, packet: Packet) -> tuple:
        fid = flow_id_of_packet(packet)
        if self.mapping is MappingBehavior.ENDPOINT_INDEPENDENT:
            return (fid.src_ip, fid.src_port, fid.protocol)
        if self.mapping is MappingBehavior.ADDRESS_DEPENDENT:
            return (fid.src_ip, fid.src_port, fid.dst_ip, fid.protocol)
        return (fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol)

    # -- bookkeeping -----------------------------------------------------------
    def mapping_count(self) -> int:
        """Number of live external-port bindings."""
        return len(self._by_port)

    def op_counters(self) -> Dict[str, int]:
        return {
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
            "mappings": len(self._by_port),
        }

    def _expire(self, now: int) -> None:
        threshold = now - self.config.expiration_time + 1
        while True:
            index = self._chain.expire_one_index(threshold)
            if index is None:
                return
            port_key = self._port_of_index.pop(index)
            mapping = self._by_port.pop(port_key)
            del self._index_of_port[mapping.external_port]
            key = self._key_of_mapping(mapping)
            del self._by_key[key]

    def _key_of_mapping(self, mapping: _Mapping) -> tuple:
        if self.mapping is MappingBehavior.ENDPOINT_INDEPENDENT:
            return (mapping.internal_ip, mapping.internal_port, mapping.protocol)
        # For ADM/APDM the key includes remote parts; they are stored at
        # creation time on the mapping itself.
        return mapping._creation_key  # type: ignore[attr-defined]

    def _create_mapping(self, packet: Packet, key: tuple, now: int) -> Optional[_Mapping]:
        index = self._chain.allocate_new_index(now)
        if index is None:
            return None
        fid = flow_id_of_packet(packet)
        external_port = self.config.start_port + index
        mapping = _Mapping(
            internal_ip=fid.src_ip,
            internal_port=fid.src_port,
            protocol=fid.protocol,
            external_port=external_port,
        )
        mapping._creation_key = key  # type: ignore[attr-defined]
        self._by_key[key] = mapping
        self._by_port[(external_port, fid.protocol)] = mapping
        self._index_of_port[external_port] = index
        self._port_of_index[index] = (external_port, fid.protocol)
        return mapping

    # -- packet path --------------------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        self._expire(now)
        if not packet.is_tcpudp_ipv4():
            self._dropped_total += 1
            return []
        if packet.device == self.config.internal_device:
            if (
                self.hairpinning
                and packet.ipv4 is not None
                and packet.ipv4.dst_ip == self.config.external_ip
            ):
                return self._hairpin(packet, now)
            return self._outbound(packet, now)
        if packet.device == self.config.external_device:
            return self._inbound(packet, now)
        self._dropped_total += 1
        return []

    def _outbound(self, packet: Packet, now: int) -> List[Packet]:
        key = self._mapping_key(packet)
        mapping = self._by_key.get(key)
        if mapping is None:
            mapping = self._create_mapping(packet, key, now)
            if mapping is None:
                self._dropped_total += 1
                return []
        else:
            self._chain.rejuvenate_index(
                self._index_of_port[mapping.external_port], now
            )
        fid = flow_id_of_packet(packet)
        mapping.remotes.add((fid.dst_ip, fid.dst_port))
        out = packet.clone()
        rewrite_source(out, self.config.external_ip, mapping.external_port)
        out.device = self.config.external_device
        self._forwarded_total += 1
        return [out]

    def _filter_permits(self, mapping: _Mapping, remote_ip: int, remote_port: int) -> bool:
        if self.filtering is FilteringBehavior.ENDPOINT_INDEPENDENT:
            return True
        if self.filtering is FilteringBehavior.ADDRESS_DEPENDENT:
            return any(ip == remote_ip for ip, _port in mapping.remotes)
        return (remote_ip, remote_port) in mapping.remotes

    def _inbound(self, packet: Packet, now: int) -> List[Packet]:
        fid = flow_id_of_packet(packet)
        if fid.dst_ip != self.config.external_ip:
            self._dropped_total += 1
            return []
        mapping = self._by_port.get((fid.dst_port, fid.protocol))
        if mapping is None or not self._filter_permits(
            mapping, fid.src_ip, fid.src_port
        ):
            self._dropped_total += 1
            return []
        self._chain.rejuvenate_index(self._index_of_port[mapping.external_port], now)
        out = packet.clone()
        rewrite_destination(out, mapping.internal_ip, mapping.internal_port)
        out.device = self.config.internal_device
        self._forwarded_total += 1
        return [out]

    def _hairpin(self, packet: Packet, now: int) -> List[Packet]:
        """RFC 4787 REQ-9: internal traffic to the NAT's own address.

        The packet is translated twice: its source acquires an external
        mapping (as for any outbound packet) and its destination is
        resolved through the target's existing mapping, then it is sent
        back out the *internal* interface ("external source" flavour:
        the receiver sees the sender's external address).
        """
        fid = flow_id_of_packet(packet)
        target = self._by_port.get((fid.dst_port, fid.protocol))
        if target is None:
            self._dropped_total += 1
            return []
        key = self._mapping_key(packet)
        mapping = self._by_key.get(key)
        if mapping is None:
            mapping = self._create_mapping(packet, key, now)
            if mapping is None:
                self._dropped_total += 1
                return []
        mapping.remotes.add((fid.dst_ip, fid.dst_port))
        out = packet.clone()
        rewrite_source(out, self.config.external_ip, mapping.external_port)
        rewrite_destination(out, target.internal_ip, target.internal_port)
        out.device = self.config.internal_device
        self._forwarded_total += 1
        return [out]
