"""Network functions: VigNAT and the evaluation baselines.

- :mod:`repro.nat.config` — :class:`NatConfig`, the unified NF
  configuration every NAT accepts (and ``NatConfig.partition`` for the
  sharded data path),
- :mod:`repro.nat.vignat` — the verified NAT (the paper's contribution),
- :mod:`repro.nat.cgnat` — the stateless deterministic CGNAT
  (``DetNat``, a closed-form RFC 7422-style port bijection),
- :mod:`repro.nat.unverified` — the unverified DPDK NAT baseline,
- :mod:`repro.nat.netfilter` — the Linux NetFilter/conntrack-style NAT,
- :mod:`repro.nat.fastpath` — the microflow action cache over any of
  the above (`FastPathNat`),
- :mod:`repro.nat.compiled` — learned rewrites compiled into
  batch-applied closures (`CompiledAction`, the ``"compiled"`` mode),
- :mod:`repro.nat.noop` — DPDK no-op forwarding,
- :mod:`repro.nat.firewall` — a second verified NF (stateful firewall),
- :mod:`repro.nat.discard` — the §3 discard-protocol worked example.

The names exported here are the package's stable public surface; code
outside the repository should import from ``repro.nat`` directly.
"""

from repro.nat.base import NetworkFunction
from repro.nat.bridge import BridgeConfig, VigBridge
from repro.nat.cgnat import CgnatConfig, DetNat
from repro.nat.config import NatConfig
from repro.nat.compiled import CompiledAction, compile_action, raw_flow_key
from repro.nat.discard import DiscardNF
from repro.nat.fastpath import (
    FASTPATH_MODES,
    CachedAction,
    FastPathNat,
    normalize_fastpath,
)
from repro.nat.firewall import VigFirewall
from repro.nat.flow import Flow, FlowId, flow_id_of_packet
from repro.nat.icmp_ext import IcmpAwareNat
from repro.nat.limiter import LimiterConfig, VigLimiter
from repro.nat.netfilter import NetfilterNat
from repro.nat.noop import NoopForwarder
from repro.nat.unverified import UnverifiedNat
from repro.nat.vignat import VigNat

__all__ = [
    "FASTPATH_MODES",
    "BridgeConfig",
    "CachedAction",
    "CgnatConfig",
    "CompiledAction",
    "DetNat",
    "DiscardNF",
    "FastPathNat",
    "compile_action",
    "normalize_fastpath",
    "raw_flow_key",
    "Flow",
    "FlowId",
    "IcmpAwareNat",
    "LimiterConfig",
    "NatConfig",
    "NetfilterNat",
    "NetworkFunction",
    "NoopForwarder",
    "UnverifiedNat",
    "VigBridge",
    "VigFirewall",
    "VigLimiter",
    "VigNat",
    "flow_id_of_packet",
]
