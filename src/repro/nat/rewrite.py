"""Header rewriting with incremental checksum patching.

The translation itself: substituting the source (outbound) or destination
(inbound) endpoint of a packet and patching the IPv4 header checksum and
the TCP/UDP checksum incrementally per RFC 1624 — the same technique a
production NAT data path uses, and byte-for-byte equivalent to a full
recompute (the test-suite cross-checks the two).
"""

from __future__ import annotations

from repro.packets.checksum import checksum_update_u16, checksum_update_u32
from repro.packets.headers import Packet, UdpHeader


def _patch_l4_for_ip(packet: Packet, old_ip: int, new_ip: int) -> None:
    """Patch the L4 checksum for an address change in the pseudo-header."""
    assert packet.l4 is not None
    if isinstance(packet.l4, UdpHeader) and packet.l4.checksum == 0:
        return  # UDP checksum disabled: stays disabled
    packet.l4.checksum = checksum_update_u32(packet.l4.checksum, old_ip, new_ip)


def _patch_l4_for_port(packet: Packet, old_port: int, new_port: int) -> None:
    """Patch the L4 checksum for a port field change."""
    assert packet.l4 is not None
    if isinstance(packet.l4, UdpHeader) and packet.l4.checksum == 0:
        return
    packet.l4.checksum = checksum_update_u16(packet.l4.checksum, old_port, new_port)


def rewrite_source(packet: Packet, new_ip: int, new_port: int) -> None:
    """Rewrite src (ip, port) in place, patching both checksums."""
    if packet.ipv4 is None or packet.l4 is None:
        raise ValueError("cannot rewrite a packet without IPv4 and L4 headers")
    old_ip = packet.ipv4.src_ip
    old_port = packet.l4.src_port
    packet.ipv4.src_ip = new_ip
    packet.l4.src_port = new_port
    packet.ipv4.checksum = checksum_update_u32(packet.ipv4.checksum, old_ip, new_ip)
    _patch_l4_for_ip(packet, old_ip, new_ip)
    _patch_l4_for_port(packet, old_port, new_port)


def rewrite_destination(packet: Packet, new_ip: int, new_port: int) -> None:
    """Rewrite dst (ip, port) in place, patching both checksums."""
    if packet.ipv4 is None or packet.l4 is None:
        raise ValueError("cannot rewrite a packet without IPv4 and L4 headers")
    old_ip = packet.ipv4.dst_ip
    old_port = packet.l4.dst_port
    packet.ipv4.dst_ip = new_ip
    packet.l4.dst_port = new_port
    packet.ipv4.checksum = checksum_update_u32(packet.ipv4.checksum, old_ip, new_ip)
    _patch_l4_for_ip(packet, old_ip, new_ip)
    _patch_l4_for_port(packet, old_port, new_port)
