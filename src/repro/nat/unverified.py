"""The unverified DPDK NAT baseline (§6, "Unverified NAT").

Written the way "an experienced software developer with little
verification expertise" would: same RFC 3022 semantics and the same
65,535-flow budget as VigNat, but using a separate-chaining hash table
(mirroring the DPDK hash) and ad-hoc state handling sprinkled through the
packet path instead of contracted libVig structures.

Because nothing is proven about it, it ships with the kind of latent
edge-case defects the paper's introduction cites CVEs for. They are
deliberate, documented reproductions of real NAT bug classes, and the
fault-injection test-suite demonstrates each one while showing VigNat is
immune:

- **Eviction instead of drop when full**: when the table is full the
  developer "helpfully" evicts the least-recently-used flow even if it
  has not expired, silently breaking an established connection — a
  semantic deviation from Fig. 6 l.15 that no test of theirs caught.
- **Port leak on eviction, then crash** (cf. the Cisco NAT crash
  CVE-2015-6271 and hang CVE-2013-1138): the eviction path forgets to
  return the victim's external port to the free pool, so sustained flow
  churn past capacity eventually exhausts the port space, at which point
  flow creation raises instead of dropping the packet and the NF dies.
- **Checksum corruption for zero-checksum UDP reply traffic** on the
  inbound path only (hand-rolled rewrite code patches a disabled UDP
  checksum, emitting an invalid non-zero one).
- **Hash-flooding degradation**: chaining with no chain-length bound lets
  an adversary who can craft colliding 5-tuples degrade lookups to O(n),
  "hanging" the NAT — libVig's bounded open addressing cannot degrade
  past its fixed capacity.

On the happy path it is slightly *faster* than VigNat (fewer probes per
lookup thanks to chaining), which is what Figs. 12/14 measure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.libvig.hash_table import ChainingHashTable
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.flow import FlowId, flow_id_of_packet
from repro.nat.rewrite import rewrite_source
from repro.packets.checksum import checksum_update_u16, checksum_update_u32
from repro.packets.headers import Packet


class NatCrash(RuntimeError):
    """The unverified NAT hit an unhandled edge case and died."""


@dataclass(slots=True)
class _Entry:
    internal_id: FlowId
    external_port: int
    last_seen: int


class _UnverifiedFastPathHooks:
    """Fast-path hooks over the unverified NAT's ad-hoc state.

    ``apply`` replays the NAT's *own* rewrite code per direction —
    including the hand-rolled inbound patch that corrupts disabled UDP
    checksums. The fast path memoizes the NF as it is, bugs included;
    fixing them here would make the cached path diverge from the slow
    path the differential harness compares against.

    ``supports_raw`` is False: the raw byte path only replays the
    shared RFC-compliant rewrite helpers, which this NF's inbound path
    deliberately does not use.
    """

    __slots__ = ("_nat",)
    supports_raw = False

    def __init__(self, nat: "UnverifiedNat") -> None:
        self._nat = nat

    def generation(self) -> int:
        return self._nat._generation

    def begin_burst(self, now: int) -> int:
        self._nat._expire(now)
        return now

    def learn_token(self, packet: Packet) -> Optional[_Entry]:
        nat = self._nat
        flow_id = flow_id_of_packet(packet)
        if packet.device == nat.config.internal_device:
            return nat._by_internal.get(flow_id)
        if packet.device == nat.config.external_device:
            return nat._by_external.get(flow_id)
        return None

    def rejuvenate(self, token: _Entry, now: int) -> None:
        self._nat._touch(token.external_port, token, now)

    def apply(self, packet: Packet, action) -> Packet:
        out = packet.clone()
        if packet.device == self._nat.config.internal_device:
            rewrite_source(out, *action.src)
        else:
            # The inbound path's hand-rolled patch, verbatim (see
            # _inbound): unconditional, so a zero UDP checksum comes
            # out wrong on both paths alike.
            assert out.ipv4 is not None and out.l4 is not None
            new_ip, new_port = action.dst
            old_ip = out.ipv4.dst_ip
            old_port = out.l4.dst_port
            out.ipv4.dst_ip = new_ip
            out.l4.dst_port = new_port
            out.ipv4.checksum = checksum_update_u32(out.ipv4.checksum, old_ip, new_ip)
            out.l4.checksum = checksum_update_u32(out.l4.checksum, old_ip, new_ip)
            out.l4.checksum = checksum_update_u16(out.l4.checksum, old_port, new_port)
        out.device = action.out_device
        return out

    def warm_entries(self):
        """(key, action) pairs for both directions of every live flow.

        Consumed by :meth:`FastPathNat.warm` after a standby restores a
        checkpoint, so the promoted NF's first packets hit the cache
        instead of all missing at once. Flows are walked newest-first;
        if the cache's capacity cap truncates warming, the sacrificed
        entries belong to the flows closest to expiry.
        """
        from repro.nat.fastpath import CachedAction

        nat = self._nat
        config = nat.config
        for entry in reversed(list(nat._lru.values())):
            fid = entry.internal_id
            yield (
                (
                    config.internal_device,
                    fid.protocol,
                    fid.src_ip,
                    fid.src_port,
                    fid.dst_ip,
                    fid.dst_port,
                ),
                CachedAction(
                    src=(config.external_ip, entry.external_port),
                    dst=None,
                    out_device=config.external_device,
                    token=entry,
                    generation=0,
                ),
            )
            eid = nat._external_key(entry)
            yield (
                (
                    config.external_device,
                    eid.protocol,
                    eid.src_ip,
                    eid.src_port,
                    eid.dst_ip,
                    eid.dst_port,
                ),
                CachedAction(
                    src=None,
                    dst=(fid.src_ip, fid.src_port),
                    out_device=config.internal_device,
                    token=entry,
                    generation=0,
                ),
            )


class UnverifiedNat(NetworkFunction):
    """RFC 3022 NAT over a chaining hash table, no contracts, no proofs."""

    name = "unverified-nat"

    def __init__(self, config: NatConfig | None = None, **legacy: int) -> None:
        self.config = NatConfig.resolve(config, owner=type(self).__name__, **legacy)
        # Two lookup directions share the entry objects; the LRU order for
        # expiry lives in an insertion-ordered dict keyed by external port.
        self._by_internal = ChainingHashTable(self.config.max_flows)
        self._by_external = ChainingHashTable(self.config.max_flows)
        self._lru: "OrderedDict[int, _Entry]" = OrderedDict()
        self._next_port = self.config.start_port
        self._free_ports: List[int] = []
        self._dropped_total = 0
        self._forwarded_total = 0
        self._evicted_total = 0
        self._expired_total = 0
        self._expiry_scans_amortized = 0
        #: Bumped whenever an entry is created or removed; checked by
        #: the microflow cache before replaying an action.
        self._generation = 0
        #: Optional per-flow delta observer (see base.delta_sink).
        self._delta_sink = None

    # -- introspection ----------------------------------------------------
    def flow_count(self) -> int:
        """Current number of live translation entries."""
        return len(self._lru)

    def has_flow(self, internal_id: FlowId) -> bool:
        """True when a translation exists for this internal 5-tuple."""
        return self._by_internal.has(internal_id)

    def op_counters(self) -> Dict[str, int]:
        counters = {
            "table_probes": self._by_internal.stats.probes
            + self._by_external.stats.probes,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
            "evicted": self._evicted_total,
            "expired": self._expired_total,
            "expiry_scans_amortized": self._expiry_scans_amortized,
        }
        counters.update(self.burst_counters())
        return counters

    # -- state handling (sprinkled, not contracted) ------------------------
    def _expire(self, now: int) -> None:
        threshold = now - self.config.expiration_time
        while self._lru:
            port, entry = next(iter(self._lru.items()))
            if entry.last_seen > threshold:
                break
            self._remove(port, entry)
            self._expired_total += 1

    def _remove(self, port: int, entry: _Entry, free_port: bool = True) -> None:
        del self._lru[port]
        self._by_internal.erase(entry.internal_id)
        self._by_external.erase(self._external_key(entry))
        self._generation += 1
        if free_port:
            self._free_ports.append(port)
        if self._delta_sink is not None:
            self._delta_sink(("free", port, None, entry.last_seen))

    def _external_key(self, entry: _Entry) -> FlowId:
        return FlowId(
            src_ip=entry.internal_id.dst_ip,
            src_port=entry.internal_id.dst_port,
            dst_ip=self.config.external_ip,
            dst_port=entry.external_port,
            protocol=entry.internal_id.protocol,
        )

    def _allocate_port(self) -> int:
        if self._free_ports:
            return self._free_ports.pop()
        port = self._next_port
        # BUG (documented above): when the port space is exhausted this
        # walks off the end of the 16-bit range and crashes instead of
        # dropping the packet.
        if port > 0xFFFF:
            raise NatCrash("port allocator overflow: no free external port")
        self._next_port += 1
        return port

    def _touch(self, port: int, entry: _Entry, now: int) -> None:
        entry.last_seen = now
        self._lru.move_to_end(port)
        if self._delta_sink is not None:
            self._delta_sink(("touch", port, None, now))

    def fastpath_hooks(self) -> _UnverifiedFastPathHooks:
        return _UnverifiedFastPathHooks(self)

    # -- checkpoint/restore ------------------------------------------------
    def delta_sink(self, sink) -> None:
        self._delta_sink = sink

    def checkpoint_state(self) -> Dict:
        """Entries in LRU order plus the ad-hoc allocator's two halves."""
        flows = []
        for port, entry in self._lru.items():
            fid = entry.internal_id
            flows.append(
                [
                    entry.last_seen,
                    [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol],
                    port,
                ]
            )
        return {
            "flows": flows,
            "next_port": self._next_port,
            "free_ports": list(self._free_ports),
            "generation": self._generation,
            "counters": {
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
                "evicted": self._evicted_total,
                "expired": self._expired_total,
                "expiry_scans_amortized": self._expiry_scans_amortized,
                "bursts": self._bursts_total,
                "burst_packets": self._burst_packets_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild the chained tables, LRU order and port pool, validated.

        The ad-hoc allocator has no contracts, but the restore still
        refuses inconsistent checkpoints: a port bound to two live flows,
        a free-listed port that is also live, or a port at or beyond
        ``next_port`` that was never handed out would all corrupt the
        pool silently.
        """
        if self._lru:
            raise ValueError("restore_state requires a freshly constructed NF")
        flows = state.get("flows", [])
        next_port = int(state.get("next_port", self.config.start_port))
        free_ports = [int(p) for p in state.get("free_ports", [])]
        seen_ports = set()
        seen_ids = set()
        for _last_seen, fid_fields, port in flows:
            if port in seen_ports:
                raise ValueError(f"port {port} bound to two flows in checkpoint")
            if not self.config.start_port <= port < next_port:
                raise ValueError(
                    f"port {port} outside the handed-out range "
                    f"[{self.config.start_port}, {next_port})"
                )
            seen_ports.add(port)
            internal_id = FlowId(*fid_fields)
            if internal_id in seen_ids:
                raise ValueError(
                    f"internal 5-tuple {internal_id} appears twice in checkpoint"
                )
            seen_ids.add(internal_id)
        for port in free_ports:
            if port in seen_ports:
                raise ValueError(f"port {port} both live and on the free list")
        for _last_seen, fid_fields, port in flows:
            entry = _Entry(
                internal_id=FlowId(*fid_fields),
                external_port=port,
                last_seen=int(_last_seen),
            )
            self._by_internal.put(entry.internal_id, entry)
            self._by_external.put(self._external_key(entry), entry)
            self._lru[port] = entry
        self._next_port = next_port
        self._free_ports = free_ports
        counters = state.get("counters", {})
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
        self._evicted_total = int(counters.get("evicted", 0))
        self._expired_total = int(counters.get("expired", 0))
        self._expiry_scans_amortized = int(counters.get("expiry_scans_amortized", 0))
        self._bursts_total = int(counters.get("bursts", 0))
        self._burst_packets_total = int(counters.get("burst_packets", 0))
        # Past the checkpoint's generation so no stale cached action fires.
        self._generation = int(state.get("generation", 0)) + 1

    def register_metrics(self, registry, labels=None) -> None:
        """Operation counters plus flow-table occupancy/expiry/eviction."""
        super().register_metrics(registry, labels)
        nf_labels = dict(labels or {})
        nf_labels["nf"] = self.name
        registry.gauge_fn(
            "flow_table_occupancy",
            self.flow_count,
            "live translation entries",
            nf_labels,
        )
        registry.gauge_fn(
            "flow_table_capacity",
            lambda: self.config.max_flows,
            "maximum translation entries",
            nf_labels,
        )
        registry.counter_fn(
            "flows_expired_total",
            lambda: self._expired_total,
            "flows removed by the expiry sweep",
            nf_labels,
        )
        registry.counter_fn(
            "flows_evicted_total",
            lambda: self._evicted_total,
            "live flows evicted by the buggy capacity path",
            nf_labels,
        )

    # -- packet path --------------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        self._expire(now)
        return self._translate(packet, now)

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """Burst entry point: the LRU expiry sweep runs once per burst."""
        self._note_burst(len(packets))
        if not packets:
            return []
        self._expire(now)
        self._expiry_scans_amortized += len(packets) - 1
        return [self._translate(packet, now) for packet in packets]

    def _translate(self, packet: Packet, now: int) -> List[Packet]:
        if not packet.is_tcpudp_ipv4():
            self._dropped_total += 1
            return []
        flow_id = flow_id_of_packet(packet)
        if packet.device == self.config.internal_device:
            return self._outbound(packet, flow_id, now)
        if packet.device == self.config.external_device:
            return self._inbound(packet, flow_id, now)
        self._dropped_total += 1
        return []

    def _outbound(self, packet: Packet, flow_id: FlowId, now: int) -> List[Packet]:
        entry: _Entry | None = self._by_internal.get(flow_id)
        if entry is None:
            if len(self._lru) >= self.config.max_flows:
                # BUG (documented above): evicts the oldest live flow
                # instead of dropping the newcomer as RFC 3022 requires —
                # and leaks the victim's port on the way out.
                port, victim = next(iter(self._lru.items()))
                self._remove(port, victim, free_port=False)
                self._evicted_total += 1
            port = self._allocate_port()
            entry = _Entry(internal_id=flow_id, external_port=port, last_seen=now)
            self._by_internal.put(flow_id, entry)
            self._by_external.put(self._external_key(entry), entry)
            self._lru[port] = entry
            self._generation += 1
            if self._delta_sink is not None:
                self._delta_sink(("create", port, flow_id, now))
        self._touch(entry.external_port, entry, now)
        out = packet.clone()
        rewrite_source(out, self.config.external_ip, entry.external_port)
        out.device = self.config.external_device
        self._forwarded_total += 1
        return [out]

    def _inbound(self, packet: Packet, flow_id: FlowId, now: int) -> List[Packet]:
        entry: _Entry | None = self._by_external.get(flow_id)
        if entry is None:
            self._dropped_total += 1
            return []
        self._touch(entry.external_port, entry, now)
        out = packet.clone()
        # Hand-rolled rewrite: patches the headers and checksums inline
        # rather than via a shared helper (the asymmetry noted above —
        # a zero UDP checksum is "patched" here, producing an invalid
        # non-zero checksum, where the outbound path handles it right).
        assert out.ipv4 is not None and out.l4 is not None
        old_ip = out.ipv4.dst_ip
        old_port = out.l4.dst_port
        new_ip = entry.internal_id.src_ip
        new_port = entry.internal_id.src_port
        out.ipv4.dst_ip = new_ip
        out.l4.dst_port = new_port
        out.ipv4.checksum = checksum_update_u32(out.ipv4.checksum, old_ip, new_ip)
        out.l4.checksum = checksum_update_u32(out.l4.checksum, old_ip, new_ip)
        out.l4.checksum = checksum_update_u16(out.l4.checksum, old_port, new_port)
        out.device = self.config.internal_device
        self._forwarded_total += 1
        return [out]
