"""Flow identifiers and flow-table entries.

A *flow ID* is the classic 5-tuple as seen on the wire at one interface.
A *flow* is a NAT translation entry: it remembers the internal 5-tuple
and the external port the NAT allocated, and can derive the 5-tuple the
same traffic bears on the external side. The flow's two IDs are the two
keys of the :class:`~repro.libvig.double_map.DoubleMap` flow table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.packets.headers import Packet


@dataclass(frozen=True, slots=True)
class FlowId:
    """The 5-tuple identifying a unidirectional flow at an interface."""

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FlowId":
        """The 5-tuple of the reply direction at the same interface."""
        return FlowId(
            src_ip=self.dst_ip,
            src_port=self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            protocol=self.protocol,
        )


def flow_id_of_packet(packet: Packet) -> FlowId:
    """Extract the flow ID from a TCP/UDP IPv4 packet (the paper's F(P))."""
    if packet.ipv4 is None or packet.l4 is None:
        raise ValueError("packet has no flow ID (not TCP/UDP over IPv4)")
    return FlowId(
        src_ip=packet.ipv4.src_ip,
        src_port=packet.l4.src_port,
        dst_ip=packet.ipv4.dst_ip,
        dst_port=packet.l4.dst_port,
        protocol=packet.ipv4.protocol,
    )


@dataclass(frozen=True, slots=True)
class Flow:
    """A NAT translation entry.

    ``internal_id`` is the flow as first seen arriving on the internal
    interface; ``external_port`` is the source port the NAT substitutes
    on the external side.
    """

    internal_id: FlowId
    external_port: int

    def external_id(self, external_ip: int) -> FlowId:
        """The flow ID that *reply* packets bear on the external interface.

        A reply arrives with the remote endpoint as source and the NAT's
        external (ip, port) as destination.
        """
        return FlowId(
            src_ip=self.internal_id.dst_ip,
            src_port=self.internal_id.dst_port,
            dst_ip=external_ip,
            dst_port=self.external_port,
            protocol=self.internal_id.protocol,
        )
