"""VigNat: the verified NAT — the paper's primary contribution.

The implementation follows the paper's architecture exactly: *all*
mutable state lives in libVig structures (a :class:`DoubleMap` flow table
plus a :class:`DoubleChain` allocator/ager), while the packet-processing
decisions live in the shared stateless function
:func:`repro.nat.core_logic.nat_loop_iteration` — the very same function
the Vigor toolchain explores symbolically (:mod:`repro.verif.nf_env`).
This class merely binds that function to the concrete library and to
real packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.expirator import expire_items
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.core_logic import nat_loop_iteration
from repro.nat.flow import Flow, FlowId, flow_id_of_packet
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.headers import Packet


class _ConcretePacketView:
    """Adapter exposing a concrete packet's fields to the stateless code."""

    __slots__ = ("packet",)

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    @property
    def ethertype(self) -> int:
        return self.packet.eth.ethertype

    @property
    def protocol(self) -> int:
        # A non-IPv4 packet never reaches the protocol check (the
        # stateless code tests ethertype first), but return a harmless
        # value for robustness.
        return self.packet.ipv4.protocol if self.packet.ipv4 is not None else 0

    @property
    def device(self) -> int:
        return self.packet.device

    @property
    def src_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.src_ip

    @property
    def dst_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.dst_ip

    @property
    def src_port(self) -> int:
        return self.packet.src_port

    @property
    def dst_port(self) -> int:
        return self.packet.dst_port

    def flow_id(self) -> FlowId:
        return flow_id_of_packet(self.packet)


class _ConcreteEnv:
    """Binds the stateless logic to libVig and real packet I/O."""

    def __init__(self, nat: "VigNat", packet: Packet, now: int) -> None:
        self._nat = nat
        self._packet = packet
        self._now = now
        self.outputs: List[Packet] = []

    def current_time(self) -> int:
        return self._now

    def expire_flows(self, min_time: int) -> None:
        self._nat._expired_total += expire_items(
            self._nat._chain, self._nat._flow_table, min_time
        )

    def receive(self) -> Optional[_ConcretePacketView]:
        return _ConcretePacketView(self._packet)

    def flow_table_get_internal(self, packet: _ConcretePacketView) -> Optional[int]:
        return self._nat._flow_table.get_by_a(packet.flow_id())

    def flow_table_get_external(self, packet: _ConcretePacketView) -> Optional[int]:
        return self._nat._flow_table.get_by_b(packet.flow_id())

    def flow_table_create(
        self, packet: _ConcretePacketView, now: int
    ) -> Optional[int]:
        index = self._nat._chain.allocate_new_index(now)
        if index is None:
            return None
        flow = Flow(
            internal_id=packet.flow_id(),
            external_port=self._nat.config.start_port + index,
        )
        self._nat._flow_table.put(index, flow)
        return index

    def flow_table_rejuvenate(self, index: int, now: int) -> None:
        self._nat._chain.rejuvenate_index(index, now)

    def flow_external_port(self, index: int) -> int:
        return self._nat._flow_table.get_value(index).external_port

    def flow_internal_endpoint(self, index: int) -> Tuple[int, int]:
        flow = self._nat._flow_table.get_value(index)
        return flow.internal_id.src_ip, flow.internal_id.src_port

    def emit(
        self,
        packet: _ConcretePacketView,
        device: int,
        src_ip: int,
        src_port: int,
        dst_ip: int,
        dst_port: int,
    ) -> None:
        out = packet.packet.clone()
        if (src_ip, src_port) != (packet.src_ip, packet.src_port):
            rewrite_source(out, src_ip, src_port)
        if (dst_ip, dst_port) != (packet.dst_ip, packet.dst_port):
            rewrite_destination(out, dst_ip, dst_port)
        out.device = device
        self.outputs.append(out)
        self._nat._forwarded_total += 1

    def drop(self, packet: _ConcretePacketView) -> None:
        self._nat._dropped_total += 1


class VigNat(NetworkFunction):
    """The verified NAT over libVig state (Fig. 6 semantics)."""

    name = "verified-nat"

    def __init__(self, config: NatConfig | None = None) -> None:
        self.config = config if config is not None else NatConfig()
        ext_ip = self.config.external_ip
        self._flow_table = DoubleMap(
            capacity=self.config.max_flows,
            key_a_of=lambda flow: flow.internal_id,
            key_b_of=lambda flow: flow.external_id(ext_ip),
        )
        self._chain = DoubleChain(self.config.max_flows)
        self._expired_total = 0
        self._dropped_total = 0
        self._forwarded_total = 0

    # -- introspection ----------------------------------------------------
    def flow_count(self) -> int:
        """Current number of live translation entries."""
        return self._flow_table.size()

    def has_flow(self, internal_id: FlowId) -> bool:
        """True when a translation exists for this internal 5-tuple."""
        return self._flow_table.get_by_a(internal_id) is not None

    def external_port_of(self, internal_id: FlowId) -> int | None:
        """External port allocated to this internal flow, if any."""
        index = self._flow_table.get_by_a(internal_id)
        if index is None:
            return None
        return self._flow_table.get_value(index).external_port

    def op_counters(self) -> Dict[str, int]:
        return {
            "map_probes": self._flow_table.probe_count,
            "expired": self._expired_total,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
        }

    # -- the packet path: the shared stateless logic over libVig ------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        """One loop iteration of Fig. 6: expire, update, forward."""
        env = _ConcreteEnv(self, packet, now)
        nat_loop_iteration(env, self.config)
        return env.outputs
