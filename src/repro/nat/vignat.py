"""VigNat: the verified NAT — the paper's primary contribution.

The implementation follows the paper's architecture exactly: *all*
mutable state lives in libVig structures (a :class:`DoubleMap` flow table
plus a :class:`DoubleChain` allocator/ager), while the packet-processing
decisions live in the shared stateless function
:func:`repro.nat.core_logic.nat_loop_iteration` — the very same function
the Vigor toolchain explores symbolically (:mod:`repro.verif.nf_env`).
This class merely binds that function to the concrete library and to
real packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.libvig.double_chain import DoubleChain
from repro.libvig.double_map import DoubleMap
from repro.libvig.expirator import expire_items
from repro.libvig.port_allocator import PortAllocator
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.core_logic import nat_loop_iteration
from repro.nat.fastpath import CachedAction, FlowKey, apply_endpoint_action
from repro.nat.flow import Flow, FlowId, flow_id_of_packet
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.headers import Packet


class _ConcretePacketView:
    """Adapter exposing a concrete packet's fields to the stateless code."""

    __slots__ = ("packet",)

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    @property
    def ethertype(self) -> int:
        return self.packet.eth.ethertype

    @property
    def protocol(self) -> int:
        # A non-IPv4 packet never reaches the protocol check (the
        # stateless code tests ethertype first), but return a harmless
        # value for robustness.
        return self.packet.ipv4.protocol if self.packet.ipv4 is not None else 0

    @property
    def device(self) -> int:
        return self.packet.device

    @property
    def src_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.src_ip

    @property
    def dst_ip(self) -> int:
        assert self.packet.ipv4 is not None
        return self.packet.ipv4.dst_ip

    @property
    def src_port(self) -> int:
        return self.packet.src_port

    @property
    def dst_port(self) -> int:
        return self.packet.dst_port

    def flow_id(self) -> FlowId:
        return flow_id_of_packet(self.packet)


class _ConcreteEnv:
    """Binds the stateless logic to libVig and real packet I/O.

    One env serves a whole burst: :meth:`rebind` points it at the next
    packet, and the expiry scan runs only on the first loop iteration —
    the stateless code still *requests* expiry every iteration (its
    verified structure is untouched), but within one burst all packets
    share one timestamp, so rescanning would find nothing to expire.
    """

    def __init__(self, nat: "VigNat", packet: Packet, now: int) -> None:
        self._nat = nat
        self._packet = packet
        self._now = now
        self._expiry_done = False
        self.outputs: List[Packet] = []

    def rebind(self, packet: Packet) -> None:
        """Point the env at the next packet of the burst."""
        self._packet = packet
        self.outputs = []

    def current_time(self) -> int:
        return self._now

    def expire_flows(self, min_time: int) -> None:
        if self._expiry_done:
            self._nat._expiry_scans_amortized += 1
            return
        self._expiry_done = True
        expired = expire_items(
            self._nat._chain,
            self._nat._flow_table,
            min_time,
            on_expire=self._nat._on_expire_delta(min_time),
        )
        self._nat._expired_total += expired
        if expired:
            # Flow indices were freed: any microflow-cache entry learned
            # against them is now stale.
            self._nat._generation += 1

    def receive(self) -> Optional[_ConcretePacketView]:
        return _ConcretePacketView(self._packet)

    def flow_table_get_internal(self, packet: _ConcretePacketView) -> Optional[int]:
        return self._nat._flow_table.get_by_a(packet.flow_id())

    def flow_table_get_external(self, packet: _ConcretePacketView) -> Optional[int]:
        return self._nat._flow_table.get_by_b(packet.flow_id())

    def flow_table_create(
        self, packet: _ConcretePacketView, now: int
    ) -> Optional[int]:
        index = self._nat._chain.allocate_new_index(now)
        if index is None:
            return None
        flow = Flow(
            internal_id=packet.flow_id(),
            external_port=self._nat.config.start_port + index,
        )
        self._nat._flow_table.put(index, flow)
        self._nat._generation += 1
        sink = self._nat._delta_sink
        if sink is not None:
            sink(("create", index, flow, now))
        return index

    def flow_table_rejuvenate(self, index: int, now: int) -> None:
        self._nat._chain.rejuvenate_index(index, now)
        sink = self._nat._delta_sink
        if sink is not None:
            sink(("touch", index, None, now))

    def flow_external_port(self, index: int) -> int:
        return self._nat._flow_table.get_value(index).external_port

    def flow_internal_endpoint(self, index: int) -> Tuple[int, int]:
        flow = self._nat._flow_table.get_value(index)
        return flow.internal_id.src_ip, flow.internal_id.src_port

    def emit(
        self,
        packet: _ConcretePacketView,
        device: int,
        src_ip: int,
        src_port: int,
        dst_ip: int,
        dst_port: int,
    ) -> None:
        out = packet.packet.clone()
        if (src_ip, src_port) != (packet.src_ip, packet.src_port):
            rewrite_source(out, src_ip, src_port)
        if (dst_ip, dst_port) != (packet.dst_ip, packet.dst_port):
            rewrite_destination(out, dst_ip, dst_port)
        out.device = device
        self.outputs.append(out)
        self._nat._forwarded_total += 1

    def drop(self, packet: _ConcretePacketView) -> None:
        self._nat._dropped_total += 1


class _VigNatFastPathHooks:
    """Microflow fast-path hooks over VigNat's libVig state.

    The fast path must keep the flow table's *observable* behavior
    identical to an all-slow-path run: the per-burst expiry scan still
    happens (here, once per burst — exactly what ``_ConcreteEnv``
    amortizes), and every hit rejuvenates its flow in the double chain,
    or sustained fast-path traffic would let live flows expire.
    """

    __slots__ = ("_nat",)
    supports_raw = True

    def __init__(self, nat: "VigNat") -> None:
        self._nat = nat

    def generation(self) -> int:
        return self._nat._generation

    def begin_burst(self, now: int) -> int:
        nat = self._nat
        now = nat._clamp_now(now)
        # The same clamped threshold the stateless logic computes
        # (Fig. 6 expire_flows; underflow-free, as P2 requires).
        if now >= nat.config.expiration_time:
            min_time = now - nat.config.expiration_time + 1
        else:
            min_time = 0
        expired = expire_items(
            nat._chain,
            nat._flow_table,
            min_time,
            on_expire=nat._on_expire_delta(min_time),
        )
        nat._expired_total += expired
        if expired:
            nat._generation += 1
        return now

    def learn_token(self, packet: Packet) -> Optional[int]:
        nat = self._nat
        flow_id = flow_id_of_packet(packet)
        if packet.device == nat.config.internal_device:
            return nat._flow_table.get_by_a(flow_id)
        if packet.device == nat.config.external_device:
            return nat._flow_table.get_by_b(flow_id)
        return None

    def rejuvenate(self, token: int, now: int) -> None:
        nat = self._nat
        nat._chain.rejuvenate_index(token, now)
        sink = nat._delta_sink
        if sink is not None:
            sink(("touch", token, None, now))

    @staticmethod
    def apply(packet: Packet, action) -> Packet:
        return apply_endpoint_action(packet, action)

    def warm_entries(self):
        """(flow key, action) pairs for every live flow, both directions.

        Feeds :meth:`~repro.nat.fastpath.FastPathNat.warm` at standby
        promotion. The actions are exactly what a learn on the flow's
        next packet would cache: outbound rewrites the source to the
        NAT's external endpoint; the reply rewrites the destination back
        to the internal endpoint. The token is the live flow index, so
        warmed hits rejuvenate just like learned ones. Flows are walked
        newest-first, so if the cache's capacity cap truncates warming,
        the entries sacrificed belong to the flows closest to expiry.
        """
        nat = self._nat
        config = nat.config
        ext_ip = config.external_ip
        cells = list(nat._chain.cells())
        for index, _touched in reversed(cells):
            flow = nat._flow_table.get_value(index)
            fid = flow.internal_id
            forward_key: FlowKey = (
                config.internal_device,
                fid.protocol,
                fid.src_ip,
                fid.src_port,
                fid.dst_ip,
                fid.dst_port,
            )
            yield (
                forward_key,
                CachedAction(
                    src=(ext_ip, flow.external_port),
                    dst=None,
                    out_device=config.external_device,
                    token=index,
                    generation=0,
                ),
            )
            eid = flow.external_id(ext_ip)
            reply_key: FlowKey = (
                config.external_device,
                eid.protocol,
                eid.src_ip,
                eid.src_port,
                eid.dst_ip,
                eid.dst_port,
            )
            yield (
                reply_key,
                CachedAction(
                    src=None,
                    dst=(fid.src_ip, fid.src_port),
                    out_device=config.internal_device,
                    token=index,
                    generation=0,
                ),
            )


class VigNat(NetworkFunction):
    """The verified NAT over libVig state (Fig. 6 semantics)."""

    name = "verified-nat"

    def __init__(self, config: NatConfig | None = None, **legacy: int) -> None:
        self.config = NatConfig.resolve(config, owner=type(self).__name__, **legacy)
        ext_ip = self.config.external_ip
        self._flow_table = DoubleMap(
            capacity=self.config.max_flows,
            key_a_of=lambda flow: flow.internal_id,
            key_b_of=lambda flow: flow.external_id(ext_ip),
        )
        self._chain = DoubleChain(self.config.max_flows)
        self._expired_total = 0
        self._dropped_total = 0
        self._forwarded_total = 0
        self._expiry_scans_amortized = 0
        self._clock_clamped = 0
        self._last_now = 0
        #: Bumped whenever the flow table changes shape (create/expire);
        #: the microflow cache checks it before replaying an action.
        self._generation = 0
        #: Optional per-flow delta observer (see base.delta_sink); None
        #: keeps the data path free of replication work.
        self._delta_sink = None

    # -- introspection ----------------------------------------------------
    def flow_count(self) -> int:
        """Current number of live translation entries."""
        return self._flow_table.size()

    def has_flow(self, internal_id: FlowId) -> bool:
        """True when a translation exists for this internal 5-tuple."""
        return self._flow_table.get_by_a(internal_id) is not None

    def external_port_of(self, internal_id: FlowId) -> int | None:
        """External port allocated to this internal flow, if any."""
        index = self._flow_table.get_by_a(internal_id)
        if index is None:
            return None
        return self._flow_table.get_value(index).external_port

    def op_counters(self) -> Dict[str, int]:
        counters = {
            "map_probes": self._flow_table.probe_count,
            "expired": self._expired_total,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
            "expiry_scans_amortized": self._expiry_scans_amortized,
            "clock_clamped": self._clock_clamped,
        }
        counters.update(self.burst_counters())
        return counters

    def _clamp_now(self, now: int) -> int:
        """Monotonic clock at the concrete-env boundary.

        libVig's double chain keeps timestamps non-decreasing and raises
        :class:`~repro.libvig.double_chain.TimeRegression` on violation —
        correct for the library, but a backwards hardware timestamp must
        not crash the NAT's data path (P2 is a crash-freedom proof). A
        regressing ``now`` is clamped to the newest time already seen,
        the same defense ``rte_get_timer_cycles`` wrappers apply.
        """
        if now < self._last_now:
            self._clock_clamped += 1
            return self._last_now
        self._last_now = now
        return now

    def fastpath_hooks(self) -> _VigNatFastPathHooks:
        """Opt into the microflow fast path (:mod:`repro.nat.fastpath`)."""
        return _VigNatFastPathHooks(self)

    # -- checkpoint/restore ------------------------------------------------
    def delta_sink(self, sink) -> None:
        self._delta_sink = sink

    def _on_expire_delta(self, min_time: int):
        """Per-index expiry observer for the delta log, or None when off."""
        sink = self._delta_sink
        if sink is None:
            return None
        return lambda index: sink(("free", index, None, min_time))

    def checkpoint_state(self) -> Dict:
        """Flow state in chain age order, plus the clock and counters.

        The chain's cell list *is* the abstract state the refinement
        contracts reason about; serializing in that order lets restore
        rebuild an identical chain (same LRU order, same free list).
        """
        flows = []
        for index, touched in self._chain.cells():
            flow = self._flow_table.get_value(index)
            fid = flow.internal_id
            flows.append(
                [
                    index,
                    touched,
                    [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol],
                    flow.external_port,
                ]
            )
        return {
            "flows": flows,
            # Free-index order is observable through the ports future
            # allocations pick; carrying it makes a restored NAT replay
            # byte-identically. Standby-synthesized checkpoints omit it.
            "free_list": list(self._chain.free_list()),
            "last_now_us": self._last_now,
            "generation": self._generation,
            "counters": {
                "expired": self._expired_total,
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
                "expiry_scans_amortized": self._expiry_scans_amortized,
                "clock_clamped": self._clock_clamped,
                "bursts": self._bursts_total,
                "burst_packets": self._burst_packets_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild libVig state from a checkpoint payload, validated first.

        All checks run before any structure is mutated:

        - the VigNat invariant ``external_port == start_port + index``
          must hold for every flow;
        - the external ports must be distinct and inside this config's
          shard range — cross-checked through a :class:`PortAllocator`
          over ``config.port_range()``, which raises
          :class:`~repro.libvig.port_allocator.PortRestoreError` on a
          double allocation or an out-of-shard port;
        - the internal 5-tuples must be distinct (the double map's key-A
          uniqueness);
        - the chain cells must be age-ordered with in-range indices
          (enforced by :meth:`DoubleChain.restore_cells`).

        The restored clock (`_last_now`) is the checkpoint's, floored at
        the newest flow timestamp — so a restore at an earlier wall time
        T' < T *clamps* forward instead of mass-expiring (thresholds are
        computed from the clamped clock) or tripping TimeRegression.
        The generation is bumped past the checkpoint's so any microflow
        cache entry learned before the restore can never replay.
        """
        if self._flow_table.size() or self._chain.size():
            raise ValueError("restore_state requires a freshly constructed NF")
        flows = state.get("flows", [])
        cells = []
        entries = []
        internal_ids = set()
        for index, touched, fid_fields, external_port in flows:
            if external_port != self.config.start_port + index:
                raise ValueError(
                    f"flow at index {index} claims external port "
                    f"{external_port}; VigNat requires start_port + index "
                    f"= {self.config.start_port + index}"
                )
            internal_id = FlowId(*fid_fields)
            if internal_id in internal_ids:
                raise ValueError(
                    f"internal 5-tuple {internal_id} appears twice in checkpoint"
                )
            internal_ids.add(internal_id)
            cells.append((index, touched))
            entries.append(
                (index, Flow(internal_id=internal_id, external_port=external_port))
            )
        # Ownership cross-check: every external port must be free,
        # distinct and inside this shard's range.
        ports = PortAllocator(self.config.start_port, self.config.max_flows)
        ports.restore_ports([flow.external_port for _, flow in entries])
        self._chain.restore_cells(cells, state.get("free_list"))
        for index, flow in entries:
            self._flow_table.put(index, flow)
        newest = cells[-1][1] if cells else 0
        self._last_now = max(int(state.get("last_now_us", 0)), newest)
        counters = state.get("counters", {})
        self._expired_total = int(counters.get("expired", 0))
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
        self._expiry_scans_amortized = int(counters.get("expiry_scans_amortized", 0))
        self._clock_clamped = int(counters.get("clock_clamped", 0))
        self._bursts_total = int(counters.get("bursts", 0))
        self._burst_packets_total = int(counters.get("burst_packets", 0))
        self._generation = int(state.get("generation", 0)) + 1

    def register_metrics(self, registry, labels=None) -> None:
        """Operation counters plus the flow table's occupancy/expiry state."""
        super().register_metrics(registry, labels)
        nf_labels = dict(labels or {})
        nf_labels["nf"] = self.name
        registry.gauge_fn(
            "flow_table_occupancy",
            self.flow_count,
            "live translation entries",
            nf_labels,
        )
        registry.gauge_fn(
            "flow_table_capacity",
            lambda: self.config.max_flows,
            "maximum translation entries",
            nf_labels,
        )
        registry.counter_fn(
            "flows_expired_total",
            lambda: self._expired_total,
            "flows removed by the expiry scan",
            nf_labels,
        )

    # -- the packet path: the shared stateless logic over libVig ------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        """One loop iteration of Fig. 6: expire, update, forward."""
        now = self._clamp_now(now)
        env = _ConcreteEnv(self, packet, now)
        nat_loop_iteration(env, self.config)
        return env.outputs

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """One RX burst through Fig. 6, expiry scanned once for all.

        All packets of a burst share one receive timestamp (one
        ``rte_rdtsc`` read per main-loop turn, as VigNAT's C loop does),
        so the flow-expiry scan on the first iteration already covers
        the rest; the shared env suppresses the redundant rescans and
        counts them as ``expiry_scans_amortized``.
        """
        now = self._clamp_now(now)
        self._note_burst(len(packets))
        if not packets:
            return []
        env = _ConcreteEnv(self, packets[0], now)
        results: List[List[Packet]] = []
        for packet in packets:
            env.rebind(packet)
            nat_loop_iteration(env, self.config)
            results.append(env.outputs)
        return results
