"""A NetFilter/conntrack-style NAT — the "Linux NAT" baseline (§6).

Models the kernel masquerade path closely enough that its *work per
packet* dwarfs a DPDK NF's, which is what the paper measures (≈20 µs
latency, 0.6 Mpps vs 1.8-2 Mpps): every packet traverses the netfilter
hook chain (PREROUTING → routing decision → FORWARD → POSTROUTING), a
connection-tracking lookup with a tuple hash per direction, NAT rule
evaluation for NEW connections, a conntrack state machine update, and a
*full* checksum recomputation (the kernel path cannot assume checksum
offload in this setup).

The hook traversal and skb bookkeeping are represented by explicit
per-packet counter increments that the cost model charges; the
translation logic itself is real and RFC-conformant, so the Linux NAT
produces byte-identical translations to VigNat on conforming traffic.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.libvig.hash_table import ChainingHashTable
from repro.nat.base import NetworkFunction
from repro.nat.config import NatConfig
from repro.nat.flow import FlowId, flow_id_of_packet
from repro.nat.rewrite import rewrite_destination, rewrite_source
from repro.packets.headers import PROTO_TCP, Packet


class ConntrackState(enum.Enum):
    """Reduced conntrack state machine (enough for NAT semantics)."""

    NEW = "NEW"
    ESTABLISHED = "ESTABLISHED"
    # A reply was seen; for TCP this would gate window tracking.
    ASSURED = "ASSURED"
    # A FIN was seen: the connection is winding down (short timeout,
    # like nf_conntrack_tcp_timeout_fin_wait).
    CLOSING = "CLOSING"


TCP_FIN = 0x01
TCP_RST = 0x04


@dataclass
class _Conntrack:
    original: FlowId  # tuple as seen on the internal side
    reply: FlowId  # tuple a reply bears on the external side
    external_port: int
    state: ConntrackState
    last_seen: int


class NetfilterNat(NetworkFunction):
    """Masquerading NAT with connection tracking and hook-chain costs."""

    name = "linux-nat"

    #: Number of netfilter hooks every forwarded packet traverses.
    HOOKS_PER_PACKET = 4

    #: Conntrack's short timeout for connections that never saw a reply
    #: (nf_conntrack_udp_timeout / tcp_timeout_syn_sent are ~30 s). The
    #: effective NEW timeout is min(this, the configured expiration), so
    #: short-expiry configurations behave exactly as before.
    NEW_TIMEOUT_US = 30_000_000

    def __init__(self, config: NatConfig | None = None, **legacy: int) -> None:
        self.config = NatConfig.resolve(config, owner=type(self).__name__, **legacy)
        self._table = ChainingHashTable(bucket_count=self.config.max_flows)
        self._lru: "OrderedDict[int, _Conntrack]" = OrderedDict()
        self._next_port = self.config.start_port
        self._free_ports: List[int] = []
        self._hook_traversals = 0
        self._checksum_bytes = 0
        self._dropped_total = 0
        self._forwarded_total = 0
        self._expired_total = 0
        self._expiry_scans_amortized = 0

    def flow_count(self) -> int:
        """Number of tracked connections."""
        return len(self._lru)

    def op_counters(self) -> Dict[str, int]:
        counters = {
            "table_probes": self._table.stats.probes,
            "hook_traversals": self._hook_traversals,
            "checksum_bytes": self._checksum_bytes,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
            "expired": self._expired_total,
            "expiry_scans_amortized": self._expiry_scans_amortized,
        }
        counters.update(self.burst_counters())
        return counters

    # -- conntrack bookkeeping ---------------------------------------------
    def _timeout_of(self, ct: _Conntrack) -> int:
        """Per-state timeout: unanswered NEW and closing connections
        die early."""
        if ct.state in (ConntrackState.NEW, ConntrackState.CLOSING):
            return min(self.NEW_TIMEOUT_US, self.config.expiration_time)
        return self.config.expiration_time

    def _track_tcp_teardown(self, ct: _Conntrack, packet: Packet) -> bool:
        """TCP flag tracking: RST destroys the entry immediately, FIN
        moves it to the short-lived CLOSING state. Returns True when
        the entry was destroyed (RST)."""
        from repro.packets.headers import TcpHeader

        if not isinstance(packet.l4, TcpHeader):
            return False
        if packet.l4.flags & TCP_RST:
            self._destroy(ct)
            return True
        if packet.l4.flags & TCP_FIN:
            ct.state = ConntrackState.CLOSING
        return False

    def _is_expired(self, ct: _Conntrack, now: int) -> bool:
        return ct.last_seen + self._timeout_of(ct) <= now

    def _destroy(self, ct: _Conntrack) -> None:
        del self._lru[ct.external_port]
        self._table.erase(ct.original)
        self._table.erase(ct.reply)
        self._free_ports.append(ct.external_port)
        self._expired_total += 1

    def _expire(self, now: int) -> None:
        """Eager front-of-LRU expiry.

        The LRU front has the oldest last_seen; a NEW entry deeper in
        the list may have a shorter deadline, so (like the kernel's
        lazy per-bucket GC) such entries are reaped on lookup instead —
        see :meth:`_lookup`.
        """
        while self._lru:
            _port, ct = next(iter(self._lru.items()))
            if not self._is_expired(ct, now):
                break
            self._destroy(ct)

    def _lookup(self, flow_id: FlowId, now: int):
        """Conntrack lookup with lazy expiry of stale entries."""
        ct: _Conntrack | None = self._table.get(flow_id)
        if ct is not None and self._is_expired(ct, now):
            self._destroy(ct)
            return None
        return ct

    def _touch(self, ct: _Conntrack, now: int) -> None:
        ct.last_seen = now
        self._lru.move_to_end(ct.external_port)

    def _allocate_port(self) -> int | None:
        if self._free_ports:
            return self._free_ports.pop()
        if self._next_port + 1 > 0xFFFF or (
            self._next_port - self.config.start_port >= self.config.max_flows
        ):
            return None
        port = self._next_port
        self._next_port += 1
        return port

    def _reply_tuple(self, original: FlowId, external_port: int) -> FlowId:
        return FlowId(
            src_ip=original.dst_ip,
            src_port=original.dst_port,
            dst_ip=self.config.external_ip,
            dst_port=external_port,
            protocol=original.protocol,
        )

    # -- checkpoint/restore ---------------------------------------------------
    def checkpoint_state(self) -> Dict:
        """Conntrack entries in LRU order plus the port pool and counters."""
        conns = []
        for port, ct in self._lru.items():
            fid = ct.original
            conns.append(
                [
                    [fid.src_ip, fid.src_port, fid.dst_ip, fid.dst_port, fid.protocol],
                    port,
                    ct.state.value,
                    ct.last_seen,
                ]
            )
        return {
            "conns": conns,
            "next_port": self._next_port,
            "free_ports": list(self._free_ports),
            "counters": {
                "hook_traversals": self._hook_traversals,
                "checksum_bytes": self._checksum_bytes,
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
                "expired": self._expired_total,
                "expiry_scans_amortized": self._expiry_scans_amortized,
                "bursts": self._bursts_total,
                "burst_packets": self._burst_packets_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild conntrack from a checkpoint, refusing inconsistent ports."""
        if self._lru:
            raise ValueError("restore_state requires a freshly constructed NF")
        conns = state.get("conns", [])
        next_port = int(state.get("next_port", self.config.start_port))
        free_ports = [int(p) for p in state.get("free_ports", [])]
        seen_ports = set()
        for _fid_fields, port, state_name, _last_seen in conns:
            if port in seen_ports:
                raise ValueError(f"port {port} tracked twice in checkpoint")
            if not self.config.start_port <= port < next_port:
                raise ValueError(
                    f"port {port} outside the handed-out range "
                    f"[{self.config.start_port}, {next_port})"
                )
            ConntrackState(state_name)  # unknown state names raise here
            seen_ports.add(port)
        for port in free_ports:
            if port in seen_ports:
                raise ValueError(f"port {port} both tracked and on the free list")
        for fid_fields, port, state_name, last_seen in conns:
            original = FlowId(*fid_fields)
            ct = _Conntrack(
                original=original,
                reply=self._reply_tuple(original, port),
                external_port=port,
                state=ConntrackState(state_name),
                last_seen=int(last_seen),
            )
            self._table.put(original, ct)
            self._table.put(ct.reply, ct)
            self._lru[port] = ct
        self._next_port = next_port
        self._free_ports = free_ports
        counters = state.get("counters", {})
        self._hook_traversals = int(counters.get("hook_traversals", 0))
        self._checksum_bytes = int(counters.get("checksum_bytes", 0))
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
        self._expired_total = int(counters.get("expired", 0))
        self._expiry_scans_amortized = int(counters.get("expiry_scans_amortized", 0))
        self._bursts_total = int(counters.get("bursts", 0))
        self._burst_packets_total = int(counters.get("burst_packets", 0))

    # -- packet path ---------------------------------------------------------
    def process(self, packet: Packet, now: int) -> List[Packet]:
        # Conntrack GC runs opportunistically from the packet path, like
        # the kernel's early_drop/gc behavior. Scanning is what makes it
        # expensive; that cost is visible in table_probes growth.
        self._expire(now)
        return self._process_one(packet, now)

    def process_burst(
        self, packets: Sequence[Packet], now: int
    ) -> List[List[Packet]]:
        """NAPI-poll-style burst: one GC sweep, then per-packet work.

        The hook chain, conntrack lookups and full checksum recompute
        still run per packet — the kernel path has nothing like DPDK's
        per-burst amortization, which is why its cost stays far above
        the DPDK NFs at every burst size.
        """
        self._note_burst(len(packets))
        if not packets:
            return []
        self._expire(now)
        self._expiry_scans_amortized += len(packets) - 1
        return [self._process_one(packet, now) for packet in packets]

    def _process_one(self, packet: Packet, now: int) -> List[Packet]:
        self._hook_traversals += self.HOOKS_PER_PACKET
        if not packet.is_tcpudp_ipv4():
            self._dropped_total += 1
            return []
        flow_id = flow_id_of_packet(packet)
        if packet.device == self.config.internal_device:
            out = self._outbound(packet, flow_id, now)
        elif packet.device == self.config.external_device:
            out = self._inbound(packet, flow_id, now)
        else:
            self._dropped_total += 1
            return []
        # The kernel path recomputes checksums over the whole packet.
        for pkt in out:
            self._checksum_bytes += len(pkt.to_bytes())
        return out

    def _outbound(self, packet: Packet, flow_id: FlowId, now: int) -> List[Packet]:
        ct = self._lookup(flow_id, now)
        if ct is None:
            # NEW connection: evaluate the masquerade rule, allocate a port.
            port = self._allocate_port()
            if port is None:
                self._dropped_total += 1
                return []
            ct = _Conntrack(
                original=flow_id,
                reply=self._reply_tuple(flow_id, port),
                external_port=port,
                state=ConntrackState.NEW,
                last_seen=now,
            )
            self._table.put(flow_id, ct)
            self._table.put(ct.reply, ct)
            self._lru[port] = ct
        else:
            if ct.state is ConntrackState.NEW and flow_id == ct.original:
                ct.state = ConntrackState.ESTABLISHED
        self._touch(ct, now)
        # RST tears the mapping down (the packet itself is still
        # forwarded so the peer learns of the reset); FIN shortens it.
        self._track_tcp_teardown(ct, packet)
        out = packet.clone()
        rewrite_source(out, self.config.external_ip, ct.external_port)
        out.device = self.config.external_device
        self._forwarded_total += 1
        return [out]

    def _inbound(self, packet: Packet, flow_id: FlowId, now: int) -> List[Packet]:
        ct = self._lookup(flow_id, now)
        if ct is None or flow_id != ct.reply:
            self._dropped_total += 1
            return []
        if packet.ipv4 is not None and packet.ipv4.protocol == PROTO_TCP:
            ct.state = ConntrackState.ASSURED
        elif ct.state is not ConntrackState.ASSURED:
            ct.state = ConntrackState.ESTABLISHED
        self._touch(ct, now)
        self._track_tcp_teardown(ct, packet)
        out = packet.clone()
        rewrite_destination(out, ct.original.src_ip, ct.original.src_port)
        out.device = self.config.internal_device
        self._forwarded_total += 1
        return [out]
