"""VigBridge: a verified MAC-learning bridge — third NF on libVig.

A two-port transparent bridge (IEEE 802.1D learning/filtering, aging):

- *learn*: the source MAC is bound to the arrival port; a known station
  that moved ports is re-bound; when the table is full, new stations are
  simply not learned (they keep being flooded — never evict);
- *filter/forward*: a frame whose destination MAC is known **on the
  arrival port** is filtered (dropped); anything else — unknown,
  broadcast, or known on the other port — is forwarded out the other
  port, unchanged at every byte;
- *aging*: entries idle longer than the aging time expire.

Unlike the NAT and firewall this NF is layer-2 only (no IPv4 parsing at
all) and its table is single-keyed — exercising the toolchain on a
different state shape. As with the other NFs, the stateless logic is one
shared function run concretely here and symbolically by
:func:`repro.verif.nf_env_bridge.bridge_symbolic_body`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol

from repro.libvig.double_chain import DoubleChain
from repro.libvig.map import Map
from repro.nat.base import NetworkFunction
from repro.packets.headers import Packet

#: The all-ones broadcast address, as a 48-bit integer.
BROADCAST_MAC = (1 << 48) - 1

#: 802.1D default aging time: 300 seconds, in microseconds.
DEFAULT_AGING_TIME_US = 300_000_000


@dataclass(frozen=True)
class BridgeConfig:
    """Static bridge configuration."""

    device_a: int = 0
    device_b: int = 1
    capacity: int = 4_096
    aging_time: int = DEFAULT_AGING_TIME_US  # microseconds

    def __post_init__(self) -> None:
        if self.device_a == self.device_b:
            raise ValueError("bridge ports must differ")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.aging_time <= 0:
            raise ValueError("aging time must be positive")

    def other(self, device: int) -> int:
        return self.device_b if device == self.device_a else self.device_a


class BridgeEnv(Protocol):
    """The libVig + DPDK interface of the bridge's stateless code."""

    def current_time(self) -> Any: ...

    def expire_entries(self, min_time: Any) -> None: ...

    def receive(self) -> Optional[Any]: ...  # frame view: device/src_mac/dst_mac

    def table_get(self, mac: Any) -> Optional[Any]: ...  # port or None

    def table_learn_new(self, mac: Any, device: Any, now: Any) -> None: ...

    def table_refresh(self, mac: Any, device: Any, now: Any) -> None: ...

    def table_has_room(self) -> Any: ...

    def forward(self, frame: Any, device: Any) -> None: ...

    def drop(self, frame: Any) -> None: ...


def bridge_loop_iteration(env: BridgeEnv, config: Any) -> None:
    """One loop iteration of the bridge; shared concrete/symbolic."""
    now = env.current_time()
    if now >= config.aging_time:
        min_time = now - config.aging_time + 1
    else:
        min_time = 0
    env.expire_entries(min_time)

    frame = env.receive()
    if frame is None:
        return
    if frame.device == config.device_a:
        out_device = config.device_b
    elif frame.device == config.device_b:
        out_device = config.device_a
    else:
        env.drop(frame)
        return

    # Learning: bind/refresh the source station to the arrival port.
    # Broadcast/multicast sources are malformed and never learned.
    if frame.src_mac != BROADCAST_MAC:
        known = env.table_get(frame.src_mac)
        if known is None:
            if env.table_has_room():
                env.table_learn_new(frame.src_mac, frame.device, now)
        else:
            env.table_refresh(frame.src_mac, frame.device, now)

    # Filtering/forwarding: only frames whose destination is known to
    # sit on the arrival port are filtered; all else goes out the other
    # port (known-other-port and unknown/flooded coincide on 2 ports).
    if frame.dst_mac != BROADCAST_MAC:
        location = env.table_get(frame.dst_mac)
        if location is not None:
            if location == frame.device:
                env.drop(frame)  # destination is on the same segment
                return
    env.forward(frame, device=out_device)


class _FrameView:
    """Adapter exposing a concrete frame's fields to the stateless code."""

    __slots__ = ("packet",)

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    @property
    def device(self) -> int:
        return self.packet.device

    @property
    def src_mac(self) -> int:
        return int.from_bytes(self.packet.eth.src, "big")

    @property
    def dst_mac(self) -> int:
        return int.from_bytes(self.packet.eth.dst, "big")


@dataclass
class _Station:
    mac: int
    device: int


class _ConcreteBridgeEnv:
    """Binds the bridge logic to libVig and real frames."""

    def __init__(self, bridge: "VigBridge", packet: Packet, now: int) -> None:
        self._bridge = bridge
        self._packet = packet
        self._now = now
        self.outputs: List[Packet] = []

    def current_time(self) -> int:
        return self._now

    def expire_entries(self, min_time: int) -> None:
        bridge = self._bridge
        while True:
            index = bridge._chain.expire_one_index(min_time)
            if index is None:
                return
            station = bridge._stations.pop(index)
            bridge._table.erase(station.mac)
            bridge._expired_total += 1

    def receive(self) -> _FrameView:
        return _FrameView(self._packet)

    def table_get(self, mac: int) -> Optional[int]:
        index = self._bridge._table.get(mac)
        if index is None:
            return None
        return self._bridge._stations[index].device

    def table_has_room(self) -> bool:
        return self._bridge._chain.size() < self._bridge.config.capacity

    def table_learn_new(self, mac: int, device: int, now: int) -> None:
        bridge = self._bridge
        index = bridge._chain.allocate_new_index(now)
        assert index is not None  # guarded by table_has_room
        bridge._table.put(mac, index)
        bridge._stations[index] = _Station(mac=mac, device=device)

    def table_refresh(self, mac: int, device: int, now: int) -> None:
        bridge = self._bridge
        index = bridge._table.get(mac)
        bridge._chain.rejuvenate_index(index, now)
        bridge._stations[index].device = device  # station may have moved

    def forward(self, frame: _FrameView, device: int) -> None:
        out = frame.packet.clone()
        out.device = device
        self.outputs.append(out)
        self._bridge._forwarded_total += 1

    def drop(self, frame: _FrameView) -> None:
        self._bridge._dropped_total += 1


class VigBridge(NetworkFunction):
    """The verified two-port learning bridge."""

    name = "verified-bridge"

    def __init__(self, config: BridgeConfig | None = None) -> None:
        self.config = config if config is not None else BridgeConfig()
        self._table = Map(self.config.capacity + self.config.capacity // 8 + 1)
        self._chain = DoubleChain(self.config.capacity)
        self._stations: Dict[int, _Station] = {}
        self._expired_total = 0
        self._dropped_total = 0
        self._forwarded_total = 0

    def station_count(self) -> int:
        """Number of learned stations."""
        return self._chain.size()

    def port_of(self, mac: int) -> Optional[int]:
        """The port a MAC was learned on, or None."""
        index = self._table.get(mac)
        if index is None:
            return None
        return self._stations[index].device

    def op_counters(self) -> Dict[str, int]:
        return {
            "map_probes": self._table.stats.probes,
            "expired": self._expired_total,
            "dropped": self._dropped_total,
            "forwarded": self._forwarded_total,
        }

    def process(self, packet: Packet, now: int) -> List[Packet]:
        env = _ConcreteBridgeEnv(self, packet, now)
        bridge_loop_iteration(env, self.config)
        return env.outputs

    def checkpoint_state(self) -> Dict:
        """Learned stations in chain age order, plus counters."""
        stations = []
        for index, touched in self._chain.cells():
            station = self._stations[index]
            stations.append([index, touched, station.mac, station.device])
        return {
            "stations": stations,
            "free_list": list(self._chain.free_list()),
            "counters": {
                "expired": self._expired_total,
                "dropped": self._dropped_total,
                "forwarded": self._forwarded_total,
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Rebuild the station table from a checkpoint, validated first.

        Checks run before any structure is mutated: MACs must be
        distinct and bound to one of this bridge's two ports, and the
        chain cells age-ordered with in-range indices (enforced by
        :meth:`DoubleChain.restore_cells`).
        """
        if self._chain.size() or self._stations:
            raise ValueError("restore_state requires a freshly constructed NF")
        cells = []
        entries = []
        seen = set()
        valid_devices = (self.config.device_a, self.config.device_b)
        for index, touched, mac, device in state.get("stations", []):
            if mac in seen:
                raise ValueError(f"MAC {mac:012x} appears twice in checkpoint")
            if device not in valid_devices:
                raise ValueError(
                    f"station {mac:012x} bound to device {device}; this "
                    f"bridge has ports {valid_devices}"
                )
            seen.add(mac)
            cells.append((index, touched))
            entries.append((index, _Station(mac=mac, device=device)))
        self._chain.restore_cells(cells, state.get("free_list"))
        for index, station in entries:
            self._table.put(station.mac, index)
            self._stations[index] = station
        counters = state.get("counters", {})
        self._expired_total = int(counters.get("expired", 0))
        self._dropped_total = int(counters.get("dropped", 0))
        self._forwarded_total = int(counters.get("forwarded", 0))
