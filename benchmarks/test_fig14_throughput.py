"""Fig. 14: maximum throughput with <0.1% loss vs. number of flows.

Paper's result: Unverified NAT 2 Mpps, Verified NAT 1.8 Mpps (a 10%
penalty), both flat across flow counts; No-op well above both; Linux
NAT far below at 0.6 Mpps.
"""

from benchmarks.conftest import throughput_flow_counts, throughput_settings
from repro.eval.experiments import throughput_sweep
from repro.eval.ascii_chart import throughput_chart
from repro.eval.reporting import render_fig14


def test_fig14_throughput(benchmark, publish):
    settings = throughput_settings()
    flow_counts = throughput_flow_counts()

    results = benchmark.pedantic(
        lambda: throughput_sweep(flow_counts=flow_counts, settings=settings),
        rounds=1,
        iterations=1,
    )
    publish("fig14_throughput", render_fig14(results) + "\n\n" + throughput_chart(results))

    mpps = {
        name: {r.flow_count: r.max_mpps for r in rs}
        for name, rs in results.items()
    }
    low = flow_counts[0]
    # Headline numbers (paper: 2.0 / 1.8 / 0.6 Mpps; noop ~3).
    assert abs(mpps["unverified-nat"][low] - 2.0) < 0.3
    assert abs(mpps["verified-nat"][low] - 1.8) < 0.3
    assert abs(mpps["linux-nat"][low] - 0.6) < 0.2
    assert mpps["noop"][low] > 2.5
    # The verified penalty is ~10%, never above 20%.
    for fc in flow_counts:
        penalty = 1 - mpps["verified-nat"][fc] / mpps["unverified-nat"][fc]
        assert 0.0 < penalty < 0.20, (fc, penalty)
    # Ordering holds everywhere.
    for fc in flow_counts:
        assert (
            mpps["noop"][fc]
            > mpps["unverified-nat"][fc]
            > mpps["verified-nat"][fc]
            > mpps["linux-nat"][fc]
        )
